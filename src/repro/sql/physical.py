"""Physical plan: lower a logical SQL plan onto the distributed engine.

Four plan shapes exist, picked from the logical plan's join strategies:

* ``empty`` — the WHERE clause is unsatisfiable; the result is
  synthesised (zero rows) without touching any node.
* ``fanout`` — no sharded joins: the query goes through the Cubrick
  proxy unchanged (admission control, result cache, cross-region
  retries), nodes answer joins from their local replicas.
* ``broadcast-join`` — each sharded dimension table's referenced
  columns are collected onto the coordinator and turned into
  fact-key-indexed lookup arrays, which ride down to every node scan as
  ``extra_lookups``; the fan-out itself is unchanged.
* ``hash-join`` — the single over-threshold sharded join: the fact
  side fans out grouped by the join key, the (filtered) dimension side
  is collected, and the coordinator presence-filters and remaps the
  pre-finalize partial states onto the final groups before one last
  merge + finalize.

The join kinds execute through a region coordinator directly (iterating
the proxy's region preference on retryable failures) — they bypass the
proxy's admission control and result cache, a documented limitation of
the distributed-join path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.cubrick.query import PartialResult, Query, QueryResult
from repro.errors import QueryFailedError, RegionUnavailableError
from repro.sql.planner import LogicalPlan


@dataclass
class PhysicalPlan:
    """An executable plan plus its deterministic EXPLAIN description."""

    kind: str  # 'empty' | 'fanout' | 'broadcast-join' | 'hash-join'
    logical: LogicalPlan
    steps: list[str] = field(default_factory=list)
    sharded_joins: tuple = ()
    replicated_joins: tuple = ()
    #: The query actually fanned out to nodes (None for 'empty').
    fanout_query: Optional[Query] = None


def build_physical(plan: LogicalPlan) -> PhysicalPlan:
    """Lower one logical plan. Pure catalog/stats math — no execution."""
    if plan.empty:
        return PhysicalPlan(
            kind="empty",
            logical=plan,
            steps=[
                f"result: 0 rows synthesised ({plan.empty_reason})",
            ],
        )
    sharded = tuple(
        j for j in plan.joins
        if plan.join_strategies.get(j.table) != "replicated-local"
    )
    replicated = tuple(
        j for j in plan.joins
        if plan.join_strategies.get(j.table) == "replicated-local"
    )
    partitions = plan.binding.fact.num_partitions
    hash_joins = [
        j for j in sharded
        if plan.join_strategies.get(j.table) == "partitioned-hash"
    ]
    if hash_joins:
        join = hash_joins[0]
        other_group = [
            g for g in plan.group_by
            if not g.startswith(f"{join.table}.") and g != join.fact_key
        ]
        fanout_group = (join.fact_key,) + tuple(other_group)
        fanout_filters = tuple(
            f for f in plan.filters
            if not f.dimension.startswith(f"{join.table}.")
        )
        fanout_query = Query(
            table=plan.fact_table,
            aggregations=plan.aggregations,
            group_by=fanout_group,
            filters=fanout_filters,
            joins=replicated,
        )
        columns = _needed_columns(plan, join)
        pushed = len(plan.dim_filters.get(join.table, ()))
        steps = [
            f"collect: {join.table}.{{{', '.join(columns)}}} -> "
            f"coordinator ({pushed} pushed filter(s))",
            f"fan-out: {plan.fact_table} grouped by {join.fact_key} "
            f"over {partitions} partitions (pre-finalize partials)",
            f"join: presence-filter fan-out groups against collected "
            f"{join.dim_key} keys, remap to final groups",
            "re-aggregate: merge remapped partial states, then finalize",
        ]
        return PhysicalPlan(
            kind="hash-join",
            logical=plan,
            steps=steps,
            sharded_joins=(join,),
            replicated_joins=replicated,
            fanout_query=fanout_query,
        )
    if sharded:
        fanout_query = replace(plan.query, joins=replicated)
        steps = []
        for join in sharded:
            columns = _needed_columns(plan, join)
            steps.append(
                f"collect: {join.table}.{{{', '.join(columns)}}} -> "
                f"coordinator, build {join.fact_key}-indexed lookup "
                f"arrays (broadcast)"
            )
        steps.append(
            f"fan-out: {plan.fact_table} over {partitions} partitions "
            f"with broadcast lookups"
        )
        steps.append("merge: coordinator merges partials and finalizes")
        return PhysicalPlan(
            kind="broadcast-join",
            logical=plan,
            steps=steps,
            sharded_joins=sharded,
            replicated_joins=replicated,
            fanout_query=fanout_query,
        )
    return PhysicalPlan(
        kind="fanout",
        logical=plan,
        steps=[
            f"fan-out: {plan.fact_table} over {partitions} partitions "
            f"via proxy (admission control + result cache)",
            "merge: coordinator merges partials and finalizes",
        ],
        replicated_joins=replicated,
        fanout_query=plan.query,
    )


def _needed_columns(plan: LogicalPlan, join) -> list[str]:
    """dim-table columns a join must collect: key first, then attrs."""
    attrs = sorted({
        ref.split(".", 1)[1] for ref in plan.dotted_references(join.table)
    })
    return [join.dim_key] + [c for c in attrs if c != join.dim_key]


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def execute_plan(physical: PhysicalPlan, proxy, **submit_kwargs) -> QueryResult:
    """Run a physical plan against a deployment's Cubrick proxy.

    ``submit_kwargs`` (``allow_partial``/``straggler_timeout``/
    ``deadline``) pass through to :meth:`CubrickProxy.submit` for
    ``fanout`` plans; the distributed-join kinds run through a region
    coordinator directly and do not honour them.
    """
    plan = physical.logical
    if physical.kind == "empty":
        columns = tuple(plan.group_by) + tuple(
            agg.label() for agg in plan.aggregations
        )
        result = QueryResult(columns=columns, rows=[])
        result.metadata.update(
            {
                "table": plan.fact_table,
                "latency": 0.0,
                "fanout": 0,
                "empty_reason": plan.empty_reason,
                "join_strategies": dict(plan.join_strategies),
            }
        )
        return result
    if physical.kind == "fanout":
        result = proxy.submit(physical.fanout_query, **submit_kwargs)
        if plan.join_strategies:
            result.metadata["join_strategies"] = dict(plan.join_strategies)
        return result
    if physical.kind == "broadcast-join":
        executor = _execute_broadcast
    else:
        executor = _execute_hash
    return _on_some_region(
        proxy, lambda coordinator: executor(physical, coordinator)
    )


def _on_some_region(proxy, fn) -> QueryResult:
    """Run fn(coordinator) on regions in preference order, retrying
    retryable failures — the distributed-join analogue of proxy routing."""
    last: Optional[QueryFailedError] = None
    for region in proxy.region_preference:
        coordinator = proxy.coordinators[region]
        if not coordinator.sm.cluster.region(region).available:
            continue
        try:
            return fn(coordinator)
        except QueryFailedError as exc:
            last = exc
            if not exc.retryable:
                raise
    if last is not None:
        raise last
    raise RegionUnavailableError("no region available for query")


def _collect_lookups(
    plan: LogicalPlan, join, coordinator, *, filtered: bool
) -> tuple[dict[str, np.ndarray], np.ndarray, int, float, int]:
    """Collect one sharded dim table; return per-column lookup arrays.

    Returns ``(lookups, keys, size, latency, fanout)`` where each lookup
    maps a fact-side join-key value to the dim column's value (-1 = no
    matching dim row, the engine's drop marker).
    """
    columns = _needed_columns(plan, join)
    filters = plan.dim_filters.get(join.table, ()) if filtered else ()
    arrays, latency, fanout = coordinator.collect_columns(
        join.table, columns, tuple(filters)
    )
    keys = arrays[join.dim_key].astype(np.int64)
    fact_card = plan.binding.fact.schema.dimension(join.fact_key).cardinality
    dim_card = (
        plan.binding.join_infos[join.table]
        .schema.dimension(join.dim_key).cardinality
    )
    size = max(fact_card, dim_card)
    lookups: dict[str, np.ndarray] = {}
    for column in columns:
        lookup = np.full(size, -1, dtype=np.int64)
        lookup[keys] = arrays[column].astype(np.int64)
        lookups[column] = lookup
    return lookups, keys, size, latency, fanout


def _execute_broadcast(physical: PhysicalPlan, coordinator) -> QueryResult:
    plan = physical.logical
    extra_lookups: dict[str, tuple[str, np.ndarray]] = {}
    collect_latency = 0.0
    for join in physical.sharded_joins:
        lookups, __, __, latency, __ = _collect_lookups(
            plan, join, coordinator, filtered=False
        )
        collect_latency += latency
        for column, lookup in lookups.items():
            extra_lookups[f"{join.table}.{column}"] = (
                join.fact_key, lookup,
            )
    result = coordinator.execute(
        physical.fanout_query, extra_lookups=extra_lookups
    )
    result.metadata["latency"] = (
        result.metadata.get("latency", 0.0) + collect_latency
    )
    result.metadata["join_strategies"] = dict(plan.join_strategies)
    result.metadata["collect_latency"] = collect_latency
    return result


def _execute_hash(physical: PhysicalPlan, coordinator) -> QueryResult:
    plan = physical.logical
    join = physical.sharded_joins[0]
    lookups, keys, size, collect_latency, collect_fanout = _collect_lookups(
        plan, join, coordinator, filtered=True
    )
    presence = np.zeros(size, dtype=bool)
    presence[keys] = True

    merged, info = coordinator.execute_partials(physical.fanout_query)

    prefix = f"{join.table}."
    fanout_group = physical.fanout_query.group_by
    fanout_pos = {g: i for i, g in enumerate(fanout_group)}
    final = PartialResult(query=plan.query)
    final.rows_scanned = merged.rows_scanned
    final.bricks_scanned = merged.bricks_scanned
    for key_tuple, states in merged.groups.items():
        key_value = key_tuple[0]
        if key_value < 0 or key_value >= size or not presence[key_value]:
            continue  # no matching dim row: inner join drops the group
        out = []
        for g in plan.group_by:
            if g.startswith(prefix):
                out.append(int(lookups[g[len(prefix):]][key_value]))
            else:
                out.append(key_tuple[fanout_pos[g]])
        final.accumulate(tuple(out), states)
    result = final.finalize()
    result.metadata.update(
        {
            "table": plan.fact_table,
            "region": info["region"],
            "latency": collect_latency + info["latency"],
            "fanout": info["fanout"],
            "collect_fanout": collect_fanout,
            "collect_latency": collect_latency,
            "join_strategies": dict(plan.join_strategies),
        }
    )
    return result
