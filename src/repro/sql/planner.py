"""Logical planner: resolve a parsed statement against the catalog.

Two entry points share the predicate machinery:

* :func:`plan` — the full catalog-aware path: names are resolved against
  table schemas, WHERE trees (and/or/not, all six comparisons) compile
  to the engine's conjunctive ``Filter`` set via per-column interval
  algebra over the bounded integer domains, and the ordered rewrite-rule
  pipeline of :mod:`repro.sql.rules` annotates join strategy, pushdown,
  pruning and partial-aggregation placement.
* :func:`compile_statement` — the catalog-less compatibility path behind
  :func:`repro.cubrick.sql.parse_query`: simple conjunctive predicates
  map verbatim onto filters (preserving value order, so
  ``parse_query(render_query(q)) == q`` holds); anything needing domain
  knowledge raises :class:`SqlError`.

Numeric literals in dimension predicates are truncated to integers, as
the legacy dialect always did.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cubrick.query import (
    AggFunc,
    Aggregation,
    CompareOp,
    Filter,
    Having,
    Join,
    Query,
)
from repro.cubrick.schema import Catalog, TableInfo
from repro.errors import SqlError
from repro.sql import ast

#: Stand-in upper bound for unbounded ``>`` / ``>=`` predicates in the
#: catalog-less path (BETWEEN pruning clamps it to the domain).
UNBOUNDED_HIGH = 2**62


@dataclass
class PlannerContext:
    """Everything the planner may consult besides the statement.

    ``stats`` maps a table name to its (approximate) total row count —
    the planner's only runtime statistic, used for broadcast vs.
    partitioned-hash join selection. ``enum_limit`` bounds how many
    enumerated values an IN/NOT IN filter emitted by the interval
    compiler may carry.
    """

    catalog: Optional[Catalog] = None
    stats: Optional[Callable[[str], Optional[int]]] = None
    broadcast_threshold: int = 10_000
    enum_limit: int = 256
    optimize: bool = True


@dataclass
class Binding:
    """Name-resolution results: catalog entries for every table used."""

    fact: TableInfo
    join_infos: dict[str, TableInfo] = field(default_factory=dict)

    def domain_of(self, column: str) -> int:
        """Cardinality of a (possibly dotted) dimension column."""
        if "." in column:
            table, name = column.split(".", 1)
            return self.join_infos[table].schema.dimension(name).cardinality
        return self.fact.schema.dimension(column).cardinality


@dataclass
class LogicalPlan:
    """The planner's output: a resolved, rule-annotated logical query."""

    statement: ast.SelectStatement
    source: Optional[str]
    context: PlannerContext
    binding: Binding
    fact_table: str
    aggregations: tuple[Aggregation, ...]
    group_by: tuple[str, ...]
    joins: tuple[Join, ...]
    having: tuple[Having, ...]
    order_by: Optional[str]
    descending: bool
    limit: Optional[int]
    #: Compiled conjunctive filters (set by the normalize rule).
    filters: tuple[Filter, ...] = ()
    #: True when the WHERE clause is provably unsatisfiable — the
    #: physical plan short-circuits to an empty result without fan-out.
    empty: bool = False
    empty_reason: str = ""
    #: join table -> 'replicated-local' | 'broadcast' | 'partitioned-hash'
    join_strategies: dict[str, str] = field(default_factory=dict)
    #: join table -> plain-named filters pushed into its collection scan
    #: (partitioned-hash only; broadcast evaluates them via lookups).
    dim_filters: dict[str, tuple[Filter, ...]] = field(default_factory=dict)
    pruning: list[str] = field(default_factory=list)
    placement: list[str] = field(default_factory=list)
    #: Ordered (rule name, notes) trace — the EXPLAIN rewrite section.
    trace: list[tuple[str, list[str]]] = field(default_factory=list)
    query: Optional[Query] = None

    def error(self, message: str, pos: int) -> SqlError:
        return SqlError(message, statement=self.source, position=pos)

    def sharded_join_tables(self) -> list[str]:
        return [
            j.table for j in self.joins
            if not self.binding.join_infos[j.table].replicated
        ]

    def dotted_references(self, table: str) -> list[str]:
        """Dotted columns of one join table used by group-by or filters."""
        prefix = f"{table}."
        names = [n for n in self.group_by if n.startswith(prefix)]
        names.extend(
            f.dimension for f in self.filters
            if f.dimension.startswith(prefix)
        )
        return names


# ----------------------------------------------------------------------
# Interval algebra over bounded integer domains
# ----------------------------------------------------------------------


def _normalize_intervals(
    intervals: list[tuple[int, int]], domain: int
) -> list[tuple[int, int]]:
    """Clamp to [0, domain-1], drop empties, sort, merge adjacent."""
    clamped = []
    for low, high in intervals:
        low = max(0, low)
        high = min(domain - 1, high)
        if low <= high:
            clamped.append((low, high))
    clamped.sort()
    merged: list[tuple[int, int]] = []
    for low, high in clamped:
        if merged and low <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], high))
        else:
            merged.append((low, high))
    return merged


def _intersect_intervals(
    a: list[tuple[int, int]], b: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    out = []
    i = j = 0
    while i < len(a) and j < len(b):
        low = max(a[i][0], b[j][0])
        high = min(a[i][1], b[j][1])
        if low <= high:
            out.append((low, high))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out


def _complement_intervals(
    intervals: list[tuple[int, int]], domain: int
) -> list[tuple[int, int]]:
    out = []
    cursor = 0
    for low, high in intervals:
        if cursor <= low - 1:
            out.append((cursor, low - 1))
        cursor = high + 1
    if cursor <= domain - 1:
        out.append((cursor, domain - 1))
    return out


def _interval_count(intervals: list[tuple[int, int]]) -> int:
    return sum(high - low + 1 for low, high in intervals)


def _interval_points(intervals: list[tuple[int, int]]) -> list[int]:
    points: list[int] = []
    for low, high in intervals:
        points.extend(range(low, high + 1))
    return points


def _comparison_intervals(op: str, value: float) -> list[tuple[int, int]]:
    """Half-open comparisons as integer intervals (pre-clamp).

    Float boundaries resolve exactly: ``< 3.5`` means ``<= 3`` while
    ``< 3`` means ``<= 2``.
    """
    if op == "<":
        return [(-UNBOUNDED_HIGH, math.ceil(value) - 1)]
    if op == "<=":
        return [(-UNBOUNDED_HIGH, math.floor(value))]
    if op == ">":
        return [(math.floor(value) + 1, UNBOUNDED_HIGH)]
    if op == ">=":
        return [(math.ceil(value), UNBOUNDED_HIGH)]
    point = int(value)
    if op == "=":
        return [(point, point)]
    raise ValueError(op)


class PredicateCompiler:
    """Compile a resolved WHERE tree into per-column interval sets."""

    def __init__(self, plan: LogicalPlan):
        self.plan = plan
        self.order: list[str] = []  # columns in first-appearance order

    def column_sets(
        self, pred: ast.Predicate
    ) -> dict[str, list[tuple[int, int]]]:
        """AND-across-columns interval sets for the whole tree."""
        return self._walk(pred)

    def _domain(self, column: str, pos: int) -> int:
        try:
            return self.plan.binding.domain_of(column)
        except Exception:  # SchemaError / KeyError — resolution bug guard
            raise self.plan.error(
                f"unknown dimension {column!r}", pos
            ) from None

    def _note(self, column: str) -> None:
        if column not in self.order:
            self.order.append(column)

    def _walk(self, pred: ast.Predicate) -> dict[str, list[tuple[int, int]]]:
        if isinstance(pred, ast.And):
            acc: dict[str, list[tuple[int, int]]] = {}
            for item in pred.items:
                for column, intervals in self._walk(item).items():
                    if column in acc:
                        acc[column] = _intersect_intervals(
                            acc[column], intervals
                        )
                    else:
                        acc[column] = intervals
            return acc
        if isinstance(pred, ast.Or):
            column = None
            union: list[tuple[int, int]] = []
            for item in pred.items:
                sets = self._walk(item)
                if len(sets) != 1:
                    raise self.plan.error(
                        "OR across different columns is not supported",
                        pred.pos,
                    )
                (item_column, intervals), = sets.items()
                if column is None:
                    column = item_column
                elif column != item_column:
                    raise self.plan.error(
                        "OR across different columns is not supported",
                        pred.pos,
                    )
                union.extend(intervals)
            assert column is not None
            domain = self._domain(column, pred.pos)
            return {column: _normalize_intervals(union, domain)}
        if isinstance(pred, ast.Not):
            sets = self._walk(pred.operand)
            if len(sets) != 1:
                raise self.plan.error(
                    "NOT over a multi-column predicate is not supported",
                    pred.pos,
                )
            (column, intervals), = sets.items()
            domain = self._domain(column, pred.pos)
            return {column: _complement_intervals(intervals, domain)}
        return self._atom(pred)

    def _atom(self, pred: ast.Predicate) -> dict[str, list[tuple[int, int]]]:
        column = _predicate_column(self.plan, pred)
        self._note(column)
        domain = self._domain(column, pred.pos)
        if isinstance(pred, ast.Comparison):
            if pred.op == "!=":
                point = int(pred.value.value)
                intervals = _complement_intervals(
                    _normalize_intervals([(point, point)], domain), domain
                )
            else:
                intervals = _comparison_intervals(pred.op, pred.value.value)
        elif isinstance(pred, ast.InList):
            intervals = [
                (int(v.value), int(v.value)) for v in pred.values
            ]
            if pred.negated:
                intervals = _complement_intervals(
                    _normalize_intervals(intervals, domain), domain
                )
        elif isinstance(pred, ast.BetweenPred):
            intervals = [(int(pred.low.value), int(pred.high.value))]
            if pred.negated:
                intervals = _complement_intervals(
                    _normalize_intervals(intervals, domain), domain
                )
        else:  # pragma: no cover - the walk covers every node type
            raise self.plan.error("unsupported predicate", pred.pos)
        return {column: _normalize_intervals(intervals, domain)}


def _predicate_column(plan: LogicalPlan, pred) -> str:
    operand = pred.operand
    if isinstance(operand, ast.AggregateCall):
        raise plan.error(
            "aggregates are not allowed in WHERE (use HAVING)", operand.pos
        )
    return operand.name


def emit_filters(
    plan: LogicalPlan, sets: dict[str, list[tuple[int, int]]],
    order: list[str]
) -> tuple[list[Filter], list[str]]:
    """Lower per-column interval sets onto engine filters.

    Empty sets mark the whole plan empty (the engine cannot express an
    always-false filter); full-domain sets are dropped; everything else
    becomes EQ / BETWEEN / IN / NOT IN, bounded by ``enum_limit``.
    """
    filters: list[Filter] = []
    notes: list[str] = []
    limit = plan.context.enum_limit
    for column in order:
        intervals = sets[column]
        domain = plan.binding.domain_of(column)
        if not intervals:
            plan.empty = True
            plan.empty_reason = (
                f"predicate on {column!r} is always false"
            )
            notes.append(f"{column}: always false -> empty plan")
            continue
        if intervals == [(0, domain - 1)]:
            notes.append(f"{column}: always true -> dropped")
            continue
        if len(intervals) == 1:
            low, high = intervals[0]
            if low == high:
                filters.append(Filter.eq(column, low))
                notes.append(f"{column}: = {low}")
            else:
                filters.append(Filter.between(column, low, high))
                notes.append(f"{column}: BETWEEN {low} AND {high}")
            continue
        count = _interval_count(intervals)
        if count <= limit:
            points = _interval_points(intervals)
            filters.append(Filter.isin(column, points))
            notes.append(f"{column}: IN ({count} values)")
            continue
        complement = _complement_intervals(intervals, domain)
        comp_count = _interval_count(complement)
        if comp_count <= limit:
            points = _interval_points(complement)
            filters.append(Filter.not_in(column, points))
            notes.append(f"{column}: NOT IN ({comp_count} values)")
            continue
        raise plan.error(
            f"predicate on {column!r} is too complex to lower "
            f"({count} values and {comp_count} excluded values both "
            f"exceed the {limit}-value enumeration limit)",
            plan.statement.pos,
        )
    return filters, notes


def literal_conjuncts(
    plan_or_none: Optional[LogicalPlan], pred: ast.Predicate
) -> Optional[list]:
    """The AND-of-simple-positive conjunct list, or None.

    Simple positive predicates (``=``, ``IN``, ``BETWEEN`` without NOT)
    map verbatim onto engine filters — preserving value order and
    duplicates, which keeps ``render_query`` round-trips exact. With a
    plan (catalog path), EQ/IN values must also be in-domain and BETWEEN
    non-empty, so downstream brick pruning never sees an out-of-domain
    value.
    """
    conjuncts = list(pred.items) if isinstance(pred, ast.And) else [pred]
    out = []
    for item in conjuncts:
        if isinstance(item, ast.Comparison) and item.op == "=":
            pass
        elif isinstance(item, ast.InList) and not item.negated:
            pass
        elif isinstance(item, ast.BetweenPred) and not item.negated:
            if int(item.low.value) > int(item.high.value):
                return None
        else:
            return None
        if not isinstance(item.operand, ast.ColumnRef):
            return None
        if plan_or_none is not None:
            domain = plan_or_none.binding.domain_of(item.operand.name)
            values = []
            if isinstance(item, ast.Comparison):
                values = [item.value.value]
            elif isinstance(item, ast.InList):
                values = [v.value for v in item.values]
            if any(not 0 <= int(v) < domain for v in values):
                return None
        out.append(item)
    return out


def filters_from_literals(conjuncts: list) -> list[Filter]:
    """Verbatim filters for an AND of simple positive predicates."""
    filters = []
    for item in conjuncts:
        column = item.operand.name
        if isinstance(item, ast.Comparison):
            filters.append(Filter.eq(column, int(item.value.value)))
        elif isinstance(item, ast.InList):
            filters.append(
                Filter.isin(column, [int(v.value) for v in item.values])
            )
        else:
            filters.append(
                Filter.between(
                    column, int(item.low.value), int(item.high.value)
                )
            )
    return filters


# ----------------------------------------------------------------------
# Name resolution (catalog path)
# ----------------------------------------------------------------------


class _Resolver:
    def __init__(self, statement: ast.SelectStatement,
                 context: PlannerContext, source: Optional[str]):
        assert context.catalog is not None
        self.statement = statement
        self.context = context
        self.source = source
        self.catalog = context.catalog

    def error(self, message: str, pos: int) -> SqlError:
        return SqlError(message, statement=self.source, position=pos)

    def resolve(self) -> LogicalPlan:
        stmt = self.statement
        if stmt.table not in self.catalog:
            raise self.error(
                f"unknown table {stmt.table!r}", stmt.table_pos
            )
        fact = self.catalog.get(stmt.table)
        binding = Binding(fact=fact)
        joins = self._resolve_joins(binding)
        group_by = tuple(
            self._resolve_group_column(binding, ref) for ref in stmt.group_by
        )
        aggregations = self._resolve_aggregates(binding)
        self._check_plain_select_items(binding, group_by)
        labels = {agg.label() for agg in aggregations}
        having = tuple(
            Having(
                column=self._resolve_target(
                    binding, item.target, labels, group_by, item.pos,
                    "HAVING",
                ),
                op=CompareOp(item.op),
                value=float(item.value.value),
            )
            for item in stmt.having
        )
        order_by = None
        descending = True
        if stmt.order is not None:
            order_by = self._resolve_target(
                binding, stmt.order.target, labels, group_by,
                stmt.order.pos, "ORDER BY",
            )
            descending = stmt.order.descending
        plan = LogicalPlan(
            statement=stmt,
            source=self.source,
            context=self.context,
            binding=binding,
            fact_table=stmt.table,
            aggregations=aggregations,
            group_by=group_by,
            joins=joins,
            having=having,
            order_by=order_by,
            descending=descending,
            limit=stmt.limit,
        )
        # WHERE operands are resolved (and type-checked) ahead of the
        # rules so the normalize rule works on final column names.
        if stmt.where is not None:
            plan.statement = ast.SelectStatement(
                select=stmt.select,
                table=stmt.table,
                joins=stmt.joins,
                where=self._resolve_predicate(binding, stmt.where),
                group_by=stmt.group_by,
                having=stmt.having,
                order=stmt.order,
                limit=stmt.limit,
                pos=stmt.pos,
                table_pos=stmt.table_pos,
            )
        return plan

    # -- tables and joins ----------------------------------------------

    def _resolve_joins(self, binding: Binding) -> tuple[Join, ...]:
        stmt = self.statement
        joins = []
        for clause in stmt.joins:
            if clause.table == stmt.table:
                raise self.error(
                    f"cannot join table {clause.table!r} to itself",
                    clause.pos,
                )
            if clause.table in binding.join_infos:
                raise self.error(
                    f"duplicate join table {clause.table!r}", clause.pos
                )
            if clause.table not in self.catalog:
                raise self.error(
                    f"unknown table {clause.table!r}", clause.pos
                )
            info = self.catalog.get(clause.table)
            if not binding.fact.schema.has_dimension(clause.fact_key):
                raise self.error(
                    f"join key {clause.fact_key!r} is not a dimension of "
                    f"table {stmt.table!r}",
                    clause.pos,
                )
            if not info.schema.has_dimension(clause.dim_key):
                raise self.error(
                    f"join key {clause.dim_key!r} is not a dimension of "
                    f"table {clause.table!r}",
                    clause.pos,
                )
            binding.join_infos[clause.table] = info
            joins.append(Join(
                table=clause.table,
                fact_key=clause.fact_key,
                dim_key=clause.dim_key,
            ))
        return tuple(joins)

    # -- columns --------------------------------------------------------

    def _resolve_column(
        self, binding: Binding, ref: ast.ColumnRef, *, want: str
    ) -> str:
        """Resolve to a final engine name (plain or dotted).

        ``want`` is 'dimension' (WHERE / GROUP BY) or 'column'.
        """
        name = ref.name
        if "." in name:
            table, column = name.split(".", 1)
            if table == self.statement.table:
                name = column  # fact-table prefix strips to plain
            elif table in binding.join_infos:
                schema = binding.join_infos[table].schema
                if schema.has_dimension(column):
                    return name
                if schema.has_metric(column):
                    raise self.error(
                        f"column {name!r} is a metric; only dimension "
                        f"columns are allowed here",
                        ref.pos,
                    )
                raise self.error(
                    f"unknown column {column!r} in table {table!r}",
                    ref.pos,
                )
            else:
                raise self.error(
                    f"unknown table {table!r} (not the FROM table or a "
                    f"JOIN)",
                    ref.pos,
                )
        schema = binding.fact.schema
        if schema.has_dimension(name):
            return name
        if schema.has_metric(name):
            if want == "dimension":
                raise self.error(
                    f"column {name!r} is a metric; only dimension "
                    f"columns are allowed here",
                    ref.pos,
                )
            return name
        raise self.error(
            f"unknown column {name!r} in table {self.statement.table!r}",
            ref.pos,
        )

    def _resolve_group_column(
        self, binding: Binding, ref: ast.ColumnRef
    ) -> str:
        return self._resolve_column(binding, ref, want="dimension")

    def _resolve_aggregates(
        self, binding: Binding
    ) -> tuple[Aggregation, ...]:
        stmt = self.statement
        calls = stmt.aggregates()
        if not calls:
            raise self.error(
                "at least one aggregate is required in SELECT", stmt.pos
            )
        schema = binding.fact.schema
        out = []
        for call in calls:
            func = AggFunc(call.func)
            argument = call.argument
            if argument == "*":
                out.append(Aggregation(func, "*"))
                continue
            if "." in argument:
                raise self.error(
                    "aggregates over joined columns are not supported",
                    call.pos,
                )
            if func in (AggFunc.COUNT, AggFunc.COUNT_DISTINCT):
                if not (schema.has_dimension(argument)
                        or schema.has_metric(argument)):
                    raise self.error(
                        f"unknown column {argument!r} in table "
                        f"{stmt.table!r}",
                        call.pos,
                    )
            elif not schema.has_metric(argument):
                if schema.has_dimension(argument):
                    raise self.error(
                        f"{call.func}() needs a metric column; "
                        f"{argument!r} is a dimension",
                        call.pos,
                    )
                raise self.error(
                    f"unknown column {argument!r} in table {stmt.table!r}",
                    call.pos,
                )
            out.append(Aggregation(func, argument))
        return tuple(out)

    def _check_plain_select_items(
        self, binding: Binding, group_by: tuple[str, ...]
    ) -> None:
        for item in self.statement.select:
            if isinstance(item, ast.AggregateCall):
                continue
            resolved = self._resolve_column(binding, item, want="dimension")
            if resolved not in group_by:
                raise self.error(
                    f"non-aggregate SELECT column {item.name!r} must "
                    f"appear in GROUP BY",
                    item.pos,
                )

    def _resolve_target(
        self,
        binding: Binding,
        target: str,
        labels: set[str],
        group_by: tuple[str, ...],
        pos: int,
        clause: str,
    ) -> str:
        if "(" in target:
            if target in labels:
                return target
            raise self.error(
                f"{clause} target {target!r} is not a selected aggregate "
                f"({sorted(labels)})",
                pos,
            )
        resolved = self._resolve_column(
            binding, ast.ColumnRef(name=target, pos=pos), want="dimension"
        )
        if resolved in group_by:
            return resolved
        raise self.error(
            f"{clause} target {target!r} is not a group column or "
            f"selected aggregate",
            pos,
        )

    def _resolve_predicate(
        self, binding: Binding, pred: ast.Predicate
    ) -> ast.Predicate:
        if isinstance(pred, ast.And):
            return ast.And(
                items=tuple(
                    self._resolve_predicate(binding, p) for p in pred.items
                ),
                pos=pred.pos,
            )
        if isinstance(pred, ast.Or):
            return ast.Or(
                items=tuple(
                    self._resolve_predicate(binding, p) for p in pred.items
                ),
                pos=pred.pos,
            )
        if isinstance(pred, ast.Not):
            return ast.Not(
                operand=self._resolve_predicate(binding, pred.operand),
                pos=pred.pos,
            )
        operand = pred.operand
        if isinstance(operand, ast.AggregateCall):
            raise self.error(
                "aggregates are not allowed in WHERE (use HAVING)",
                operand.pos,
            )
        resolved = self._resolve_column(binding, operand, want="dimension")
        new_operand = ast.ColumnRef(name=resolved, pos=operand.pos)
        if isinstance(pred, ast.Comparison):
            return ast.Comparison(
                operand=new_operand, op=pred.op, value=pred.value,
                pos=pred.pos,
            )
        if isinstance(pred, ast.InList):
            return ast.InList(
                operand=new_operand, values=pred.values,
                negated=pred.negated, pos=pred.pos,
            )
        return ast.BetweenPred(
            operand=new_operand, low=pred.low, high=pred.high,
            negated=pred.negated, pos=pred.pos,
        )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def plan(
    statement: ast.SelectStatement,
    context: PlannerContext,
    *,
    source: Optional[str] = None,
) -> LogicalPlan:
    """Resolve, compile and rule-annotate one statement.

    Raises :class:`SqlError` (with source position) on any resolution or
    lowering problem.
    """
    if context.catalog is None:
        raise SqlError("planning requires a catalog", statement=source,
                       position=statement.pos)
    logical = _Resolver(statement, context, source).resolve()
    # Imported lazily: rules type-hints against this module.
    from repro.sql import rules

    rules.apply_pipeline(logical)
    logical.query = Query(
        table=logical.fact_table,
        aggregations=logical.aggregations,
        group_by=logical.group_by,
        filters=logical.filters,
        joins=logical.joins,
        having=logical.having,
        order_by=logical.order_by,
        descending=logical.descending,
        limit=logical.limit,
    )
    return logical


def compile_statement(
    statement: ast.SelectStatement, *, source: Optional[str] = None
) -> Query:
    """Catalog-less lowering for the legacy ``parse_query`` surface.

    Simple conjunctive predicates map verbatim; ``!=``/``<``/``<=``/
    ``>``/``>=``/``NOT IN`` lower to complement and range filters with
    an unbounded high end; everything needing domain knowledge (OR, NOT
    BETWEEN, general NOT) raises :class:`SqlError` pointing the caller
    at the catalog-aware planner.
    """
    stmt = statement

    def err(message: str, pos: int) -> SqlError:
        return SqlError(message, statement=source, position=pos)

    aggregations = []
    for call in stmt.aggregates():
        aggregations.append(Aggregation(AggFunc(call.func), call.argument))
    if not aggregations:
        raise err("at least one aggregate is required in SELECT", stmt.pos)
    group_by = tuple(ref.name for ref in stmt.group_by)
    for item in stmt.select:
        if isinstance(item, ast.ColumnRef) and item.name not in group_by:
            raise err(
                f"non-aggregate SELECT column {item.name!r} must appear "
                f"in GROUP BY",
                item.pos,
            )
    filters: list[Filter] = []
    if stmt.where is not None:
        filters = _compile_filters_without_catalog(stmt.where, err)
    labels = {agg.label() for agg in aggregations}
    having = []
    for item in stmt.having:
        if item.target not in labels and item.target not in group_by:
            raise err(
                f"HAVING target {item.target!r} is not a group column or "
                f"selected aggregate",
                item.pos,
            )
        having.append(Having(
            column=item.target, op=CompareOp(item.op),
            value=float(item.value.value),
        ))
    order_by = None
    descending = True
    if stmt.order is not None:
        target = stmt.order.target
        if target not in labels and target not in group_by:
            raise err(
                f"ORDER BY target {target!r} is not a group column or "
                f"selected aggregate",
                stmt.order.pos,
            )
        order_by = target
        descending = stmt.order.descending
    joins = [
        Join(table=j.table, fact_key=j.fact_key, dim_key=j.dim_key)
        for j in stmt.joins
    ]
    return Query(
        table=stmt.table,
        aggregations=tuple(aggregations),
        group_by=group_by,
        filters=tuple(filters),
        joins=tuple(joins),
        having=tuple(having),
        order_by=order_by,
        descending=descending,
        limit=stmt.limit,
    )


def _compile_filters_without_catalog(pred: ast.Predicate, err) -> list[Filter]:
    literals = literal_conjuncts(None, pred)
    if literals is not None:
        return filters_from_literals(literals)
    conjuncts = list(pred.items) if isinstance(pred, ast.And) else [pred]
    filters = []
    for item in conjuncts:
        filters.append(_compile_one_without_catalog(item, err))
    return filters


def _compile_one_without_catalog(item: ast.Predicate, err) -> Filter:
    needs_catalog = (
        "this predicate needs a catalog-aware planner "
        "(use deployment.sql / repro.sql.plan)"
    )
    if isinstance(item, (ast.And, ast.Or, ast.Not)):
        raise err(needs_catalog, item.pos)
    operand = item.operand
    if isinstance(operand, ast.AggregateCall):
        raise err(
            "aggregates are not allowed in WHERE (use HAVING)", operand.pos
        )
    column = operand.name
    if isinstance(item, ast.Comparison):
        value = item.value.value
        if item.op == "=":
            return Filter.eq(column, int(value))
        if item.op == "!=":
            return Filter.not_in(column, [int(value)])
        if item.op in ("<", "<="):
            high = (
                math.ceil(value) - 1 if item.op == "<"
                else math.floor(value)
            )
            if high < 0:
                raise err(
                    f"predicate on {column!r} is always false", item.pos
                )
            return Filter.between(column, 0, high)
        low = (
            math.floor(value) + 1 if item.op == ">" else math.ceil(value)
        )
        return Filter.between(column, max(low, 0), UNBOUNDED_HIGH)
    if isinstance(item, ast.InList):
        values = [int(v.value) for v in item.values]
        if item.negated:
            return Filter.not_in(column, values)
        return Filter.isin(column, values)
    # BetweenPred
    if item.negated:
        raise err(needs_catalog, item.pos)
    low, high = int(item.low.value), int(item.high.value)
    if low > high:
        raise err(f"predicate on {column!r} is always false", item.pos)
    return Filter.between(column, low, high)
