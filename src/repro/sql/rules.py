"""Ordered rewrite-rule pipeline over the logical plan.

Each rule mutates the :class:`~repro.sql.planner.LogicalPlan` in place
and records human-readable notes; the ordered (rule, notes) trace is the
"rewrite rules" section of EXPLAIN output. Rules marked ``always`` run
even with the optimizer off — they are required for a correct
executable plan (predicate lowering, an executable join strategy); the
rest are genuinely optimizations (pushdown, pruning, placement
annotations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cubrick.query import Filter, FilterOp, kernel_family
from repro.sql import planner as planner_mod

if TYPE_CHECKING:
    from repro.sql.planner import LogicalPlan


def apply_pipeline(plan: "LogicalPlan") -> None:
    """Run every applicable rule, in order, recording the trace."""
    for rule in PIPELINE:
        if not rule.always and not plan.context.optimize:
            continue
        notes = rule.apply(plan)
        plan.trace.append((rule.name, notes or ["unchanged"]))


class NormalizePredicates:
    """Lower the WHERE tree onto the engine's conjunctive filter set.

    Simple AND-of-positive predicates map verbatim (preserving value
    order); everything else goes through per-column interval algebra
    over the dimension domains — OR within a column unions ranges, NOT
    complements, conjunctions intersect. Also injects the inner-join
    membership filter for joins with no other dotted reference, so SQL
    join semantics (drop unmatched keys) hold on every path.
    """

    name = "normalize-predicates"
    always = True

    def apply(self, plan: "LogicalPlan") -> list[str]:
        notes: list[str] = []
        where = plan.statement.where
        filters: list[Filter] = []
        if where is not None:
            literals = planner_mod.literal_conjuncts(plan, where)
            if literals is not None:
                filters = planner_mod.filters_from_literals(literals)
                notes.append(
                    f"{len(filters)} conjunctive predicate(s) mapped "
                    f"verbatim"
                )
            else:
                compiler = planner_mod.PredicateCompiler(plan)
                sets = compiler.column_sets(where)
                filters, emit_notes = planner_mod.emit_filters(
                    plan, sets, compiler.order
                )
                notes.extend(emit_notes)
        plan.filters = tuple(filters)
        notes.extend(self._inject_membership(plan))
        return notes

    @staticmethod
    def _inject_membership(plan: "LogicalPlan") -> list[str]:
        notes = []
        for join in plan.joins:
            if plan.dotted_references(join.table):
                continue
            info = plan.binding.join_infos[join.table]
            cardinality = info.schema.dimension(join.dim_key).cardinality
            membership = Filter.between(
                f"{join.table}.{join.dim_key}", 0, cardinality - 1
            )
            plan.filters = plan.filters + (membership,)
            notes.append(
                f"{join.table}: injected membership filter on "
                f"{join.dim_key} (inner-join semantics)"
            )
        return notes


class JoinStrategySelection:
    """Pick an executable strategy per joined table.

    Replicated tables always join locally on every node. Sharded tables
    broadcast their (filtered) columns to the coordinator unless the
    optimizer sees statistics putting them over the broadcast threshold,
    in which case the single sharded join runs partitioned-hash: the
    fact side fans out grouped by the join key and the coordinator
    joins pre-finalize partials. With two or more sharded joins the
    hash path's single-key regrouping does not apply, so all of them
    broadcast.
    """

    name = "join-strategy"
    always = True

    def apply(self, plan: "LogicalPlan") -> list[str]:
        notes = []
        sharded = plan.sharded_join_tables()
        for join in plan.joins:
            table = join.table
            info = plan.binding.join_infos[table]
            if info.replicated:
                plan.join_strategies[table] = "replicated-local"
                notes.append(f"{table}: replicated-local (node replicas)")
                continue
            if not plan.context.optimize:
                plan.join_strategies[table] = "broadcast"
                notes.append(
                    f"{table}: broadcast (optimizer off: default)"
                )
                continue
            if len(sharded) > 1:
                plan.join_strategies[table] = "broadcast"
                notes.append(
                    f"{table}: broadcast (forced: {len(sharded)} sharded "
                    f"joins)"
                )
                continue
            rows = None
            if plan.context.stats is not None:
                rows = plan.context.stats(table)
            if rows is None:
                plan.join_strategies[table] = "broadcast"
                notes.append(f"{table}: broadcast (no statistics)")
            elif rows <= plan.context.broadcast_threshold:
                plan.join_strategies[table] = "broadcast"
                notes.append(
                    f"{table}: broadcast ({rows} rows <= "
                    f"{plan.context.broadcast_threshold} threshold)"
                )
            else:
                plan.join_strategies[table] = "partitioned-hash"
                notes.append(
                    f"{table}: partitioned-hash ({rows} rows > "
                    f"{plan.context.broadcast_threshold} threshold)"
                )
        return notes


class PredicatePushdown:
    """Push dimension-side predicates below the join where possible.

    Partitioned-hash joins *must* apply a sharded dimension's filters at
    its collection scan (the coordinator join only sees collected rows);
    broadcast joins deliberately keep them at the fact scan, where the
    lookup arrays evaluate them per fact row. Fact-side filters always
    execute at the node scan — below the fan-out — which this rule
    records for the EXPLAIN trace.
    """

    name = "predicate-pushdown"
    always = False

    def apply(self, plan: "LogicalPlan") -> list[str]:
        notes = []
        fact_filters = [
            f for f in plan.filters if "." not in f.dimension
        ]
        if fact_filters:
            notes.append(
                f"fact: {len(fact_filters)} filter(s) pushed below "
                f"fan-out (node scans)"
            )
        for join in plan.joins:
            table = join.table
            prefix = f"{table}."
            dotted = [
                f for f in plan.filters if f.dimension.startswith(prefix)
            ]
            if not dotted:
                continue
            strategy = plan.join_strategies.get(table)
            if strategy == "partitioned-hash":
                pushed = tuple(
                    Filter(
                        dimension=f.dimension[len(prefix):],
                        op=f.op,
                        values=f.values,
                    )
                    for f in dotted
                )
                plan.dim_filters[table] = pushed
                notes.append(
                    f"{table}: {len(pushed)} filter(s) pushed into the "
                    f"dimension collection scan"
                )
            else:
                notes.append(
                    f"{table}: {len(dotted)} filter(s) kept at fact scan "
                    f"(evaluated via {strategy} lookups)"
                )
        return notes


class PartitionPruning:
    """Annotate Granular Partitioning bucket pruning per fact filter.

    Pure schema math (bucket width vs. filter ranges) — the storage
    layer applies the identical pruning at scan time; this rule makes
    the decision visible and byte-deterministic in EXPLAIN.
    """

    name = "partition-pruning"
    always = False

    def apply(self, plan: "LogicalPlan") -> list[str]:
        notes = []
        schema = plan.binding.fact.schema
        for flt in plan.filters:
            if "." in flt.dimension:
                continue
            dim = schema.dimension(flt.dimension)
            total = dim.bucket_count
            if flt.op is FilterOp.NOT_IN:
                note = (
                    f"{plan.fact_table}.{flt.dimension}: no pruning "
                    f"(complement filter scans all {total} buckets)"
                )
                notes.append(note)
                plan.pruning.append(note)
                continue
            if flt.op is FilterOp.BETWEEN:
                low = max(0, flt.values[0])
                high = min(dim.cardinality - 1, flt.values[1])
                if low > high:
                    buckets = 0
                else:
                    buckets = (
                        dim.bucket_of(high) - dim.bucket_of(low) + 1
                    )
            else:
                in_domain = {
                    v for v in flt.values if 0 <= v < dim.cardinality
                }
                buckets = len({dim.bucket_of(v) for v in in_domain})
            note = (
                f"{plan.fact_table}.{flt.dimension}: scan {buckets}/"
                f"{total} buckets"
            )
            notes.append(note)
            plan.pruning.append(note)
        if not notes:
            note = f"{plan.fact_table}: no prunable filters (full scan)"
            notes.append(note)
            plan.pruning.append(note)
        return notes


class PartialAggregationPlacement:
    """Decide where partial aggregation and finalization happen.

    Nodes always compute merge-friendly partial states over their
    partitions; the coordinator merges and finalizes. A partitioned-hash
    join adds a coordinator-side re-aggregation after the join remaps
    fan-out groups to final groups. HAVING/ORDER BY/LIMIT shaping is
    only correct after all partials merge, so it is pinned to the
    coordinator's finalize step.
    """

    name = "partial-aggregation"
    always = False

    def apply(self, plan: "LogicalPlan") -> list[str]:
        notes = []
        family = kernel_family(_placement_query(plan))
        note = (
            f"node partials: {family} over {plan.fact_table} "
            f"({plan.binding.fact.num_partitions} partitions)"
        )
        notes.append(note)
        plan.placement.append(note)
        for table, strategy in plan.join_strategies.items():
            if strategy == "partitioned-hash":
                note = (
                    f"coordinator: hash-join {table} on collected keys, "
                    f"then re-aggregate partial states"
                )
                notes.append(note)
                plan.placement.append(note)
        shaping = []
        if plan.having:
            shaping.append(f"HAVING x{len(plan.having)}")
        if plan.order_by is not None:
            direction = "DESC" if plan.descending else "ASC"
            shaping.append(f"ORDER BY {plan.order_by} {direction}")
        if plan.limit is not None:
            shaping.append(f"LIMIT {plan.limit}")
        note = (
            "coordinator finalize: " + ", ".join(shaping)
            if shaping
            else "coordinator finalize: merge only (no shaping)"
        )
        notes.append(note)
        plan.placement.append(note)
        return notes


def _placement_query(plan: "LogicalPlan"):
    """A throwaway Query carrying just shape info for kernel_family."""
    from repro.cubrick.query import Query

    return Query(
        table=plan.fact_table,
        aggregations=plan.aggregations,
        group_by=plan.group_by,
    )


PIPELINE = (
    NormalizePredicates(),
    JoinStrategySelection(),
    PredicatePushdown(),
    PartitionPruning(),
    PartialAggregationPlacement(),
)
