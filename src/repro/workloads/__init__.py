"""Workload generators and experiment drivers.

Synthetic equivalents of the production workloads the paper measures:
multi-tenant table populations with realistic size skew
(:mod:`repro.workloads.tables`), OLAP query streams
(:mod:`repro.workloads.queries`), the Figure 5 fan-out/latency
experiment (:mod:`repro.workloads.fanout_experiment`), the
Figure 4e hot/cold access trace (:mod:`repro.workloads.hotcold`), and
open/closed-loop overload traffic with Zipf tenant skew
(:mod:`repro.workloads.loadgen`).
"""

from repro.workloads.tables import (
    TableSpec,
    TenantWorkload,
    generate_rows,
    generate_table_population,
)
from repro.workloads.queries import QueryGenerator
from repro.workloads.fanout_experiment import (
    FanoutExperimentResult,
    LatencyPercentiles,
    run_fanout_experiment,
    sample_fanout_latencies,
)
from repro.workloads.hotcold import HotColdTrace, run_hot_cold_week
from repro.workloads.loadgen import (
    OverloadReport,
    TenantProfile,
    TrafficGenerator,
    overload_policy,
    run_overload_experiment,
    zipf_tenant_weights,
)
from repro.workloads.traces import (
    QueryTrace,
    ReplayReport,
    TraceEntry,
    TraceRecorder,
    replay,
)

__all__ = [
    "TableSpec",
    "TenantWorkload",
    "generate_rows",
    "generate_table_population",
    "QueryGenerator",
    "FanoutExperimentResult",
    "LatencyPercentiles",
    "run_fanout_experiment",
    "sample_fanout_latencies",
    "HotColdTrace",
    "run_hot_cold_week",
    "OverloadReport",
    "TenantProfile",
    "TrafficGenerator",
    "overload_policy",
    "run_overload_experiment",
    "zipf_tenant_weights",
    "QueryTrace",
    "TraceEntry",
    "TraceRecorder",
    "ReplayReport",
    "replay",
]
