"""The fan-out experiment (paper §IV-H, Figure 5).

The paper ran "the same simple query every 500 ms for about one week"
against tables with varying fan-out levels in a production cluster —
over 1M queries per table — and plotted per-fan-out latency on a log
scale, showing high-fan-out queries far more exposed to tail latency.

Two reproductions are provided:

* :func:`sample_fanout_latencies` — the statistical core at full paper
  scale: per-query latency is the max over ``fanout`` iid draws from the
  tail-latency model; vectorised, so 1M+ queries per fan-out is cheap.

* :func:`run_fanout_experiment` — the integrated version: real tables of
  each fan-out inside a :class:`CubrickDeployment`, real probe queries
  through the proxy, latencies from the coordinator's per-host sampling.
  Slower (full engine per query) but exercises the entire stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cubrick.query import Query
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.errors import QueryFailedError
from repro.obs import interpolated_percentiles
from repro.sim.latency import LatencyModel
from repro.workloads.queries import simple_probe_query

#: The paper's probe cadence: one query every 500 ms.
PROBE_INTERVAL = 0.5
#: Queries per table in a one-week run at that cadence.
QUERIES_PER_WEEK = int(7 * 86400 / PROBE_INTERVAL)  # 1,209,600


@dataclass(frozen=True)
class LatencyPercentiles:
    """Latency summary for one fan-out level (seconds)."""

    fanout: int
    queries: int
    p50: float
    p90: float
    p99: float
    p999: float
    p9999: float
    maximum: float

    @classmethod
    def from_samples(cls, fanout: int, samples: np.ndarray) -> "LatencyPercentiles":
        if samples.size == 0:
            raise ValueError("no latency samples")
        # Linear interpolation between order statistics (the same math
        # as repro.obs histogram readouts), not nearest/max-of-sample.
        quantiles = interpolated_percentiles(
            samples.tolist(), [50, 90, 99, 99.9, 99.99]
        )
        return cls(
            fanout=fanout,
            queries=int(samples.size),
            p50=quantiles[0],
            p90=quantiles[1],
            p99=quantiles[2],
            p999=quantiles[3],
            p9999=quantiles[4],
            maximum=float(samples.max()),
        )


@dataclass
class FanoutExperimentResult:
    """Figure 5 series: one percentile row per fan-out level."""

    rows: list[LatencyPercentiles]
    failed_queries: dict[int, int]

    def series(self, attribute: str) -> list[tuple[int, float]]:
        """(fanout, value) pairs for one percentile attribute."""
        return [(r.fanout, getattr(r, attribute)) for r in self.rows]


def sample_fanout_latencies(
    model: LatencyModel,
    fanout: int,
    queries: int,
    rng: np.random.Generator,
    *,
    batch: int = 200_000,
) -> np.ndarray:
    """Sampled per-query latencies for a fan-out level (vectorised).

    Each query's latency is the maximum of ``fanout`` independent host
    service times — the defining mechanic of the fan-out experiment.
    Batched so 1M × 64 samples stay within memory.
    """
    if fanout <= 0:
        raise ValueError(f"fanout must be positive: {fanout}")
    if queries <= 0:
        raise ValueError(f"queries must be positive: {queries}")
    out = np.empty(queries)
    done = 0
    per_batch = max(1, batch // fanout)
    while done < queries:
        n = min(per_batch, queries - done)
        samples = model.sample_many(rng, n * fanout).reshape(n, fanout)
        out[done:done + n] = samples.max(axis=1)
        done += n
    return out


def statistical_fanout_experiment(
    model: LatencyModel,
    fanouts: list[int],
    queries: int,
    rng: np.random.Generator,
) -> FanoutExperimentResult:
    """Figure 5 at paper scale via the statistical model."""
    rows = []
    for fanout in fanouts:
        samples = sample_fanout_latencies(model, fanout, queries, rng)
        rows.append(LatencyPercentiles.from_samples(fanout, samples))
    return FanoutExperimentResult(rows=rows, failed_queries={f: 0 for f in fanouts})


def probe_schema(name: str) -> TableSchema:
    """Schema used by the integrated fan-out probes."""
    return TableSchema.build(
        name,
        dimensions=[Dimension("bucket", 64, range_size=8)],
        metrics=[Metric("value")],
    )


def run_fanout_experiment(
    deployment,
    fanouts: list[int],
    *,
    queries_per_table: int = 2_000,
    rows_per_table: int = 512,
    sla_seconds: float = PROBE_INTERVAL,
) -> FanoutExperimentResult:
    """Integrated Figure 5: real tables, real probe queries end-to-end.

    ``deployment`` is a :class:`repro.core.CubrickDeployment`. One table
    per fan-out level is created with exactly that many partitions, a
    small dataset is loaded, and the fixed probe query runs
    ``queries_per_table`` times; failures (host down / sampled failure)
    are counted separately and excluded from the latency distribution,
    matching how the paper reports latency for successful runs.

    Every probe lands in the deployment's telemetry: an SLA-outcome
    counter ``workloads.fanout.probes{fanout, outcome}`` (``ok`` /
    ``sla_miss`` / ``failed``, with ``sla_seconds`` the probe budget —
    by default the probe cadence itself) and a per-fanout latency
    histogram ``workloads.fanout.latency_seconds`` with retained samples
    for exact percentile readouts.
    """
    rng = deployment.rngs.stream("fanout-experiment")
    metrics = deployment.obs.metrics
    rows_out: list[LatencyPercentiles] = []
    failed: dict[int, int] = {}
    for fanout in fanouts:
        table = f"fanout_{fanout:04d}"
        schema = probe_schema(table)
        deployment.create_table(schema, num_partitions=fanout)
        data = [
            {"bucket": int(rng.integers(64)), "value": float(rng.exponential(5.0))}
            for __ in range(rows_per_table)
        ]
        deployment.load(table, data)
        probe: Query = simple_probe_query(schema)
        # Let the new table's shard mappings propagate through SMC.
        simulator = deployment.simulator
        simulator.run_until(simulator.now + 30.0)

        latency_histogram = metrics.histogram(
            "workloads.fanout.latency_seconds",
            track_samples=True,
            fanout=fanout,
        )
        ok_counter = metrics.counter(
            "workloads.fanout.probes", fanout=fanout, outcome="ok"
        )
        miss_counter = metrics.counter(
            "workloads.fanout.probes", fanout=fanout, outcome="sla_miss"
        )
        failed_counter = metrics.counter(
            "workloads.fanout.probes", fanout=fanout, outcome="failed"
        )

        latencies = np.empty(queries_per_table)
        count = 0
        failures = 0
        for __ in range(queries_per_table):
            # The paper's cadence: one probe every 500 ms of (virtual) time.
            simulator.run_until(simulator.now + PROBE_INTERVAL)
            try:
                result = deployment.query(probe)
            except QueryFailedError:
                failures += 1
                failed_counter.inc()
                continue
            latency = result.metadata["latency"]
            latency_histogram.observe(latency)
            if latency <= sla_seconds:
                ok_counter.inc()
            else:
                miss_counter.inc()
            latencies[count] = latency
            count += 1
        failed[fanout] = failures
        if count:
            rows_out.append(
                LatencyPercentiles.from_samples(fanout, latencies[:count])
            )
    return FanoutExperimentResult(rows=rows_out, failed_queries=failed)
