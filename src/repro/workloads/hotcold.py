"""Hot/cold data-block trace (paper §IV-F2, Figure 4e).

Drives a week of skewed brick accesses against a set of bricks: recently
loaded blocks are queried far more often than old ones (Zipf-by-recency),
hotness counters increment on access and stochastically decay in
periodic sweeps. The resulting counter distribution cleanly separates a
hot head from a cold tail — the red/blue split of Figure 4e.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cubrick.bricks import Brick
from repro.cubrick.compression import classify_hot_cold, decay_all

HOURS_PER_WEEK = 7 * 24


@dataclass
class HotColdTrace:
    """Outcome of one hot/cold simulation."""

    hotness: np.ndarray  # final counter per brick
    hot_count: int
    cold_count: int
    hot_threshold: float

    @property
    def hot_fraction(self) -> float:
        total = self.hot_count + self.cold_count
        return self.hot_count / total if total else 0.0

    def histogram(self, bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
        """(counts, bin_edges) over log1p(hotness) for plotting."""
        return np.histogram(np.log1p(self.hotness), bins=bins)


def run_hot_cold_week(
    bricks: list[Brick],
    rng: np.random.Generator,
    *,
    accesses_per_hour: int = 200,
    hours: int = HOURS_PER_WEEK,
    recency_skew: float = 1.5,
    decay_probability: float = 0.3,
    decay_factor: float = 0.5,
    hot_threshold: float = 1.0,
) -> HotColdTrace:
    """Simulate a week of skewed accesses with hourly decay sweeps.

    Bricks are ranked by recency (index 0 = newest); access probability
    follows a Zipf law over that ranking, so new data stays hot and old
    data cools — the access pattern the paper describes.
    """
    if not bricks:
        raise ValueError("need at least one brick")
    if accesses_per_hour < 0 or hours <= 0:
        raise ValueError("accesses_per_hour must be >= 0 and hours > 0")
    n = len(bricks)
    for hour in range(hours):
        ranks = rng.zipf(recency_skew, size=accesses_per_hour) - 1
        ranks = np.minimum(ranks, n - 1)
        for rank in ranks:
            bricks[int(rank)].touch()
        decay_all(bricks, rng, probability=decay_probability, factor=decay_factor)
    hot, cold = classify_hot_cold(bricks, hot_threshold=hot_threshold)
    hotness = np.array([b.hotness for b in bricks])
    return HotColdTrace(
        hotness=hotness,
        hot_count=hot,
        cold_count=cold,
        hot_threshold=hot_threshold,
    )
