"""Open/closed-loop traffic generation and the overload-vs-SLA experiment.

The ROADMAP north-star is "serve heavy traffic from millions of users";
this module is where heavy traffic comes from. A
:class:`TrafficGenerator` drives a :class:`~repro.sched.WorkloadManager`
with multi-tenant query streams on the DES clock:

* **open loop** — arrivals at a fixed rate with seeded-exponential
  inter-arrival times, independent of completions (the overload model:
  users do not slow down because the system is slow);
* **closed loop** — a fixed number of clients, each resubmitting after
  its previous query resolves plus a think time (the saturation model:
  concurrency is bounded by the client population).

Tenant traffic shares are Zipf-skewed (a few hot tenants dominate, the
shape the paper's multi-tenant discussion assumes), tenant priority
classes cycle ``BACKGROUND → BATCH → INTERACTIVE`` from hottest to
coldest — so the heaviest traffic is the most sheddable, the setting in
which SLA-defending shedding can work at all — and each tenant replays
a small fixed pool of dashboard queries, which is what makes the result
cache earn its keep.

:func:`run_overload_experiment` is the acceptance harness: the same
seeded 5x-saturation storm against a managed policy (bounded queues,
EDF deadlines, adaptive shedding, cache) and against
:meth:`~repro.sched.SchedPolicy.legacy` (admit everything, queue
forever). The report renders byte-identically for identical seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.metrics import interpolated_percentiles
from repro.sched.manager import SchedPolicy, WorkloadManager
from repro.sched.queue import PriorityClass
from repro.workloads.queries import QueryGenerator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cubrick.query import Query

#: Priority ladder by tenant heat rank: the hottest tenant is the most
#: sheddable, the coldest the most protected.
_PRIORITY_CYCLE = (
    PriorityClass.BACKGROUND,
    PriorityClass.BATCH,
    PriorityClass.INTERACTIVE,
)


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's traffic identity."""

    name: str
    weight: float  # share of total traffic (sums to 1.0 across tenants)
    priority: PriorityClass


def zipf_tenant_weights(tenants: int, zipf_s: float) -> list[float]:
    """Normalised Zipf traffic shares for ``tenants`` ranked hot-to-cold.

    The one tenant-skew formula every load harness shares —
    :class:`TrafficGenerator` on the DES clock and the serving tier's
    ``repro bench-serve`` on the real clock draw from the same
    distribution, so their mixes are comparable.
    """
    if tenants <= 0:
        raise ConfigurationError(f"tenants must be positive: {tenants}")
    raw = [1.0 / (rank + 1) ** zipf_s for rank in range(tenants)]
    total = sum(raw)
    return [weight / total for weight in raw]


class TrafficGenerator:
    """Seeded multi-tenant traffic against one workload manager."""

    def __init__(
        self,
        manager: WorkloadManager,
        *,
        tenants: int = 6,
        zipf_s: float = 1.1,
        seed: int = 0,
        table: Optional[str] = None,
        query_pool_size: int = 8,
    ):
        if tenants <= 0:
            raise ConfigurationError(f"tenants must be positive: {tenants}")
        if query_pool_size <= 0:
            raise ConfigurationError(
                f"query_pool_size must be positive: {query_pool_size}"
            )
        self.manager = manager
        self._rng = np.random.default_rng(seed)
        deployment = manager.deployment
        if table is not None:
            schemas = [deployment.catalog.get(table).schema]
        else:
            schemas = [
                info.schema
                for name, info in sorted(deployment.catalog.tables.items())
                if not info.replicated
            ]
        if not schemas:
            raise ConfigurationError("deployment has no queryable tables")
        generator = QueryGenerator(schemas, self._rng)
        shares = zipf_tenant_weights(tenants, zipf_s)
        self.profiles: list[TenantProfile] = [
            TenantProfile(
                name=f"tenant{rank:02d}",
                weight=weight,
                priority=_PRIORITY_CYCLE[rank % len(_PRIORITY_CYCLE)],
            )
            for rank, weight in enumerate(shares)
        ]
        self._weights = np.array([p.weight for p in self.profiles])
        # Each tenant replays a small fixed dashboard: repeats are what
        # the result cache exists for.
        self._pools: list[list["Query"]] = [
            [generator.next_query() for __ in range(query_pool_size)]
            for __ in self.profiles
        ]
        self.submitted = 0

    # ------------------------------------------------------------------
    # Arrival generation
    # ------------------------------------------------------------------

    def _submit_one(self) -> None:
        index = int(self._rng.choice(len(self.profiles), p=self._weights))
        profile = self.profiles[index]
        pool = self._pools[index]
        query = pool[int(self._rng.integers(len(pool)))]
        self.submitted += 1
        self.manager.submit(
            query, tenant=profile.name, priority=profile.priority
        )

    def run_open_loop(self, *, rate: float, duration: float) -> int:
        """Schedule a ``rate`` qps arrival process for ``duration`` seconds.

        Inter-arrival gaps are seeded-exponential (a Poisson process).
        All arrival times are drawn up front, so the arrival pattern is
        independent of how the system responds — the defining property
        of open-loop load. Returns the number of arrivals scheduled;
        the caller advances the simulator (and drains the manager).
        """
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive: {rate}")
        if duration <= 0:
            raise ConfigurationError(f"duration must be positive: {duration}")
        simulator = self.manager.deployment.simulator
        at = 0.0
        scheduled = 0
        while True:
            at += float(self._rng.exponential(1.0 / rate))
            if at >= duration:
                break
            simulator.call_later(at, self._submit_one)
            scheduled += 1
        return scheduled

    def run_closed_loop(
        self,
        *,
        clients: int,
        duration: float,
        think_time: float = 0.0,
    ) -> None:
        """Start ``clients`` resubmit-on-completion loops for ``duration``.

        Each client waits for its query to resolve (whatever the
        outcome), thinks, and submits again — closed-loop load backs
        off as the system slows down. The caller advances the simulator.
        """
        if clients <= 0:
            raise ConfigurationError(f"clients must be positive: {clients}")
        if duration <= 0:
            raise ConfigurationError(f"duration must be positive: {duration}")
        if think_time < 0:
            raise ConfigurationError(
                f"think_time must be non-negative: {think_time}"
            )
        simulator = self.manager.deployment.simulator
        stop_at = simulator.now + duration

        def client_loop() -> None:
            if simulator.now >= stop_at:
                return
            index = int(self._rng.choice(len(self.profiles), p=self._weights))
            profile = self.profiles[index]
            pool = self._pools[index]
            query = pool[int(self._rng.integers(len(pool)))]
            self.submitted += 1
            self.manager.submit(
                query,
                tenant=profile.name,
                priority=profile.priority,
                on_done=lambda record: simulator.call_later(
                    max(think_time, 1e-9), client_loop
                ),
            )

        for __ in range(clients):
            client_loop()


# ----------------------------------------------------------------------
# The overload-vs-SLA experiment
# ----------------------------------------------------------------------

#: Queries/s one managed executor lane sustains in the experiment's
#: deployment (median service ~0.1 s, three single-slot region queues).
BASE_RATE = 30.0
#: The experiment's latency SLA: deadline every admitted query must meet.
SLA_DEADLINE = 2.0


@dataclass
class OverloadReport:
    """Deterministically renderable outcome of one overload run."""

    policy: str
    seed: int
    saturation: float
    rate: float
    duration: float
    submitted: int = 0
    outcomes: dict = field(default_factory=dict)  # outcome -> count
    admitted: int = 0
    admitted_ok: int = 0
    success_ratio: float = 1.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    latency_max: float = 0.0
    max_queue_depth: int = 0
    mean_queue_wait: float = 0.0
    shed_level_max: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    drained: bool = True

    @property
    def sla_met(self) -> bool:
        return self.success_ratio >= 0.99

    def render(self) -> str:
        lines = [
            f"overload experiment: policy={self.policy} seed={self.seed}",
            f"  storm: {self.rate:.1f} qps for {self.duration:.1f}s "
            f"({self.saturation:g}x saturation)",
            f"  submitted={self.submitted} admitted={self.admitted} "
            f"drained={'yes' if self.drained else 'NO'}",
            "  outcomes:",
        ]
        for outcome in sorted(self.outcomes):
            lines.append(f"    {outcome}={self.outcomes[outcome]}")
        lines.append(
            f"  admitted success ratio={self.success_ratio:.4f} "
            f"(ok={self.admitted_ok}/{self.admitted})"
        )
        lines.append(
            f"  latency: p50={self.latency_p50:.4f}s "
            f"p95={self.latency_p95:.4f}s p99={self.latency_p99:.4f}s "
            f"max={self.latency_max:.4f}s"
        )
        lines.append(
            f"  queues: max_depth={self.max_queue_depth} "
            f"mean_wait={self.mean_queue_wait:.4f}s"
        )
        lines.append(
            f"  shed level max={self.shed_level_max:.2f}  "
            f"cache hits={self.cache_hits} misses={self.cache_misses}"
        )
        lines.append(
            f"  verdict: {'SLA MET' if self.sla_met else 'SLA COLLAPSED'}"
        )
        return "\n".join(lines) + "\n"


def overload_policy(name: str) -> SchedPolicy:
    """The experiment's named policies: ``managed`` or ``legacy``."""
    if name == "managed":
        return SchedPolicy.managed(
            slots_per_node=1,
            max_queue_depth=8,
            deadline=SLA_DEADLINE,
            global_rate=60.0,
            tenant_rate=25.0,
            adaptive_shedding=True,
        )
    if name == "legacy":
        return SchedPolicy.legacy(deadline=SLA_DEADLINE)
    raise ConfigurationError(
        f"unknown overload policy {name!r} (known: managed, legacy)"
    )


def _build_overload_deployment(seed: int):
    """A small three-region deployment with one dashboard table.

    Service times use a slower tail-latency model (median 0.1 s) so the
    experiment's saturation point sits at a rate the DES can execute in
    sensible wall time.
    """
    from repro.core.deployment import CubrickDeployment, DeploymentConfig
    from repro.cubrick.schema import Dimension, Metric, TableSchema
    from repro.sim.latency import LogNormalTailLatency

    deployment = CubrickDeployment(
        DeploymentConfig(
            seed=seed,
            regions=3,
            racks_per_region=2,
            hosts_per_rack=3,
            max_shards=10_000,
        ),
        latency_model=LogNormalTailLatency(median=0.1),
    )
    schema = TableSchema.build(
        "events",
        dimensions=[Dimension("day", 30, range_size=7)],
        metrics=[Metric("clicks")],
    )
    deployment.create_table(schema, num_partitions=3)
    rng = np.random.default_rng(seed)
    deployment.load(
        "events",
        [
            {
                "day": int(rng.integers(30)),
                "clicks": float(rng.integers(1, 100)),
            }
            for __ in range(300)
        ],
    )
    return deployment


def _build_overload_report(
    manager: WorkloadManager,
    traffic: TrafficGenerator,
    *,
    policy: str,
    seed: int,
    saturation: float,
    rate: float,
    duration: float,
    drained: bool,
) -> OverloadReport:
    """Fold one finished storm's records into its deterministic report."""
    report = OverloadReport(
        policy=policy,
        seed=seed,
        saturation=saturation,
        rate=rate,
        duration=duration,
        submitted=traffic.submitted,
        drained=drained,
    )
    outcomes: dict[str, int] = {}
    latencies = []
    for record in manager.records:
        outcomes[record.outcome] = outcomes.get(record.outcome, 0) + 1
        if record.admitted:
            report.admitted += 1
            if record.sla_ok:
                report.admitted_ok += 1
        if record.outcome in ("ok", "cache_hit"):
            latencies.append(record.latency)
    report.outcomes = outcomes
    report.success_ratio = (
        report.admitted_ok / report.admitted if report.admitted else 1.0
    )
    if latencies:
        p50, p95, p99 = interpolated_percentiles(latencies, (50, 95, 99))
        report.latency_p50 = p50
        report.latency_p95 = p95
        report.latency_p99 = p99
        report.latency_max = max(latencies)
    report.max_queue_depth = max(
        queue.stats.max_depth for queue in manager.queues.values()
    )
    dispatched = sum(q.stats.dispatched for q in manager.queues.values())
    total_wait = sum(q.stats.total_wait for q in manager.queues.values())
    report.mean_queue_wait = total_wait / dispatched if dispatched else 0.0
    if manager.shedder is not None:
        report.shed_level_max = manager.shedder.max_level
    if manager.cache is not None:
        report.cache_hits = manager.cache.stats.hits
        report.cache_misses = manager.cache.stats.misses
    return report


def run_overload_experiment(
    seed: int = 0,
    *,
    policy: str = "managed",
    saturation: float = 5.0,
    duration: float = 20.0,
    tenants: int = 6,
) -> OverloadReport:
    """One seeded overload storm against one policy; returns its report."""
    if saturation <= 0:
        raise ConfigurationError(f"saturation must be positive: {saturation}")
    deployment = _build_overload_deployment(seed)
    manager = WorkloadManager(deployment, policy=overload_policy(policy))
    traffic = TrafficGenerator(
        manager, tenants=tenants, seed=seed, table="events"
    )
    deployment.simulator.run_until(30.0)

    rate = saturation * BASE_RATE
    traffic.run_open_loop(rate=rate, duration=duration)
    deployment.simulator.run_until(deployment.simulator.now + duration)
    drained = manager.drain(max_time=600.0)
    return _build_overload_report(
        manager,
        traffic,
        policy=policy,
        seed=seed,
        saturation=saturation,
        rate=rate,
        duration=duration,
        drained=drained,
    )


def run_profiled_overload(
    seed: int = 0,
    *,
    policy: str = "managed",
    saturation: float = 5.0,
    duration: float = 20.0,
    tenants: int = 6,
    slo_interval: float = 5.0,
):
    """The overload storm with the observability loop closed.

    Same seeded storm as :func:`run_overload_experiment`, but with an
    :class:`~repro.obs.slo.SloEngine` ticking on the DES clock
    throughout: an availability objective over the scheduler's SLA
    counters and an interactive-latency objective over the proxy's
    latency histogram. Returns ``(report, deployment, manager, engine)``
    so callers (the ``repro profile`` CLI, tests) can profile the traces
    and read the error-budget ledger after the storm.
    """
    from repro.obs.slo import SLObjective, SloEngine

    if saturation <= 0:
        raise ConfigurationError(f"saturation must be positive: {saturation}")
    deployment = _build_overload_deployment(seed)
    manager = WorkloadManager(deployment, policy=overload_policy(policy))
    traffic = TrafficGenerator(
        manager, tenants=tenants, seed=seed, table="events"
    )
    deployment.simulator.run_until(30.0)

    engine = SloEngine(deployment.obs, budget_window=3600.0)
    engine.register(
        SLObjective(
            name="sched-sla-availability",
            target=0.99,
            kind="availability",
            metric="repro.sched.sla",
        )
    )
    engine.register(
        SLObjective(
            name="proxy-interactive-latency",
            target=0.95,
            kind="latency",
            metric="cubrick.proxy.latency_seconds",
            threshold=1.0,
        )
    )
    cancel = engine.attach(deployment.simulator, interval=slo_interval)

    rate = saturation * BASE_RATE
    traffic.run_open_loop(rate=rate, duration=duration)
    deployment.simulator.run_until(deployment.simulator.now + duration)
    drained = manager.drain(max_time=600.0)
    cancel()
    engine.tick()  # final sample so the ledger covers the drain tail
    report = _build_overload_report(
        manager,
        traffic,
        policy=policy,
        seed=seed,
        saturation=saturation,
        rate=rate,
        duration=duration,
        drained=drained,
    )
    return report, deployment, manager, engine
