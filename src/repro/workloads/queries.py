"""OLAP query stream generator.

Generates dashboard-style queries over a table population: Zipf-skewed
table popularity (a few hot dashboards dominate), random filters over
recent time ranges, and mixed aggregation/group-by shapes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cubrick.query import AggFunc, Aggregation, Filter, Query
from repro.cubrick.schema import TableSchema


class QueryGenerator:
    """Random but schema-valid queries over a set of tables."""

    def __init__(
        self,
        schemas: list[TableSchema],
        rng: np.random.Generator,
        *,
        table_skew: float = 1.3,
        group_by_probability: float = 0.4,
        filter_probability: float = 0.8,
    ):
        if not schemas:
            raise ValueError("need at least one schema")
        if not 0.0 <= group_by_probability <= 1.0:
            raise ValueError(
                f"group_by_probability out of range: {group_by_probability}"
            )
        if not 0.0 <= filter_probability <= 1.0:
            raise ValueError(
                f"filter_probability out of range: {filter_probability}"
            )
        self.schemas = list(schemas)
        self._rng = rng
        self.table_skew = table_skew
        self.group_by_probability = group_by_probability
        self.filter_probability = filter_probability

    def _pick_schema(self) -> TableSchema:
        if self.table_skew > 1.0 and len(self.schemas) > 1:
            index = min(
                int(self._rng.zipf(self.table_skew)) - 1, len(self.schemas) - 1
            )
        else:
            index = int(self._rng.integers(len(self.schemas)))
        return self.schemas[index]

    def next_query(self, table: Optional[str] = None) -> Query:
        """Generate one query (optionally pinned to a table)."""
        if table is not None:
            schema = next(s for s in self.schemas if s.name == table)
        else:
            schema = self._pick_schema()

        aggregations = [Aggregation(AggFunc.SUM, schema.metrics[0].name)]
        if self._rng.random() < 0.5:
            aggregations.append(Aggregation(AggFunc.COUNT, schema.metrics[0].name))

        filters: list[Filter] = []
        if self._rng.random() < self.filter_probability:
            dim = schema.dimensions[int(self._rng.integers(len(schema.dimensions)))]
            kind = self._rng.random()
            if kind < 0.4:
                filters.append(Filter.eq(dim.name, int(self._rng.integers(dim.cardinality))))
            elif kind < 0.7:
                low = int(self._rng.integers(dim.cardinality))
                high = min(
                    low + int(self._rng.integers(1, max(2, dim.cardinality // 4))),
                    dim.cardinality - 1,
                )
                filters.append(Filter.between(dim.name, low, high))
            else:
                k = int(self._rng.integers(1, 4))
                values = self._rng.integers(dim.cardinality, size=k)
                filters.append(Filter.isin(dim.name, [int(v) for v in values]))

        group_by: list[str] = []
        if self._rng.random() < self.group_by_probability:
            dim = schema.dimensions[int(self._rng.integers(len(schema.dimensions)))]
            group_by.append(dim.name)

        return Query.build(
            schema.name, aggregations, group_by=group_by, filters=filters
        )

    def stream(self, count: int) -> list[Query]:
        """Generate ``count`` queries."""
        if count < 0:
            raise ValueError(f"count must be non-negative: {count}")
        return [self.next_query() for __ in range(count)]


def simple_probe_query(schema: TableSchema) -> Query:
    """The fan-out experiment's fixed 'same simple query' (paper §IV-H)."""
    return Query.build(schema.name, [Aggregation(AggFunc.COUNT, schema.metrics[0].name)])
