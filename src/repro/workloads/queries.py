"""OLAP query stream generator.

Generates dashboard-style queries over a table population: Zipf-skewed
table popularity (a few hot dashboards dominate), random filters over
recent time ranges, and mixed aggregation/group-by shapes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cubrick.query import AggFunc, Aggregation, Filter, Query
from repro.cubrick.schema import TableSchema


class QueryGenerator:
    """Random but schema-valid queries over a set of tables."""

    def __init__(
        self,
        schemas: list[TableSchema],
        rng: np.random.Generator,
        *,
        table_skew: float = 1.3,
        group_by_probability: float = 0.4,
        filter_probability: float = 0.8,
    ):
        if not schemas:
            raise ValueError("need at least one schema")
        if not 0.0 <= group_by_probability <= 1.0:
            raise ValueError(
                f"group_by_probability out of range: {group_by_probability}"
            )
        if not 0.0 <= filter_probability <= 1.0:
            raise ValueError(
                f"filter_probability out of range: {filter_probability}"
            )
        self.schemas = list(schemas)
        self._rng = rng
        self.table_skew = table_skew
        self.group_by_probability = group_by_probability
        self.filter_probability = filter_probability

    def _pick_schema(self) -> TableSchema:
        if self.table_skew > 1.0 and len(self.schemas) > 1:
            index = min(
                int(self._rng.zipf(self.table_skew)) - 1, len(self.schemas) - 1
            )
        else:
            index = int(self._rng.integers(len(self.schemas)))
        return self.schemas[index]

    def next_query(self, table: Optional[str] = None) -> Query:
        """Generate one query (optionally pinned to a table)."""
        if table is not None:
            schema = next(s for s in self.schemas if s.name == table)
        else:
            schema = self._pick_schema()

        aggregations = [Aggregation(AggFunc.SUM, schema.metrics[0].name)]
        if self._rng.random() < 0.5:
            aggregations.append(Aggregation(AggFunc.COUNT, schema.metrics[0].name))

        filters: list[Filter] = []
        if self._rng.random() < self.filter_probability:
            dim = schema.dimensions[int(self._rng.integers(len(schema.dimensions)))]
            kind = self._rng.random()
            if kind < 0.4:
                filters.append(Filter.eq(dim.name, int(self._rng.integers(dim.cardinality))))
            elif kind < 0.7:
                low = int(self._rng.integers(dim.cardinality))
                high = min(
                    low + int(self._rng.integers(1, max(2, dim.cardinality // 4))),
                    dim.cardinality - 1,
                )
                filters.append(Filter.between(dim.name, low, high))
            else:
                k = int(self._rng.integers(1, 4))
                values = self._rng.integers(dim.cardinality, size=k)
                filters.append(Filter.isin(dim.name, [int(v) for v in values]))

        group_by: list[str] = []
        if self._rng.random() < self.group_by_probability:
            dim = schema.dimensions[int(self._rng.integers(len(schema.dimensions)))]
            group_by.append(dim.name)

        return Query.build(
            schema.name, aggregations, group_by=group_by, filters=filters
        )

    def stream(self, count: int) -> list[Query]:
        """Generate ``count`` queries."""
        if count < 0:
            raise ValueError(f"count must be non-negative: {count}")
        return [self.next_query() for __ in range(count)]

    def next_sql(self, table: Optional[str] = None) -> str:
        """One generated query rendered as a SQL statement.

        The SQL-defined workload variant: the same schema-valid query
        stream, but expressed in the dialect so it runs through the full
        parse/plan/execute pipeline (``deployment.sql``) instead of the
        programmatic :class:`Query` path.
        """
        from repro.cubrick.sql import render_query

        return render_query(self.next_query(table))

    def sql_stream(self, count: int) -> list[str]:
        """Generate ``count`` SQL statements."""
        if count < 0:
            raise ValueError(f"count must be non-negative: {count}")
        return [self.next_sql() for __ in range(count)]


def simple_probe_query(schema: TableSchema) -> Query:
    """The fan-out experiment's fixed 'same simple query' (paper §IV-H)."""
    return Query.build(schema.name, [Aggregation(AggFunc.COUNT, schema.metrics[0].name)])


def tpch_style_queries(
    fact: str = "events",
    users: str = "dim_users",
    geo: str = "dim_geo",
) -> list[str]:
    """A fixed TPC-H-flavoured SQL suite over the demo star schema.

    Ten statements against ``events(day, country, user_id; clicks,
    cost)`` joined to a sharded ``dim_users(user_id, tier)`` and a
    replicated ``dim_geo(country, region)`` — pricing-summary,
    top-N, and join-heavy shapes scaled down to the engine's dialect.
    Used by EXPERIMENTS.md's ``repro sql`` recipe and the differential
    battery.
    """
    return [
        # Q1-style pricing summary: wide scan, group, every agg family.
        f"SELECT day, sum(clicks), sum(cost), avg(cost), count(*) "
        f"FROM {fact} GROUP BY day ORDER BY day ASC",
        # Q3-style top-N over a recent window.
        f"SELECT country, sum(clicks) FROM {fact} "
        f"WHERE day BETWEEN 0 AND 6 "
        f"GROUP BY country ORDER BY sum(clicks) DESC LIMIT 10",
        # Q4-style existence count with a range predicate.
        f"SELECT count(*) FROM {fact} WHERE day < 7 AND country <= 9",
        # Q5-style local-nation revenue: replicated join + group.
        f"SELECT {geo}.region, sum(cost) FROM {fact} "
        f"JOIN {geo} ON {fact}.country = {geo}.country "
        f"GROUP BY {geo}.region ORDER BY sum(cost) DESC",
        # Q10-style returned-item ranking: sharded join, top-N.
        f"SELECT {users}.tier, sum(cost) FROM {fact} "
        f"JOIN {users} ON {fact}.user_id = {users}.user_id "
        f"GROUP BY {users}.tier ORDER BY sum(cost) DESC LIMIT 5",
        # Q13-style distribution: distinct users per day.
        f"SELECT day, count_distinct(user_id) FROM {fact} "
        f"GROUP BY day ORDER BY count_distinct(user_id) DESC LIMIT 7",
        # Q16-style filtered join with an exclusion list.
        f"SELECT {users}.tier, count(*) FROM {fact} "
        f"JOIN {users} ON {fact}.user_id = {users}.user_id "
        f"WHERE country NOT IN (0, 1) "
        f"GROUP BY {users}.tier ORDER BY count(*) DESC",
        # Q18-style large-volume customers via HAVING.
        f"SELECT country, sum(clicks) FROM {fact} GROUP BY country "
        f"HAVING sum(clicks) > 100 ORDER BY sum(clicks) DESC LIMIT 10",
        # Q19-style disjunctive predicate (compiled to one IN filter).
        f"SELECT sum(cost) FROM {fact} "
        f"WHERE day = 0 OR day = 1 OR day = 2",
        # Two-join star probe: sharded and replicated sides together.
        f"SELECT {geo}.region, count(*) FROM {fact} "
        f"JOIN {users} ON {fact}.user_id = {users}.user_id "
        f"JOIN {geo} ON {fact}.country = {geo}.country "
        f"WHERE {users}.tier = 1 GROUP BY {geo}.region "
        f"ORDER BY count(*) DESC",
    ]
