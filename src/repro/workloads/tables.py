"""Multi-tenant table populations with realistic size skew.

The partial-sharding model targets multi-tenant systems storing a large
number of small and medium tables (paper §II-C). Production table sizes
are heavy-tailed: most tables never outgrow the initial 8 partitions,
while a ~10% tail is re-partitioned up to ~60 partitions (Figure 4b).
We generate that population with a lognormal row-count distribution
whose parameters were chosen so the partition-count histogram matches
the paper's shape under the default :class:`PartitioningPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.cubrick.partitioning import PartitioningPolicy
from repro.cubrick.schema import Dimension, Metric, TableSchema


@dataclass(frozen=True)
class TableSpec:
    """One generated tenant table: schema plus target size."""

    schema: TableSchema
    rows: int

    @property
    def name(self) -> str:
        return self.schema.name


def default_schema(name: str, *, days: int = 30, entities: int = 1000,
                   range_size: int = 7) -> TableSchema:
    """A typical dashboard-style schema: time × entity, two metrics."""
    return TableSchema.build(
        name,
        dimensions=[
            Dimension("day", days, range_size=range_size),
            Dimension("entity", entities, range_size=max(1, entities // 8)),
        ],
        metrics=[Metric("value"), Metric("weight")],
    )


def generate_table_population(
    count: int,
    rng: np.random.Generator,
    *,
    median_rows: int = 120_000,
    sigma: float = 1.4,
    max_rows: int = 5_000_000,
    name_prefix: str = "tenant",
) -> list[TableSpec]:
    """Generate ``count`` tables with lognormal row counts.

    ``median_rows``/``sigma`` default to values calibrated against the
    default :class:`PartitioningPolicy` so that most tables stay at 8
    partitions and roughly 10% cross the re-partition threshold, with
    the tail reaching tens of partitions — the Figure 4b shape.
    """
    if count <= 0:
        raise ValueError(f"count must be positive: {count}")
    sizes = rng.lognormal(mean=np.log(median_rows), sigma=sigma, size=count)
    specs = []
    for i, size in enumerate(sizes):
        rows = int(min(max(size, 10), max_rows))
        specs.append(
            TableSpec(schema=default_schema(f"{name_prefix}_{i:05d}"), rows=rows)
        )
    return specs


def expected_partitions(rows: int, policy: PartitioningPolicy) -> int:
    """Partition count a table of ``rows`` converges to under the policy.

    Mirrors the repeated-doubling behaviour of re-partitioning: grow
    while the mean partition size exceeds the threshold.
    """
    count = policy.initial_partitions
    while (
        rows / count > policy.max_rows_per_partition
        and count < policy.max_partitions
    ):
        count = min(count * 2, policy.max_partitions)
    return count


def generate_rows(
    schema: TableSchema,
    count: int,
    rng: np.random.Generator,
    *,
    skew: float = 1.2,
) -> Iterator[dict[str, float]]:
    """Yield ``count`` rows with Zipf-skewed dimension values.

    Recently-loaded data being queried more often is modelled downstream;
    here the skew shapes the *data* so bricks receive uneven row counts,
    as real dimensional data does.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative: {count}")
    for __ in range(count):
        row: dict[str, float] = {}
        for dim in schema.dimensions:
            if skew > 1.0:
                value = min(int(rng.zipf(skew)) - 1, dim.cardinality - 1)
            else:
                value = int(rng.integers(dim.cardinality))
            row[dim.name] = value
        for metric in schema.metrics:
            row[metric.name] = float(rng.exponential(10.0))
        yield row


@dataclass
class TenantWorkload:
    """A ready-to-load multi-tenant population."""

    specs: list[TableSpec]

    @classmethod
    def generate(cls, count: int, seed: int = 0, **kwargs) -> "TenantWorkload":
        rng = np.random.default_rng(seed)
        return cls(specs=generate_table_population(count, rng, **kwargs))

    def partition_histogram(
        self, policy: PartitioningPolicy | None = None
    ) -> dict[int, int]:
        """Partition-count histogram this population converges to."""
        effective = policy if policy is not None else PartitioningPolicy()
        histogram: dict[int, int] = {}
        for spec in self.specs:
            partitions = expected_partitions(spec.rows, effective)
            histogram[partitions] = histogram.get(partitions, 0) + 1
        return dict(sorted(histogram.items()))
