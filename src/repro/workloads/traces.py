"""Query-trace record and replay.

Production debugging and benchmarking both need reproducible workloads:
record the query stream a deployment served (from the proxy's query
log plus the rendered SQL) and replay it — against the same deployment,
a differently-configured one, or after a code change — comparing
success ratios and latency distributions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cubrick.query import Query
from repro.cubrick.sql import parse_query, render_query
from repro.errors import QueryFailedError, ReproError


@dataclass(frozen=True)
class TraceEntry:
    """One recorded query: virtual submit time plus the statement."""

    offset: float  # seconds since trace start
    sql: str

    def to_json(self) -> str:
        return json.dumps({"offset": self.offset, "sql": self.sql})

    @classmethod
    def from_json(cls, line: str) -> "TraceEntry":
        payload = json.loads(line)
        return cls(offset=float(payload["offset"]), sql=payload["sql"])


@dataclass
class QueryTrace:
    """An ordered, replayable query stream."""

    entries: list[TraceEntry] = field(default_factory=list)

    def record(self, offset: float, query: Query) -> None:
        self.entries.append(TraceEntry(offset=offset, sql=render_query(query)))

    def dumps(self) -> str:
        """Serialise to newline-delimited JSON."""
        return "\n".join(entry.to_json() for entry in self.entries)

    @classmethod
    def loads(cls, text: str) -> "QueryTrace":
        entries = [
            TraceEntry.from_json(line)
            for line in text.splitlines()
            if line.strip()
        ]
        return cls(entries=entries)

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class ReplayReport:
    """Outcome of one trace replay."""

    total: int
    succeeded: int
    failed: int
    latencies: list[float]

    @property
    def success_ratio(self) -> float:
        return self.succeeded / self.total if self.total else 1.0

    def percentile(self, q: float) -> float:
        if not self.latencies:
            raise ReproError("no successful queries to summarise")
        return float(np.percentile(self.latencies, q))


class TraceRecorder:
    """Wraps a deployment: every query is executed *and* recorded."""

    def __init__(self, deployment):
        self._deployment = deployment
        self._start = deployment.simulator.now
        self.trace = QueryTrace()

    def query(self, query: Query, **kwargs):
        self.trace.record(self._deployment.simulator.now - self._start, query)
        return self._deployment.query(query, **kwargs)

    def sql(self, statement: str, **kwargs):
        return self.query(parse_query(statement), **kwargs)


def replay(deployment, trace: QueryTrace, *,
           time_scale: float = 1.0,
           deadline: Optional[float] = None) -> ReplayReport:
    """Replay a trace against a deployment at its recorded pacing.

    ``time_scale`` stretches (>1) or compresses (<1) the inter-query
    gaps; the virtual clock is advanced to each entry's offset before
    submitting, so background processes (balancing, failures, decay)
    interleave exactly as they would have live.
    """
    if time_scale <= 0:
        raise ReproError(f"time_scale must be positive: {time_scale}")
    simulator = deployment.simulator
    start = simulator.now
    succeeded = 0
    failed = 0
    latencies: list[float] = []
    for entry in trace.entries:
        target = start + entry.offset * time_scale
        if target > simulator.now:
            simulator.run_until(target)
        try:
            result = deployment.query(
                parse_query(entry.sql), deadline=deadline
            )
        except QueryFailedError:
            failed += 1
            continue
        succeeded += 1
        latencies.append(result.metadata["latency"])
    return ReplayReport(
        total=len(trace.entries),
        succeeded=succeeded,
        failed=failed,
        latencies=latencies,
    )
