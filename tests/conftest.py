"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.topology import Cluster
from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.shardmanager.app_server import InMemoryApplicationServer
from repro.shardmanager.server import SMServer
from repro.shardmanager.spec import ServiceSpec
from repro.sim.engine import Simulator


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite golden EXPLAIN snapshots instead of comparing",
    )


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def simulator() -> Simulator:
    return Simulator()


@pytest.fixture
def small_cluster() -> Cluster:
    return Cluster.build(regions=1, racks_per_region=2, hosts_per_rack=5)


@pytest.fixture
def three_region_cluster() -> Cluster:
    return Cluster.build(regions=3, racks_per_region=2, hosts_per_rack=3)


@pytest.fixture
def sm_service(simulator, small_cluster):
    """An SM service with ten registered in-memory application servers."""
    spec = ServiceSpec(name="test", max_shards=10_000)
    server = SMServer(spec, simulator, small_cluster, region="region0")
    apps = {}
    for host in small_cluster.hosts():
        app = InMemoryApplicationServer(host.host_id, capacity=1000.0)
        apps[host.host_id] = app
        server.register_host(app)
    return server, apps


@pytest.fixture
def events_schema() -> TableSchema:
    return TableSchema.build(
        "events",
        dimensions=[
            Dimension("day", 30, range_size=7),
            Dimension("country", 100, range_size=25),
        ],
        metrics=[Metric("clicks"), Metric("cost")],
    )


def make_rows(schema: TableSchema, count: int, seed: int = 0) -> list[dict]:
    """Deterministic random rows matching a schema."""
    generator = np.random.default_rng(seed)
    rows = []
    for __ in range(count):
        row = {}
        for dim in schema.dimensions:
            row[dim.name] = int(generator.integers(dim.cardinality))
        for metric in schema.metrics:
            row[metric.name] = float(generator.integers(1, 100))
        rows.append(row)
    return rows


@pytest.fixture
def tiny_deployment(events_schema) -> CubrickDeployment:
    """A loaded 2-region deployment for end-to-end tests."""
    deployment = CubrickDeployment(
        DeploymentConfig(seed=99, regions=2, racks_per_region=2, hosts_per_rack=3)
    )
    deployment.create_table(events_schema)
    deployment.load("events", make_rows(events_schema, 500, seed=7))
    deployment.simulator.run_until(30.0)
    return deployment
