"""The wall-breach control loop: signals in, actuations out.

Each test drives one control path in isolation by fabricating the
observability signal that should trigger it: SLA misses through the
proxy query log, load through the queue-pressure hook, idleness through
tiny datasets — then asserts the controller pulled the right actuator
(cap move, reshard, provision, decommission) and nothing else.
"""

import pytest

from repro.autoscale.controller import ControllerSpec, WallBreachController
from repro.autoscale.fleet import FleetController, FleetSpec
from repro.autoscale.reshard import ReshardPlanner, ReshardSpec
from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.core.wall import scalability_wall
from repro.cubrick.proxy import QueryLogEntry
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.errors import ConfigurationError


def build_deployment(seed=0, *, regions=1, racks=2, hosts_per_rack=3,
                     partitions=2, rows=200):
    deployment = CubrickDeployment(
        DeploymentConfig(
            seed=seed,
            regions=regions,
            racks_per_region=racks,
            hosts_per_rack=hosts_per_rack,
            max_shards=10_000,
        )
    )
    schema = TableSchema.build(
        "events",
        dimensions=[Dimension("day", 30, range_size=7)],
        metrics=[Metric("clicks")],
    )
    deployment.create_table(schema, num_partitions=partitions)
    deployment.load(
        "events",
        [{"day": i % 30, "clicks": 1.0} for i in range(rows)],
    )
    return deployment


def build_controller(deployment, spec=None, **kwargs):
    fleet = FleetController(deployment, FleetSpec())
    reshard = ReshardPlanner(deployment, ReshardSpec())
    # p=1e-3 puts the wall at 10 — small enough to exercise cap moves.
    spec = spec or ControllerSpec(failure_probability=1e-3)
    return WallBreachController(deployment, fleet, reshard, spec, **kwargs)


def log_queries(deployment, *, succeeded, failed):
    """Fabricate proxy log entries to shape the success window."""
    now = deployment.simulator.now
    log = deployment.proxy.query_log
    for __ in range(succeeded):
        log.append(QueryLogEntry(now, "events", True, 1))
    for __ in range(failed):
        log.append(QueryLogEntry(now, "events", False, 1))


class TestFanoutCap:
    def test_cap_starts_at_analytic_wall(self):
        deployment = build_deployment()
        controller = build_controller(deployment)
        assert controller.fanout_cap == scalability_wall(1e-3, 0.99) == 10

    def test_sla_miss_tightens_cap(self):
        deployment = build_deployment()
        controller = build_controller(deployment)
        log_queries(deployment, succeeded=90, failed=10)  # 0.90 < 0.99
        decision = controller.step()
        assert controller.fanout_cap == 9
        assert any("tighten" in a for a in decision.actions)
        assert decision.success_ratio == pytest.approx(0.90)

    def test_cap_moves_respect_cooldown(self):
        deployment = build_deployment()
        controller = build_controller(
            deployment,
            ControllerSpec(failure_probability=1e-3, cooldown=120.0),
        )
        log_queries(deployment, succeeded=90, failed=10)
        controller.step()
        assert controller.fanout_cap == 9
        # The window is sticky: without a cooldown every tick would keep
        # tightening on the same bad stretch. Same signal, no move.
        controller.step()
        assert controller.fanout_cap == 9
        deployment.simulator.run_until(deployment.simulator.now + 130.0)
        controller.step()
        assert controller.fanout_cap == 8

    def test_recovery_relaxes_cap_toward_analytic(self):
        deployment = build_deployment()
        controller = build_controller(deployment)
        log_queries(deployment, succeeded=90, failed=10)
        controller.step()
        assert controller.fanout_cap == 9
        # Flush the bad stretch out of the window with clean traffic.
        log_queries(deployment, succeeded=300, failed=0)
        deployment.simulator.run_until(deployment.simulator.now + 130.0)
        decision = controller.step()
        assert controller.fanout_cap == 10
        assert any("relax" in a for a in decision.actions)

    def test_cap_never_exceeds_analytic_wall(self):
        deployment = build_deployment()
        controller = build_controller(deployment)
        log_queries(deployment, succeeded=300, failed=0)
        deployment.simulator.run_until(deployment.simulator.now + 130.0)
        controller.step()
        assert controller.fanout_cap == 10  # already at the wall

    def test_short_window_is_inconclusive(self):
        deployment = build_deployment()
        controller = build_controller(deployment)
        log_queries(deployment, succeeded=0, failed=5)  # < min samples
        assert controller.windowed_success_ratio() == 1.0
        controller.step()
        assert controller.fanout_cap == 10

    def test_over_cap_table_is_narrowed(self):
        # A lossier network moves the wall to 2; the 4-wide table must
        # be narrowed to the cap via an online reshard.
        deployment = build_deployment(partitions=4, racks=2)
        controller = build_controller(
            deployment,
            ControllerSpec(failure_probability=0.005, sla=0.99),
        )
        assert controller.fanout_cap == scalability_wall(0.005, 0.99) == 2
        decision = controller.step()
        assert any("narrow events" in a for a in decision.actions)
        deployment.simulator.run_until(deployment.simulator.now + 300.0)
        assert deployment.catalog.get("events").num_partitions == 2


class TestFleetActuation:
    def test_queue_pressure_provisions_hosts(self):
        deployment = build_deployment()
        controller = build_controller(
            deployment,
            ControllerSpec(hosts_per_step=2),
            queue_pressure_fn=lambda: 1.0,
        )
        before = controller.fleet.registered_hosts("region0")
        decision = controller.step()
        assert any("provision" in a for a in decision.actions)
        assert decision.queue_pressure == 1.0
        deployment.simulator.run_until(deployment.simulator.now + 120.0)
        assert controller.fleet.registered_hosts("region0") == before + 2

    def test_scale_out_respects_cooldown(self):
        deployment = build_deployment()
        controller = build_controller(
            deployment,
            ControllerSpec(cooldown=300.0),
            queue_pressure_fn=lambda: 1.0,
        )
        controller.step()
        second = controller.step()
        assert not any("provision" in a for a in second.actions)

    def test_idle_cluster_scales_in_emptiest_host(self):
        deployment = build_deployment(racks=2, hosts_per_rack=3, rows=50)
        sm = deployment.sm_servers["region0"]
        controller = build_controller(
            deployment,
            ControllerSpec(
                scale_in_utilization=0.5,
                scale_out_utilization=0.9,
                min_hosts_per_region=4,
            ),
        )
        emptiest = min(
            sorted(sm.registered_hosts()),
            key=lambda h: (len(sm.shards_on_host(h)), h),
        )
        decision = controller.step()
        assert f"decommission {emptiest}" in decision.actions
        deployment.simulator.run_until(deployment.simulator.now + 300.0)
        assert emptiest not in sm.registered_hosts()
        assert len(sm.registered_hosts()) == 5

    def test_scale_in_respects_region_floor(self):
        deployment = build_deployment(racks=2, hosts_per_rack=2, rows=50)
        controller = build_controller(
            deployment,
            ControllerSpec(
                scale_in_utilization=0.5,
                scale_out_utilization=0.9,
                min_hosts_per_region=4,
            ),
        )
        decision = controller.step()
        assert not any("decommission" in a for a in decision.actions)
        assert len(
            deployment.sm_servers["region0"].registered_hosts()
        ) == 4

    def test_in_flight_drains_count_against_floor(self):
        deployment = build_deployment(racks=2, hosts_per_rack=3, rows=50)
        controller = build_controller(
            deployment,
            ControllerSpec(
                scale_in_utilization=0.5,
                scale_out_utilization=0.9,
                min_hosts_per_region=5,
                cooldown=0.001,
            ),
        )
        first = controller.step()
        assert any("decommission" in a for a in first.actions)
        # The first drain is still in flight; 6 registered - 1 draining
        # is already at the floor, so a second victim must not be taken.
        deployment.simulator.run_until(deployment.simulator.now + 0.5)
        second = controller.step()
        assert not any("decommission" in a for a in second.actions)


class TestLoop:
    def test_periodic_loop_records_decisions(self):
        deployment = build_deployment()
        controller = build_controller(
            deployment, ControllerSpec(interval=10.0)
        )
        controller.start(until=55.0)
        deployment.simulator.run_until(60.0)
        controller.stop()
        assert len(controller.decisions) == 5
        assert [d.time for d in controller.decisions] == \
            [10.0, 20.0, 30.0, 40.0, 50.0]
        ticks = deployment.obs.metrics.counter("autoscale.controller.ticks")
        assert ticks.value == 5

    def test_stop_halts_the_loop(self):
        deployment = build_deployment()
        controller = build_controller(
            deployment, ControllerSpec(interval=10.0)
        )
        controller.start()
        deployment.simulator.run_until(25.0)
        controller.stop()
        deployment.simulator.run_until(100.0)
        assert len(controller.decisions) == 2

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            ControllerSpec(sla=1.5)
        with pytest.raises(ConfigurationError):
            ControllerSpec(interval=0.0)
        with pytest.raises(ConfigurationError):
            ControllerSpec(hosts_per_step=0)
        with pytest.raises(ConfigurationError):
            ControllerSpec(
                scale_in_utilization=0.8, scale_out_utilization=0.7
            )
