"""The autoscale demo experiment: deterministic, and it breaches the wall.

The full acceptance run (4 phases, 500 queries each) lives in the CI
job via the CLI; these tests exercise a scaled-down run so the suite
stays fast, plus the report/CLI plumbing around it.
"""

import pytest

from repro.autoscale.demo import (
    AutoscaleReport,
    PhaseStats,
    run_autoscale_experiment,
)
from repro.cli import build_parser, cmd_autoscale
from repro.core.wall import scalability_wall


def small_run(seed=3):
    return run_autoscale_experiment(
        seed, phases=2, queries_per_phase=60, phase_duration=120.0
    )


class TestExperiment:
    def test_seeded_runs_are_byte_identical(self):
        first = small_run()
        second = small_run()
        assert first.render() == second.render()

    def test_report_structure(self):
        report = small_run()
        assert report.wall == scalability_wall(1e-3, 0.99) == 10
        assert report.sla == 0.99
        assert [p.phase for p in report.managed_phases] == [0, 1]
        assert [p.phase for p in report.baseline_phases] == [0, 1]
        # Both arms replayed the identical workload.
        for managed, baseline in zip(
            report.managed_phases, report.baseline_phases
        ):
            assert managed.queries == baseline.queries == 60
        # The baseline arm grows the fleet AND the fan-out each phase;
        # the managed arm keeps fan-out capped regardless of fleet size.
        assert report.baseline_phases[1].hosts == 16
        assert report.baseline_phases[1].partitions == 16
        assert report.managed_phases[1].partitions <= report.managed_fanout_cap

    def test_render_contains_verdicts(self):
        report = small_run()
        text = report.render()
        assert f"wall={report.wall} hosts" in text
        assert "managed" in text and "baseline" in text
        assert f"seed={report.seed}" in text
        assert "verdict:" in text

    def test_different_seeds_differ(self):
        assert small_run(3).render() != small_run(4).render()


class TestReportMath:
    def phases(self, *ratios, queries=1000):
        return [
            PhaseStats(
                phase=i, hosts=8, partitions=4, queries=queries,
                succeeded=int(round(ratio * queries)),
            )
            for i, ratio in enumerate(ratios)
        ]

    def report(self, managed, baseline):
        return AutoscaleReport(
            seed=0, sla=0.99, failure_probability=1e-3, wall=10,
            managed_phases=managed, baseline_phases=baseline,
            managed_hosts_provisioned=2, managed_reshards=["2->4"],
            managed_fanout_cap=10, managed_control_actions=3,
        )

    def test_success_ratios_aggregate_over_phases(self):
        report = self.report(
            self.phases(1.0, 0.99), self.phases(0.99, 0.95)
        )
        assert report.managed_success == pytest.approx(0.995)
        assert report.baseline_success == pytest.approx(0.97)
        assert report.sla_met
        assert report.baseline_collapsed

    def test_wall_breach_requires_both_verdicts(self):
        healthy = self.phases(1.0, 1.0)
        assert self.report(healthy, healthy).sla_met
        assert not self.report(healthy, healthy).baseline_collapsed
        degraded = self.phases(0.9, 0.9)
        assert not self.report(degraded, degraded).sla_met

    def test_empty_phase_list_is_vacuously_successful(self):
        report = self.report([], [])
        assert report.managed_success == 1.0
        assert report.sla_met


class TestCli:
    def test_parser_wires_autoscale_command(self):
        parser = build_parser()
        args = parser.parse_args(
            ["autoscale", "--seed", "7", "--phases", "3", "--queries", "50"]
        )
        assert args.func is cmd_autoscale
        assert (args.seed, args.phases, args.queries) == (7, 3, 50)

    def test_cli_defaults(self):
        args = build_parser().parse_args(["autoscale"])
        assert (args.seed, args.phases, args.queries) == (0, 4, 500)
