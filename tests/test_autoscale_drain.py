"""Drain-first decommission: every replica evacuated before deregistration.

The scale-in safety contract: a host holding primaries is emptied
through SM-coordinated migrations, the SM refuses to deregister it
while anything remains, and the chaos invariant checker agrees the
cluster is safe and converged afterwards.
"""

import numpy as np
import pytest

from repro.autoscale.fleet import FleetController, FleetSpec, ProvisionState
from repro.chaos.invariants import InvariantChecker
from repro.cluster.host import HostState
from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.errors import ConfigurationError, MigrationError


def build_deployment(seed=0, *, regions=2, racks=2, hosts_per_rack=3,
                     partitions=3, rows=300):
    deployment = CubrickDeployment(
        DeploymentConfig(
            seed=seed,
            regions=regions,
            racks_per_region=racks,
            hosts_per_rack=hosts_per_rack,
            max_shards=10_000,
        )
    )
    schema = TableSchema.build(
        "events",
        dimensions=[Dimension("day", 30, range_size=7)],
        metrics=[Metric("clicks")],
    )
    deployment.create_table(schema, num_partitions=partitions)
    rng = np.random.default_rng(seed)
    loaded = [
        {"day": int(rng.integers(30)), "clicks": float(rng.integers(1, 100))}
        for __ in range(rows)
    ]
    deployment.load("events", loaded)
    expected = float(sum(row["clicks"] for row in loaded))
    return deployment, expected


def sum_query():
    return Query.build("events", [Aggregation(AggFunc.SUM, "clicks")])


def shard_owner(deployment, region="region0"):
    """A registered host owning at least one shard in ``region``."""
    sm = deployment.sm_servers[region]
    for host_id in sorted(sm.registered_hosts()):
        if sm.shards_on_host(host_id):
            return host_id
    raise AssertionError("no shard-owning host found")


class TestDecommission:
    def test_evacuates_every_replica_before_deregistration(self):
        deployment, expected = build_deployment()
        checker = InvariantChecker(deployment)
        region = "region0"
        sm = deployment.sm_servers[region]
        victim = shard_owner(deployment, region)
        held = set(sm.shards_on_host(victim))
        assert held, "victim must hold shards for the test to mean anything"

        # Spy on the deregistration: at the moment the SM lets the host
        # go, it must already be completely empty.
        original = sm.deregister_host
        observed = []

        def spying_deregister(host_id):
            observed.append((host_id, set(sm.shards_on_host(host_id))))
            return original(host_id)

        sm.deregister_host = spying_deregister
        fleet = FleetController(deployment, FleetSpec())
        op = fleet.decommission(victim)
        deployment.simulator.run_until(deployment.simulator.now + 300.0)

        assert observed == [(victim, set())]
        assert op.state is ProvisionState.DECOMMISSIONED
        assert op.shards_moved == len(held)
        assert victim not in sm.registered_hosts()
        assert deployment.cluster.host(victim).state is HostState.DECOMMISSIONED
        # Every evacuated shard is served by a remaining registered host.
        for shard_id in held:
            owner = sm.discovery.resolve_authoritative(shard_id)
            assert owner is not None and owner != victim
            assert owner in sm.registered_hosts()
        assert checker.check_all(label="after-decommission").ok
        result = deployment.proxy.submit(sum_query())
        total = float(result.rows[0][-1])
        integrity = checker.check_query_integrity(
            result, expected, total=total, label="post-decommission"
        )
        assert integrity.ok
        assert total == pytest.approx(expected)

    def test_sm_refuses_deregistration_while_shards_remain(self):
        deployment, _ = build_deployment()
        sm = deployment.sm_servers["region0"]
        victim = shard_owner(deployment)
        with pytest.raises(MigrationError):
            sm.deregister_host(victim)
        # Refusal must leave the host fully registered and serving.
        assert victim in sm.registered_hosts()
        assert sm.shards_on_host(victim)

    def test_deregister_unknown_host_rejected(self):
        deployment, _ = build_deployment()
        sm = deployment.sm_servers["region0"]
        with pytest.raises(ConfigurationError):
            sm.deregister_host("no-such-host")

    def test_graceful_deregistration_fires_no_failover(self):
        """Closing the session must not trigger the expiry watchers."""
        deployment, _ = build_deployment()
        sm = deployment.sm_servers["region0"]
        victim = shard_owner(deployment)
        expiries = []
        sm.datastore.watch_sessions(lambda host: expiries.append(host))
        fleet = FleetController(deployment, FleetSpec())
        fleet.decommission(victim)
        deployment.simulator.run_until(deployment.simulator.now + 300.0)
        assert victim not in expiries
        assert not sm.unplaced_failovers
        assert deployment.obs.events.of_kind(
            "shardmanager.server.host_deregistered"
        )

    def test_decommission_rejects_unhealthy_host(self):
        deployment, _ = build_deployment()
        victim = shard_owner(deployment)
        deployment.automation.handle_host_failure(victim, permanent=False)
        fleet = FleetController(deployment, FleetSpec())
        with pytest.raises(ConfigurationError):
            fleet.decommission(victim)

    def test_crash_mid_decommission_aborts_cleanly(self):
        deployment, expected = build_deployment()
        checker = InvariantChecker(deployment)
        victim = shard_owner(deployment)
        fleet = FleetController(
            deployment, FleetSpec(decommission_grace=50.0)
        )
        op = fleet.decommission(victim)
        sim = deployment.simulator
        # The drain finished instantly, so the host sits deregistered in
        # its DRAINED grace window — crash it there.
        sim.call_later(
            10.0,
            lambda: deployment.automation.handle_host_failure(
                victim, permanent=False
            ),
        )
        sim.call_later(
            90.0,
            lambda: deployment.automation.handle_host_recovery(victim),
        )
        sim.run_until(sim.now + 400.0)
        assert op.state is ProvisionState.ABORTED
        # The repair pipeline returned the host to service as a fresh
        # registered node.
        sm = deployment.sm_servers["region0"]
        assert victim in sm.registered_hosts()
        assert deployment.cluster.host(victim).state is HostState.HEALTHY
        assert checker.check_all(label="after-aborted-decommission").ok
        result = deployment.proxy.submit(sum_query())
        assert float(result.rows[0][-1]) == pytest.approx(expected)

    def test_undrainable_host_returns_to_service(self):
        # Two hosts, two partitions of the same table: the peer host is
        # a same-table collision for every shard, so the drain can never
        # complete. The controller must give up and put the host back,
        # not deregister it with data aboard.
        deployment, expected = build_deployment(
            regions=1, racks=1, hosts_per_rack=2, partitions=2, rows=100
        )
        checker = InvariantChecker(deployment)
        sm = deployment.sm_servers["region0"]
        victim = shard_owner(deployment)
        held = set(sm.shards_on_host(victim))
        fleet = FleetController(
            deployment,
            FleetSpec(drain_retry_interval=5.0, drain_max_attempts=2),
        )
        op = fleet.decommission(victim)
        deployment.simulator.run_until(deployment.simulator.now + 100.0)
        assert op.state is ProvisionState.ABORTED
        assert "undrainable" in op.note
        assert victim in sm.registered_hosts()
        assert deployment.cluster.host(victim).state is HostState.HEALTHY
        assert set(sm.shards_on_host(victim)) == held
        assert checker.check_all(label="after-undrainable").ok
        result = deployment.proxy.submit(sum_query())
        assert float(result.rows[0][-1]) == pytest.approx(expected)


class TestProvision:
    def test_staged_registration_after_warmup(self):
        deployment, _ = build_deployment()
        checker = InvariantChecker(deployment)
        sm = deployment.sm_servers["region0"]
        before = set(sm.registered_hosts())
        fleet = FleetController(
            deployment, FleetSpec(warmup_delay=30.0, register_stagger=5.0)
        )
        added = fleet.provision("region0", 2)
        assert len(added) == 2
        # Warm-up: in the cluster, invisible to the SM and invariants.
        for host_id in added:
            assert deployment.cluster.host(host_id).state is HostState.HEALTHY
            assert host_id not in sm.registered_hosts()
        assert checker.check_all(label="mid-warmup").ok
        deployment.simulator.run_until(deployment.simulator.now + 60.0)
        assert set(sm.registered_hosts()) == before | set(added)
        states = [
            op.state for op in fleet.operations if op.kind == "provision"
        ]
        assert states == [ProvisionState.REGISTERED] * 2
        assert checker.check_all(label="post-warmup").ok

    def test_registration_is_staggered(self):
        deployment, _ = build_deployment()
        fleet = FleetController(
            deployment, FleetSpec(warmup_delay=30.0, register_stagger=10.0)
        )
        added = fleet.provision("region0", 2)
        sm = deployment.sm_servers["region0"]
        deployment.simulator.run_until(deployment.simulator.now + 35.0)
        assert added[0] in sm.registered_hosts()
        assert added[1] not in sm.registered_hosts()
        deployment.simulator.run_until(deployment.simulator.now + 10.0)
        assert added[1] in sm.registered_hosts()

    def test_crash_mid_warmup_aborts_provision(self):
        deployment, _ = build_deployment()
        checker = InvariantChecker(deployment)
        fleet = FleetController(deployment, FleetSpec(warmup_delay=30.0))
        added = fleet.provision("region0", 1)
        deployment.automation.handle_host_failure(added[0], permanent=False)
        deployment.simulator.run_until(deployment.simulator.now + 60.0)
        op = next(o for o in fleet.operations if o.host_id == added[0])
        assert op.state is ProvisionState.ABORTED
        assert added[0] not in deployment.sm_servers["region0"].registered_hosts()
        assert checker.check_safety(label="after-aborted-provision").ok

    def test_pending_lists_in_flight_operations(self):
        deployment, _ = build_deployment()
        fleet = FleetController(deployment, FleetSpec(warmup_delay=30.0))
        fleet.provision("region0", 1)
        assert [op.kind for op in fleet.pending()] == ["provision"]
        deployment.simulator.run_until(deployment.simulator.now + 60.0)
        assert fleet.pending() == []


class TestFleetSpecValidation:
    def test_rejects_bad_timings(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(warmup_delay=-1.0)
        with pytest.raises(ConfigurationError):
            FleetSpec(drain_retry_interval=0.0)
        with pytest.raises(ConfigurationError):
            FleetSpec(drain_max_attempts=0)
