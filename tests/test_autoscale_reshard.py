"""Online resharding: staged, verified, atomically cut over — and
queries answer correctly at every point in between.

The differential acceptance test: a query stream running across a
split (and a merge) must return exactly what a quiesced deployment
returns; the generation-tagged shard maps are what make that hold.
"""

import numpy as np
import pytest

from repro.autoscale.reshard import ReshardPlanner, ReshardSpec, ReshardState
from repro.chaos.invariants import InvariantChecker
from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.locator import CachedRandom
from repro.cubrick.partitioning import PartitioningPolicy
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.cubrick.sharding import generation_alias, logical_table
from repro.errors import ConfigurationError, TableNotFoundError


def build_deployment(seed=0, *, regions=2, racks=2, hosts_per_rack=3,
                     partitions=2, rows=200):
    deployment = CubrickDeployment(
        DeploymentConfig(
            seed=seed,
            regions=regions,
            racks_per_region=racks,
            hosts_per_rack=hosts_per_rack,
            max_shards=10_000,
        )
    )
    schema = TableSchema.build(
        "events",
        dimensions=[Dimension("day", 30, range_size=7)],
        metrics=[Metric("clicks")],
    )
    deployment.create_table(schema, num_partitions=partitions)
    loaded = make_rows(seed, rows)
    deployment.load("events", loaded)
    return deployment, loaded


def make_rows(seed, count):
    rng = np.random.default_rng(seed)
    return [
        {"day": int(rng.integers(30)), "clicks": float(rng.integers(1, 100))}
        for __ in range(count)
    ]


def grouped_query():
    return Query.build(
        "events",
        [Aggregation(AggFunc.SUM, "clicks"), Aggregation(AggFunc.COUNT, "clicks")],
        group_by=["day"],
    )


def expected_groups(rows):
    groups = {}
    for row in rows:
        key = row["day"]
        total, count = groups.get(key, (0.0, 0))
        groups[key] = (total + row["clicks"], count + 1)
    return groups


def observed_groups(result):
    return {
        row[0]: (float(row[1]), int(row[2])) for row in result.rows
    }


def assert_matches(deployment, rows, label):
    """The live answer must equal the ground truth computed from rows."""
    result = deployment.proxy.submit(grouped_query())
    assert observed_groups(result) == expected_groups(rows), label
    return result


# Staging rebalances shards, and a migrated mapping only becomes
# visible to coordinators after the SMC propagation delay (worst case
# ~7s with the default tree). Queries issued inside that window can
# transiently fail exactly as they would for any migration; the
# mid-reshard guarantee starts once mappings have propagated.
SETTLE = 10.0


class TestGenerationAliases:
    def test_alias_round_trip(self):
        assert generation_alias("events", 0) == "events"
        assert generation_alias("events", 3) == "events@g3"
        assert logical_table("events@g3") == "events"
        assert logical_table("events") == "events"
        assert logical_table("weird@gx") == "weird@gx"

    def test_negative_generation_rejected(self):
        with pytest.raises(ConfigurationError):
            generation_alias("events", -1)

    def test_locator_ignores_stale_generation(self):
        locator = CachedRandom()
        locator.observe_result("events", 4, generation=2)
        locator.observe_result("events", 2, generation=1)  # straggler
        assert locator.cached_count("events") == 4
        locator.observe_result("events", 8, generation=3)
        assert locator.cached_count("events") == 8


class TestStagedReshard:
    def run_to_state(self, deployment, planner, op, state, limit=600.0):
        deadline = deployment.simulator.now + limit
        while op.state is not state:
            assert deployment.simulator.now < deadline, (
                f"never reached {state}: stuck at {op.state} ({op.note})"
            )
            deployment.simulator.run_until(deployment.simulator.now + 5.0)

    def test_split_correct_at_every_stage(self):
        deployment, rows = build_deployment()
        checker = InvariantChecker(deployment)
        planner = ReshardPlanner(
            deployment,
            ReshardSpec(verify_delay=20.0, cutover_delay=10.0,
                        cleanup_grace=30.0),
        )
        info = deployment.catalog.get("events")
        op = planner.begin("events", 4)
        deployment.simulator.run_until(deployment.simulator.now + SETTLE)

        # STAGING -> VERIFYING happened synchronously; both layouts live.
        assert op.state is ReshardState.VERIFYING
        assert info.resharding
        assert info.num_partitions == 2  # serving layout unchanged
        result = assert_matches(deployment, rows, "mid-staging")
        assert result.metadata["num_partitions"] == 2

        # Ingest lands in both layouts while staged (dual writes).
        extra = make_rows(99, 50)
        deployment.load("events", extra)
        rows = rows + extra
        assert_matches(deployment, rows, "after mid-reshard load")

        self.run_to_state(deployment, planner, op, ReshardState.CUT_OVER)
        assert not info.resharding
        assert info.num_partitions == 4
        assert info.physical_table == op.new_physical
        result = assert_matches(deployment, rows, "after cutover")
        assert result.metadata["num_partitions"] == 4
        assert result.metadata["generation"] == info.generation

        self.run_to_state(deployment, planner, op, ReshardState.DONE)
        # The old layout is gone from the directory.
        with pytest.raises(Exception):
            deployment.directory.shards_for_table(op.old_physical)
        assert_matches(deployment, rows, "after cleanup")
        assert checker.check_all(label="post-split").ok

    def test_merge_correct_at_every_stage(self):
        deployment, rows = build_deployment(partitions=4)
        checker = InvariantChecker(deployment)
        planner = ReshardPlanner(
            deployment, ReshardSpec(verify_delay=20.0, cutover_delay=10.0)
        )
        op = planner.begin("events", 2)
        deployment.simulator.run_until(deployment.simulator.now + SETTLE)
        assert op.state is ReshardState.VERIFYING
        assert not op.widened
        assert_matches(deployment, rows, "mid-staging merge")
        self.run_to_state(deployment, planner, op, ReshardState.DONE)
        info = deployment.catalog.get("events")
        assert info.num_partitions == 2
        assert_matches(deployment, rows, "after merge")
        assert checker.check_all(label="post-merge").ok

    def test_differential_against_quiesced_deployment(self):
        """Mid-reshard answers == the answers of an untouched twin."""
        live, rows = build_deployment(seed=3)
        quiet, quiet_rows = build_deployment(seed=3)
        assert rows == quiet_rows
        planner = ReshardPlanner(
            live, ReshardSpec(verify_delay=30.0, cutover_delay=15.0)
        )
        op = planner.begin("events", 4)
        live.simulator.run_until(live.simulator.now + SETTLE)
        extra = make_rows(17, 40)
        live.load("events", extra)
        quiet.load("events", extra)
        for stage in (ReshardState.CUT_OVER, ReshardState.DONE):
            # Keep the twin's clock in lockstep so both proxies see
            # fully propagated shard maps at comparison time.
            quiet.simulator.run_until(live.simulator.now)
            live_result = live.proxy.submit(grouped_query())
            quiet_result = quiet.proxy.submit(grouped_query())
            assert observed_groups(live_result) == observed_groups(quiet_result)
            self.run_to_state(live, planner, op, stage)
        quiet.simulator.run_until(live.simulator.now)
        assert observed_groups(live.proxy.submit(grouped_query())) == \
            observed_groups(quiet.proxy.submit(grouped_query()))

    def test_streaming_loader_dual_writes_mid_reshard(self):
        deployment, rows = build_deployment()
        planner = ReshardPlanner(
            deployment, ReshardSpec(verify_delay=30.0, cutover_delay=10.0)
        )
        loader = deployment.loader("events", batch_rows=10)
        op = planner.begin("events", 4)
        deployment.simulator.run_until(deployment.simulator.now + SETTLE)
        streamed = make_rows(5, 30)
        loader.append_many(streamed)
        loader.flush()
        rows = rows + streamed
        assert_matches(deployment, rows, "streamed mid-reshard")
        self.run_to_state(deployment, planner, op, ReshardState.DONE)
        assert_matches(deployment, rows, "streamed after reshard")

    def test_verify_mismatch_aborts_and_preserves_serving(self):
        deployment, rows = build_deployment()
        planner = ReshardPlanner(
            deployment, ReshardSpec(verify_delay=20.0)
        )
        info = deployment.catalog.get("events")
        op = planner.begin("events", 4)
        # Corrupt the staged copy in one region only: verification must
        # catch the divergence and abort, leaving serving untouched.
        sm = deployment.sm_servers["region0"]
        shards = deployment.directory.shards_for_table(op.new_physical)
        owner = sm.discovery.resolve_authoritative(shards[0])
        node = sm.app_server(owner)
        node.insert_into_partition(
            op.new_physical, 0, [{"day": 1, "clicks": 5.0}]
        )
        deployment.simulator.run_until(deployment.simulator.now + 60.0)
        assert op.state is ReshardState.ABORTED
        assert "mismatch" in op.note
        assert not info.resharding
        assert info.num_partitions == 2
        with pytest.raises(Exception):
            deployment.directory.shards_for_table(op.new_physical)
        assert_matches(deployment, rows, "after aborted reshard")

    def test_begin_rejects_bad_requests(self):
        deployment, _ = build_deployment()
        planner = ReshardPlanner(deployment, ReshardSpec())
        with pytest.raises(ConfigurationError):
            planner.begin("events", 0)
        with pytest.raises(ConfigurationError):
            planner.begin("events", 2)  # already that wide
        planner.begin("events", 4)
        with pytest.raises(ConfigurationError):
            planner.begin("events", 8)  # one reshard at a time
        with pytest.raises(TableNotFoundError):
            planner.begin("nope", 4)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            ReshardSpec(verify_delay=-1.0)
        with pytest.raises(ConfigurationError):
            ReshardSpec(cleanup_grace=-1.0)
        with pytest.raises(ConfigurationError):
            ReshardSpec(capacity_headroom=0.0)


class TestEvaluate:
    def test_widens_when_partitions_overflow(self):
        deployment, _ = build_deployment(rows=600)
        planner = ReshardPlanner(
            deployment,
            ReshardSpec(),
            policy=PartitioningPolicy(
                initial_partitions=2,
                max_rows_per_partition=100,
                min_rows_per_partition=10,
                max_partitions=8,
            ),
        )
        op = planner.evaluate("events")
        assert op is not None and op.widened
        assert op.to_count == 4

    def test_max_count_caps_widening(self):
        deployment, _ = build_deployment(rows=600)
        planner = ReshardPlanner(
            deployment,
            ReshardSpec(),
            policy=PartitioningPolicy(
                initial_partitions=2,
                max_rows_per_partition=100,
                min_rows_per_partition=10,
                max_partitions=8,
            ),
        )
        assert planner.evaluate("events", max_count=2) is None

    def test_defers_widening_without_capacity(self):
        # Two hosts per region cannot host four collision-free
        # partitions: the widen is deferred, not attempted and failed.
        deployment, _ = build_deployment(
            racks=1, hosts_per_rack=2, rows=600
        )
        planner = ReshardPlanner(
            deployment,
            ReshardSpec(),
            policy=PartitioningPolicy(
                initial_partitions=2,
                max_rows_per_partition=100,
                min_rows_per_partition=10,
                max_partitions=8,
            ),
        )
        assert planner.evaluate("events") is None

    def test_no_op_inside_thresholds(self):
        deployment, _ = build_deployment(rows=200)
        planner = ReshardPlanner(deployment, ReshardSpec())
        assert planner.evaluate("events") is None
        assert planner.active() == []
