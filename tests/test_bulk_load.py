"""Tests for vectorised columnar ingestion."""

import numpy as np
import pytest

from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.cubrick.storage import PartitionStorage
from repro.errors import CubrickError, SchemaError
from tests.conftest import make_rows


def columns_from_rows(rows):
    names = rows[0].keys()
    return {name: np.array([r[name] for r in rows]) for name in names}


class TestInsertColumns:
    def test_equivalent_to_row_inserts(self, events_schema):
        rows = make_rows(events_schema, 400, seed=31)
        by_rows = PartitionStorage(events_schema, 0)
        by_rows.insert_many(rows)
        by_columns = PartitionStorage(events_schema, 0)
        assert by_columns.insert_columns(columns_from_rows(rows)) == 400

        assert by_columns.rows == by_rows.rows
        assert by_columns.brick_count == by_rows.brick_count
        query = Query.build(
            "events",
            [Aggregation(AggFunc.SUM, "clicks"),
             Aggregation(AggFunc.COUNT, "clicks")],
            group_by=["day"],
        )
        assert (
            by_columns.execute(query).finalize().rows
            == by_rows.execute(query).finalize().rows
        )

    def test_routes_to_same_bricks_as_scalar_path(self, events_schema):
        rows = make_rows(events_schema, 200, seed=32)
        storage = PartitionStorage(events_schema, 0)
        storage.insert_columns(columns_from_rows(rows))
        for row in rows[:50]:
            expected = storage.index.brick_of(row)
            brick = storage.brick(expected)
            assert brick is not None and brick.rows > 0

    def test_empty_load(self, events_schema):
        storage = PartitionStorage(events_schema, 0)
        empty = {
            name: np.array([])
            for name in events_schema.column_names
        }
        assert storage.insert_columns(empty) == 0
        assert storage.rows == 0

    def test_missing_column_rejected(self, events_schema):
        storage = PartitionStorage(events_schema, 0)
        with pytest.raises(CubrickError):
            storage.insert_columns({"day": np.array([1])})

    def test_ragged_columns_rejected(self, events_schema):
        storage = PartitionStorage(events_schema, 0)
        with pytest.raises(CubrickError):
            storage.insert_columns(
                {
                    "day": np.array([1, 2]),
                    "country": np.array([1]),
                    "clicks": np.array([1.0, 2.0]),
                    "cost": np.array([1.0, 2.0]),
                }
            )

    def test_out_of_domain_rejected(self, events_schema):
        storage = PartitionStorage(events_schema, 0)
        with pytest.raises(SchemaError):
            storage.insert_columns(
                {
                    "day": np.array([30]),  # domain is [0, 30)
                    "country": np.array([0]),
                    "clicks": np.array([1.0]),
                    "cost": np.array([1.0]),
                }
            )
        assert storage.rows == 0

    def test_out_of_domain_error_names_column_and_row(self, events_schema):
        storage = PartitionStorage(events_schema, 0)
        with pytest.raises(SchemaError, match=r"'country'.*row 2"):
            storage.insert_columns(
                {
                    "day": np.array([0, 1, 2, 3]),
                    "country": np.array([0, 1, 100, -1]),  # domain [0, 100)
                    "clicks": np.ones(4),
                    "cost": np.ones(4),
                }
            )
        assert storage.rows == 0

    def test_fractional_dimension_rejected_before_cast(self, events_schema):
        """A float like 3.7 must not be silently truncated into brick 3's
        bucket — the int64 cast happens only after validation."""
        storage = PartitionStorage(events_schema, 0)
        with pytest.raises(SchemaError, match=r"'day'.*non-integer"):
            storage.insert_columns(
                {
                    "day": np.array([1.0, 3.7]),
                    "country": np.array([0, 0]),
                    "clicks": np.ones(2),
                    "cost": np.ones(2),
                }
            )
        assert storage.rows == 0

    def test_integral_float_dimensions_accepted(self, events_schema):
        storage = PartitionStorage(events_schema, 0)
        n = storage.insert_columns(
            {
                "day": np.array([1.0, 29.0]),  # integral floats are fine
                "country": np.array([0, 99]),
                "clicks": np.ones(2),
                "cost": np.ones(2),
            }
        )
        assert n == 2 and storage.rows == 2

    def test_incremental_bulk_loads_accumulate(self, events_schema):
        rows = make_rows(events_schema, 300, seed=33)
        storage = PartitionStorage(events_schema, 0)
        storage.insert_columns(columns_from_rows(rows[:150]))
        storage.insert_columns(columns_from_rows(rows[150:]))
        result = storage.execute(
            Query.build("events", [Aggregation(AggFunc.COUNT, "clicks")])
        ).finalize()
        assert result.scalar() == 300.0

    def test_bulk_is_faster_than_rows(self, events_schema):
        """The point of the fast path: bulk load beats per-row insert."""
        import time

        rows = make_rows(events_schema, 5000, seed=34)
        columns = columns_from_rows(rows)

        slow = PartitionStorage(events_schema, 0)
        start = time.perf_counter()
        slow.insert_many(rows)
        row_time = time.perf_counter() - start

        fast = PartitionStorage(events_schema, 0)
        start = time.perf_counter()
        fast.insert_columns(columns)
        column_time = time.perf_counter() - start

        assert column_time < row_time
