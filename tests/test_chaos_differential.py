"""Differential chaos tests: never silently wrong.

For every built-in fault scenario, the answer produced under chaos
(with the resilient policy's retries, hedges and labelled degradation)
must either equal the fault-free baseline exactly, or be explicitly
marked as degraded with ``completeness < 1.0``. A wrong total on an
unlabelled answer is the one outcome that must never occur.
"""

from __future__ import annotations

import pytest

from repro.chaos import list_scenarios, run_scenario
from repro.chaos.policies import ResiliencePolicy
from repro.chaos.scenarios import build_chaos_deployment
from repro.cubrick.query import AggFunc, Aggregation, Query

SCENARIO_NAMES = [name for name, __ in list_scenarios()]


def test_fault_free_baseline_is_exact():
    deployment, expected = build_chaos_deployment(seed=21)
    deployment.simulator.run_until(30.0)
    result = deployment.proxy.submit(
        Query.build("events", [Aggregation(AggFunc.SUM, "clicks")]),
        policy=ResiliencePolicy.resilient(),
    )
    assert float(result.rows[0][-1]) == expected
    assert not result.metadata.get("degraded", False)


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_chaos_answers_match_baseline_or_are_labelled(name):
    report = run_scenario(name, seed=7)
    assert report.probes, "scenario must issue probes"
    for probe in report.probes:
        if probe.outcome.startswith("failed:"):
            # An error is loud by definition; it returned no rows.
            continue
        if probe.total == probe.expected_total:
            continue  # exact answer — matches the fault-free baseline
        # Anything short of the baseline must be explicitly labelled.
        assert probe.outcome == "degraded", (
            f"{name}/{probe.label}: total {probe.total} != "
            f"{probe.expected_total} but outcome is {probe.outcome!r}"
        )
        assert probe.completeness < 1.0, (
            f"{name}/{probe.label}: wrong total with completeness "
            f"{probe.completeness}"
        )
        assert probe.integrity_ok


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_recovered_probe_returns_to_baseline(name):
    # Once faults clear and recovery settles, answers must be exact
    # again — degraded mode is a transient, not a steady state.
    report = run_scenario(name, seed=7)
    recovered = report.probes[-1]
    assert recovered.label == "recovered"
    assert recovered.outcome == "ok"
    assert recovered.total == recovered.expected_total
    assert recovered.completeness == 1.0


def test_degradation_is_opt_in():
    # Under the legacy policy a blacked-out query fails loudly instead
    # of degrading: no policy, no partial answers.
    from repro.chaos.faults import ChaosInjector, FaultSchedule
    from repro.errors import QueryFailedError, RegionUnavailableError

    deployment, __ = build_chaos_deployment(seed=21)
    deployment.simulator.run_until(30.0)
    injector = ChaosInjector(deployment)
    schedule = FaultSchedule()
    for region in ("region0", "region1", "region2"):
        schedule.network_partition(40.0, region, duration=60.0)
    injector.install(schedule)
    deployment.simulator.run_until(41.0)
    with pytest.raises((QueryFailedError, RegionUnavailableError)):
        deployment.proxy.submit(
            Query.build("events", [Aggregation(AggFunc.SUM, "clicks")]),
            policy=ResiliencePolicy.legacy(),
        )
