"""Unit tests for fault specs, schedules and the chaos injector."""

from __future__ import annotations

import pytest

from repro.chaos.faults import (
    REGION_TARGETED,
    ChaosInjector,
    FaultKind,
    FaultSchedule,
    FaultSpec,
)
from repro.chaos.scenarios import build_chaos_deployment
from repro.errors import ConfigurationError


@pytest.fixture
def chaos_deployment():
    deployment, expected_total = build_chaos_deployment(seed=3)
    deployment.simulator.run_until(10.0)
    return deployment, expected_total


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(at=-1.0, kind=FaultKind.HOST_CRASH, target="h")
        with pytest.raises(ConfigurationError):
            FaultSpec(at=0.0, kind=FaultKind.HOST_CRASH, target="h",
                      duration=-5.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(at=0.0, kind=FaultKind.SLOW_DISK, target="h",
                      factor=0.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(at=0.0, kind=FaultKind.HOST_CRASH, target="")

    def test_clears_at(self):
        spec = FaultSpec(at=10.0, kind=FaultKind.HOST_CRASH, target="h",
                         duration=30.0)
        assert spec.clears_at == 40.0
        one_shot = FaultSpec(at=10.0, kind=FaultKind.SM_FAILOVER,
                             target="region0")
        assert one_shot.clears_at is None

    def test_render(self):
        spec = FaultSpec(at=40.0, kind=FaultKind.SLOW_DISK,
                         target="region0-rack000-host000",
                         duration=120.0, factor=20.0)
        assert spec.render() == (
            "t=40.000 slow_disk region0-rack000-host000 "
            "duration=120.0 factor=20"
        )

    def test_region_targeted_taxonomy(self):
        assert FaultKind.NETWORK_PARTITION in REGION_TARGETED
        assert FaultKind.HOST_CRASH not in REGION_TARGETED


class TestFaultSchedule:
    def test_builders_cover_every_kind(self):
        schedule = (
            FaultSchedule()
            .host_crash(1.0, "h1")
            .host_hang(2.0, "h2")
            .slow_disk(3.0, "h3")
            .tail_amplify(4.0, "region0")
            .network_partition(5.0, "region1")
            .session_expiry(6.0, "h4")
            .sm_failover(7.0, "region2")
            .migration_interrupt(8.0, "region0")
            .query_storm(9.0, "events")
            .leader_crash(10.0, "region1")
        )
        assert len(schedule) == 10
        kinds = {spec.kind for spec in schedule.specs}
        assert kinds == set(FaultKind)

    def test_sorted_specs_stable_for_equal_times(self):
        schedule = (
            FaultSchedule()
            .host_crash(5.0, "b")
            .host_crash(5.0, "a")
            .host_crash(1.0, "c")
        )
        assert [s.target for s in schedule.sorted_specs()] == ["c", "b", "a"]

    def test_end_time_covers_clearance(self):
        schedule = (
            FaultSchedule()
            .host_crash(10.0, "h", duration=100.0)
            .sm_failover(200.0, "region0")
        )
        assert schedule.end_time == 200.0
        schedule.host_crash(150.0, "h2", duration=100.0)
        assert schedule.end_time == 250.0

    def test_shifted(self):
        schedule = FaultSchedule().host_crash(10.0, "h", duration=5.0)
        moved = schedule.shifted(30.0)
        assert moved.specs[0].at == 40.0
        assert schedule.specs[0].at == 10.0  # original untouched


class TestChaosInjector:
    def test_rejects_faults_in_the_past(self, chaos_deployment):
        deployment, __ = chaos_deployment
        injector = ChaosInjector(deployment)
        schedule = FaultSchedule().host_crash(
            5.0, "region0-rack000-host000"
        )  # now is 10.0
        with pytest.raises(ConfigurationError):
            injector.install(schedule)

    def test_host_crash_and_recovery(self, chaos_deployment):
        deployment, __ = chaos_deployment
        injector = ChaosInjector(deployment)
        host = "region0-rack000-host000"
        injector.install(
            FaultSchedule().host_crash(20.0, host, duration=30.0)
        )
        deployment.simulator.run_until(21.0)
        assert not deployment.cluster.host(host).is_available
        deployment.simulator.run_until(60.0)
        assert deployment.cluster.host(host).is_available
        assert len(injector.applied) == 1
        __, spec, detail = injector.applied[0]
        assert spec.kind is FaultKind.HOST_CRASH
        assert detail == "crashed"

    def test_hang_shapes_service_time(self, chaos_deployment):
        deployment, __ = chaos_deployment
        injector = ChaosInjector(deployment)
        host = "region1-rack000-host001"
        injector.install(
            FaultSchedule().host_hang(20.0, host, duration=30.0)
        )
        deployment.simulator.run_until(21.0)
        assert injector.is_hung(host)
        shaped = injector._shape_service_time(host, 0.01)
        assert shaped == pytest.approx(0.01 + ChaosInjector.HANG_DELAY)
        deployment.simulator.run_until(60.0)
        assert not injector.is_hung(host)

    def test_slow_disk_amplifies_one_host(self, chaos_deployment):
        deployment, __ = chaos_deployment
        injector = ChaosInjector(deployment)
        host = "region0-rack001-host000"
        injector.install(
            FaultSchedule().slow_disk(20.0, host, factor=50.0, duration=10.0)
        )
        deployment.simulator.run_until(21.0)
        assert injector.amplification(host) == 50.0
        assert injector.amplification("region0-rack000-host000") == 1.0
        deployment.simulator.run_until(40.0)
        assert injector.amplification(host) == 1.0

    def test_tail_amplify_covers_whole_region(self, chaos_deployment):
        deployment, __ = chaos_deployment
        injector = ChaosInjector(deployment)
        injector.install(
            FaultSchedule().tail_amplify(20.0, "region2", factor=10.0,
                                         duration=10.0)
        )
        deployment.simulator.run_until(21.0)
        for host in deployment.cluster.hosts_in_region("region2"):
            assert injector.amplification(host.host_id) == 10.0
        for host in deployment.cluster.hosts_in_region("region0"):
            assert injector.amplification(host.host_id) == 1.0

    def test_network_partition_toggles_region(self, chaos_deployment):
        deployment, __ = chaos_deployment
        injector = ChaosInjector(deployment)
        injector.install(
            FaultSchedule().network_partition(20.0, "region1", duration=15.0)
        )
        deployment.simulator.run_until(21.0)
        assert not deployment.cluster.region("region1").available
        deployment.simulator.run_until(40.0)
        assert deployment.cluster.region("region1").available

    def test_session_expiry_deregisters_host(self, chaos_deployment):
        deployment, __ = chaos_deployment
        host = "region0-rack000-host000"
        sm = deployment.sm_servers["region0"]
        assert host in sm.registered_hosts()
        injector = ChaosInjector(deployment)
        injector.install(
            FaultSchedule().session_expiry(20.0, host, duration=30.0)
        )
        deployment.simulator.run_until(21.0)
        assert host not in sm.registered_hosts()
        # The host itself never crashed — this is a false positive.
        assert deployment.cluster.host(host).is_available
        deployment.simulator.run_until(120.0)
        assert host in sm.registered_hosts()

    def test_sm_failover_republishes_mappings(self, chaos_deployment):
        deployment, __ = chaos_deployment
        injector = ChaosInjector(deployment)
        injector.install(FaultSchedule().sm_failover(20.0, "region0"))
        deployment.simulator.run_until(21.0)
        __, spec, detail = injector.applied[0]
        assert spec.kind is FaultKind.SM_FAILOVER
        assert detail.startswith("republished ")
        assert int(detail.split()[1]) > 0

    def test_faults_are_emitted_to_event_log(self, chaos_deployment):
        deployment, __ = chaos_deployment
        injector = ChaosInjector(deployment)
        injector.install(
            FaultSchedule().host_crash(
                20.0, "region0-rack000-host000", duration=10.0
            )
        )
        deployment.simulator.run_until(40.0)
        assert deployment.obs.events.of_kind("repro.chaos.fault_injected")
        assert deployment.obs.events.of_kind("repro.chaos.fault_cleared")
