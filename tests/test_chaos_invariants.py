"""Unit tests for the chaos invariant checker."""

from __future__ import annotations

import pytest

from repro.chaos.invariants import InvariantChecker, InvariantViolation
from repro.chaos.scenarios import build_chaos_deployment
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.shardmanager.server import ReplicaRole


@pytest.fixture
def settled():
    deployment, expected_total = build_chaos_deployment(seed=11)
    deployment.simulator.run_until(30.0)
    return deployment, expected_total


def test_healthy_deployment_passes_all(settled):
    deployment, __ = settled
    checker = InvariantChecker(deployment)
    report = checker.check_all(label="healthy")
    assert report.ok
    assert len(report.checks_run) == 6
    assert report.violations == []


def test_double_primary_detected(settled):
    deployment, __ = settled
    sm = deployment.sm_servers["region0"]
    shard_id = sorted(sm.shard_ids())[0]
    entry = sm.shard_entry(shard_id)
    for replica in entry.replicas:
        replica.role = ReplicaRole.PRIMARY
    if len(entry.replicas) < 2:  # single-replica spec: fabricate a twin
        import copy

        twin = copy.deepcopy(entry.replicas[0])
        twin.host_id = "region0-rack001-host000"
        entry.replicas.append(twin)
    report = InvariantChecker(deployment).check_safety()
    assert not report.ok
    assert any(v.check == "single_primary" for v in report.violations)


def test_stale_discovery_detected(settled):
    deployment, __ = settled
    sm = deployment.sm_servers["region0"]
    shard_id = sorted(sm.shard_ids())[0]
    sm.discovery.publish(
        shard_id, "region0-rack001-host002", deployment.simulator.now
    )
    # The published host holds no replica of the shard.
    entry = sm.shard_entry(shard_id)
    assert "region0-rack001-host002" not in entry.hosts()
    report = InvariantChecker(deployment).check_safety()
    assert any(
        v.check == "discovery_consistency" for v in report.violations
    )


def test_sm_app_server_divergence_detected(settled):
    deployment, __ = settled
    sm = deployment.sm_servers["region0"]
    host_id = sorted(sm.registered_hosts())[0]
    shards = sorted(sm.shards_on_host(host_id))
    assert shards, "fixture host should own at least one shard"
    # Drop the data behind SM's back: SM still records the shard.
    sm.app_server(host_id).drop_shard(shards[0])
    report = InvariantChecker(deployment).check_safety()
    assert any(
        v.check == "sm_matches_app_servers" for v in report.violations
    )


def test_session_registration_divergence_detected(settled):
    deployment, __ = settled
    sm = deployment.sm_servers["region0"]
    host_id = sorted(sm.registered_hosts())[0]
    # Fabricate the divergence the checker exists for: SM forgets the
    # host while its datastore session stays alive (a lost-deregistration
    # bug), so `live - registered` is non-empty.
    sm._app_servers.pop(host_id)
    report = InvariantChecker(deployment).check_safety()
    assert any(
        v.check == "sm_matches_datastore" and host_id in v.detail
        for v in report.violations
    )


def test_query_integrity_exact_match_passes(settled):
    deployment, expected_total = settled
    checker = InvariantChecker(deployment)
    query = Query.build("events", [Aggregation(AggFunc.SUM, "clicks")])
    result = deployment.proxy.submit(query)
    total = float(result.rows[0][-1])
    report = checker.check_query_integrity(
        result, expected_total, total=total
    )
    assert report.ok


def test_query_integrity_flags_silent_row_loss(settled):
    deployment, expected_total = settled
    checker = InvariantChecker(deployment)
    query = Query.build("events", [Aggregation(AggFunc.SUM, "clicks")])
    result = deployment.proxy.submit(query)
    report = checker.check_query_integrity(
        result, expected_total, total=expected_total - 100.0
    )
    assert not report.ok
    assert "dropped rows" in report.violations[0].detail


def test_query_integrity_accepts_labelled_partial(settled):
    deployment, expected_total = settled
    checker = InvariantChecker(deployment)
    query = Query.build("events", [Aggregation(AggFunc.SUM, "clicks")])
    result = deployment.proxy.submit(query)
    result.metadata["partial"] = True
    result.metadata["completeness"] = 0.5
    report = checker.check_query_integrity(
        result, expected_total, total=expected_total / 2
    )
    assert report.ok  # labelled degradation is legal


def test_query_integrity_flags_unlabelled_partial(settled):
    deployment, expected_total = settled
    checker = InvariantChecker(deployment)
    query = Query.build("events", [Aggregation(AggFunc.SUM, "clicks")])
    result = deployment.proxy.submit(query)
    result.metadata.pop("partial", None)
    result.metadata["completeness"] = 0.5
    report = checker.check_query_integrity(
        result, expected_total, total=expected_total
    )
    assert not report.ok


def test_report_render_format():
    deployment, __ = build_chaos_deployment(seed=2)
    deployment.simulator.run_until(30.0)
    report = InvariantChecker(deployment).check_safety(label="demo")
    line = report.render()
    assert line.startswith("[t=    30.000] demo: PASS (4 checks, 0 violations)")
    report.violations.append(InvariantViolation("fake", "boom"))
    rendered = report.render()
    assert "FAIL" in rendered
    assert "    !! fake: boom" in rendered


def test_checks_emit_events():
    deployment, __ = build_chaos_deployment(seed=2)
    deployment.simulator.run_until(30.0)
    InvariantChecker(deployment).check_all(label="emitting")
    events = deployment.obs.events.of_kind("repro.chaos.invariant_check")
    assert len(events) >= 2  # safety + convergence passes
