"""Partition-fault tests: asymmetric links, heal events, leader crashes.

These exercise the chaos injector against the consensus-replicated
deployment: the directional ``region_partition`` variant, the
``partition_healed`` event the invariant checker keys catch-up off,
and the ``leader_crash`` fault targeting the metadata plane.
"""

from __future__ import annotations

from repro.chaos.faults import ChaosInjector, FaultSchedule
from repro.chaos.invariants import InvariantChecker
from repro.chaos.scenarios import build_chaos_deployment, run_scenario


def _replicated_deployment(seed=0):
    deployment, __ = build_chaos_deployment(seed, replicated=True)
    deployment.simulator.run_until(30.0)
    return deployment


class TestAsymmetricPartition:
    def test_cuts_one_direction_then_heals(self):
        deployment = _replicated_deployment()
        injector = ChaosInjector(deployment)
        schedule = FaultSchedule().asymmetric_partition(
            40.0, "region0", "region1", duration=60.0
        )
        injector.install(schedule)
        deployment.simulator.run_until(50.0)
        # Only the region0 → region1 direction is down.
        assert not deployment.cluster.region_link_up("region0", "region1")
        assert deployment.cluster.region_link_up("region1", "region0")
        # The region itself is still available — this is a link fault.
        assert deployment.cluster.region("region1").available
        deployment.simulator.run_until(120.0)
        assert deployment.cluster.region_link_up("region0", "region1")

    def test_emits_heal_event_and_catches_up(self):
        deployment = _replicated_deployment()
        injector = ChaosInjector(deployment)
        schedule = FaultSchedule().asymmetric_partition(
            40.0, "region0", "region1", duration=60.0
        )
        injector.install(schedule)
        deployment.simulator.run_until(60.0)
        # Traffic during the cut: replication to region1 must reroute
        # or catch up after the heal.
        cluster = deployment.metadata_cluster
        cluster.propose(("set", "during-cut", 1), region=cluster.leader())
        deployment.simulator.run_until(200.0)
        healed = deployment.obs.events.of_kind("repro.chaos.partition_healed")
        assert len(healed) == 1
        assert healed[0]["src"] == "region0"
        assert healed[0]["target"] == "region1"
        # Catch-up converged: the checker's convergence invariant holds.
        report = InvariantChecker(deployment).check_convergence(
            label="after-heal"
        )
        assert report.ok, report.render()
        assert cluster.machines["region1"].get("during-cut") == 1

    def test_full_partition_also_emits_heal_event(self):
        deployment = _replicated_deployment()
        injector = ChaosInjector(deployment)
        injector.install(
            FaultSchedule().network_partition(40.0, "region1", duration=60.0)
        )
        deployment.simulator.run_until(200.0)
        healed = deployment.obs.events.of_kind("repro.chaos.partition_healed")
        assert len(healed) == 1
        assert healed[0]["target"] == "region1"
        assert healed[0]["src"] == ""


class TestLeaderCrashFault:
    def test_crashes_and_recovers_metadata_replica(self):
        deployment = _replicated_deployment()
        leader = deployment.metadata_cluster.leader()
        injector = ChaosInjector(deployment)
        injector.install(
            FaultSchedule().leader_crash(40.0, leader, duration=60.0)
        )
        deployment.simulator.run_until(60.0)
        assert deployment.metadata_cluster.nodes[leader].crashed
        deployment.simulator.run_until(200.0)
        assert not deployment.metadata_cluster.nodes[leader].crashed
        # Survivors elected a replacement while the old leader was down.
        history = deployment.metadata_cluster.leader_history()
        assert len(history) >= 2
        assert all(len(winners) == 1 for winners in history.values())
        details = {
            spec.kind.value: detail for __, spec, detail in injector.applied
        }
        assert details["leader_crash"] == "leader crashed"

    def test_noop_without_metadata_cluster(self):
        deployment, __ = build_chaos_deployment(0, replicated=False)
        deployment.simulator.run_until(30.0)
        injector = ChaosInjector(deployment)
        injector.install(
            FaultSchedule().leader_crash(40.0, "region0", duration=60.0)
        )
        deployment.simulator.run_until(200.0)
        applied = [
            detail for __, spec, detail in injector.applied
            if spec.kind.value == "leader_crash"
        ]
        assert applied == ["no metadata cluster"]


class TestConsensusScenarios:
    def test_metadata_leader_crash_scenario(self):
        report = run_scenario("metadata-leader-crash", seed=0)
        assert report.ok, report.render()
        assert report.render() == run_scenario(
            "metadata-leader-crash", seed=0
        ).render()

    def test_asymmetric_partition_scenario(self):
        report = run_scenario("asymmetric-partition", seed=0)
        assert report.ok, report.render()
