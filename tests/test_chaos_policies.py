"""Unit tests for the unified resilience-policy layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos.policies import (
    TRANSIENT_ERRORS,
    DegradationPolicy,
    HedgePolicy,
    ResiliencePolicy,
    RetryPolicy,
    TimeoutPolicy,
    call_with_retries,
)
from repro.errors import (
    ConfigurationError,
    HostUnavailableError,
    NonRetryableShardError,
    QueryFailedError,
    RetryableShardError,
)


class TestRetryPolicy:
    def test_budget_explicit(self):
        assert RetryPolicy(max_attempts=4).budget(default=9) == 4

    def test_budget_context_default(self):
        policy = RetryPolicy(max_attempts=None)
        assert policy.budget(default=3) == 3
        assert policy.budget(default=7) == 7

    def test_rejects_zero_attempts(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_backoff(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff=-0.1)

    def test_rejects_sub_one_multiplier(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)

    def test_rejects_jitter_out_of_range(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_fraction=1.5)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_backoff=0.1, backoff_multiplier=2.0,
                             jitter_fraction=0.0)
        assert policy.backoff_delay(1) == pytest.approx(0.1)
        assert policy.backoff_delay(2) == pytest.approx(0.2)
        assert policy.backoff_delay(3) == pytest.approx(0.4)

    def test_backoff_capped(self):
        policy = RetryPolicy(base_backoff=1.0, backoff_multiplier=10.0,
                             max_backoff=3.0, jitter_fraction=0.0)
        assert policy.backoff_delay(5) == 3.0

    def test_backoff_rejects_zero_attempt(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_delay(0)

    def test_zero_base_draws_nothing_from_rng(self):
        # Legacy policies must not perturb downstream random streams.
        policy = RetryPolicy(base_backoff=0.0, jitter_fraction=0.5)
        rng = np.random.default_rng(1)
        before = rng.bit_generator.state["state"]["state"]
        assert policy.backoff_delay(3, rng) == 0.0
        assert rng.bit_generator.state["state"]["state"] == before

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(base_backoff=0.1, jitter_fraction=0.2)
        a = policy.backoff_delay(2, np.random.default_rng(5))
        b = policy.backoff_delay(2, np.random.default_rng(5))
        assert a == b
        assert 0.16 <= a <= 0.24  # 0.2 +/- 20%


class TestTimeoutPolicy:
    def test_no_bound_never_times_out(self):
        assert not TimeoutPolicy(per_hop=None).is_timeout(1e9)

    def test_bound_enforced(self):
        policy = TimeoutPolicy(per_hop=2.0)
        assert not policy.is_timeout(2.0)
        assert policy.is_timeout(2.0001)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            TimeoutPolicy(per_hop=0.0)


class TestHedgeAndDegradation:
    def test_hedge_validation(self):
        with pytest.raises(ConfigurationError):
            HedgePolicy(trigger=0.0)
        with pytest.raises(ConfigurationError):
            HedgePolicy(max_hedges=0)

    def test_degradation_validation(self):
        with pytest.raises(ConfigurationError):
            DegradationPolicy(min_completeness=1.5)


class TestResiliencePolicyBundles:
    def test_legacy_matches_pre_policy_behaviour(self):
        policy = ResiliencePolicy.legacy()
        assert policy.retry.max_attempts is None
        assert policy.retry.base_backoff == 0.0
        assert policy.timeout.per_hop is None
        assert not policy.hedge.enabled
        assert not policy.degradation.enabled

    def test_resilient_defaults(self):
        policy = ResiliencePolicy.resilient()
        assert policy.retry.max_attempts == 6
        assert policy.timeout.per_hop == 2.0
        assert policy.hedge.enabled
        assert policy.degradation.enabled
        assert policy.degradation.min_completeness == 0.25


class TestCallWithRetries:
    def test_first_try_success(self):
        result, stats = call_with_retries(
            lambda attempt: attempt * 10,
            policy=ResiliencePolicy.resilient(),
        )
        assert result == 10
        assert stats.attempts == 1
        assert stats.errors == []

    def test_retries_transient_until_success(self):
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 3:
                raise HostUnavailableError("transient")
            return "done"

        result, stats = call_with_retries(
            flaky, policy=ResiliencePolicy.resilient()
        )
        assert result == "done"
        assert calls == [1, 2, 3]
        assert stats.attempts == 3
        assert len(stats.errors) == 2

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def poisoned(attempt):
            calls.append(attempt)
            raise NonRetryableShardError("collision")

        with pytest.raises(NonRetryableShardError):
            call_with_retries(poisoned, policy=ResiliencePolicy.resilient())
        assert calls == [1]

    def test_budget_exhaustion_reraises_last_error(self):
        def always_fails(attempt):
            raise RetryableShardError(f"attempt {attempt}")

        policy = ResiliencePolicy(retry=RetryPolicy(max_attempts=3))
        with pytest.raises(RetryableShardError, match="attempt 3"):
            call_with_retries(always_fails, policy=policy)

    def test_query_failed_error_respects_retryable_flag(self):
        def fails(attempt):
            raise QueryFailedError("nope", retryable=False)

        with pytest.raises(QueryFailedError):
            call_with_retries(
                fails,
                policy=ResiliencePolicy.resilient(),
                retryable=TRANSIENT_ERRORS + (QueryFailedError,),
            )

    def test_predicate_retryable(self):
        calls = []

        def fails(attempt):
            calls.append(attempt)
            raise ValueError("custom")

        policy = ResiliencePolicy(retry=RetryPolicy(max_attempts=2))
        with pytest.raises(ValueError):
            call_with_retries(
                fails, policy=policy,
                retryable=lambda e: isinstance(e, ValueError),
            )
        assert calls == [1, 2]

    def test_on_retry_receives_backoff_delays(self):
        observed = []

        def flaky(attempt):
            if attempt < 3:
                raise HostUnavailableError("x")
            return attempt

        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=5, base_backoff=0.1,
                              backoff_multiplier=2.0, jitter_fraction=0.0)
        )
        __, stats = call_with_retries(
            flaky, policy=policy,
            on_retry=lambda attempt, delay: observed.append((attempt, delay)),
        )
        assert observed == [(1, pytest.approx(0.1)), (2, pytest.approx(0.2))]
        assert stats.backoff_total == pytest.approx(0.3)

    def test_legacy_policy_is_single_attempt_by_default(self):
        calls = []

        def fails(attempt):
            calls.append(attempt)
            raise HostUnavailableError("x")

        with pytest.raises(HostUnavailableError):
            call_with_retries(fails, policy=ResiliencePolicy.legacy())
        assert calls == [1]
