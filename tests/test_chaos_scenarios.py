"""Scenario harness and `repro chaos` CLI tests."""

from __future__ import annotations

import pytest

from repro.chaos import list_scenarios, run_scenario
from repro.chaos.scenarios import SCENARIOS, build_chaos_deployment
from repro.cli import main
from repro.errors import ConfigurationError


def test_list_scenarios_is_sorted_and_complete():
    listed = list_scenarios()
    names = [name for name, __ in listed]
    assert names == sorted(SCENARIOS)
    assert all(desc for __, desc in listed)


def test_unknown_scenario_raises_with_known_names():
    with pytest.raises(ConfigurationError, match="region-partition"):
        run_scenario("no-such-scenario")


def test_build_chaos_deployment_ground_truth_is_load_independent():
    deployment, expected = build_chaos_deployment(seed=5)
    # Ground truth comes from the generated rows, not the query path.
    assert expected > 0
    deployment.simulator.run_until(30.0)
    from repro.cubrick.query import AggFunc, Aggregation, Query

    result = deployment.proxy.submit(
        Query.build("events", [Aggregation(AggFunc.SUM, "clicks")])
    )
    assert float(result.rows[0][-1]) == expected


def test_host_crash_scenario_passes():
    report = run_scenario("host-crash", seed=7)
    assert report.ok
    assert report.sla["success_ratio"] == 1.0
    assert report.sla["faults_injected"] == 2
    labels = [p.label for p in report.probes]
    assert labels[0] == "baseline"
    assert labels[-1] == "recovered"
    assert all(p.integrity_ok for p in report.probes)


def test_session_expiry_scenario_passes():
    # Regression: a deregistered-but-healthy host used to escape the
    # retry loop as an uncaught ConfigurationError.
    report = run_scenario("session-expiry", seed=7)
    assert report.ok


def test_crash_storm_never_silently_loses_rows():
    # Regression: overlapping owner crashes used to fail over with no
    # healthy donor, recovering *empty* shards that answered queries
    # with completeness 1.0 and a wrong total.
    report = run_scenario("crash-storm", seed=7)
    assert report.ok
    for probe in report.probes:
        assert probe.integrity_ok
        if probe.completeness >= 1.0 and probe.outcome == "ok":
            assert probe.total == probe.expected_total


def test_report_render_is_deterministic():
    a = run_scenario("region-partition", seed=7).render()
    b = run_scenario("region-partition", seed=7).render()
    assert a == b
    assert a.endswith("verdict: PASS\n")


def test_different_seeds_may_differ_but_both_render():
    a = run_scenario("host-hang", seed=1)
    b = run_scenario("host-hang", seed=2)
    assert a.render().startswith("chaos scenario: host-hang (seed=1)")
    assert b.render().startswith("chaos scenario: host-hang (seed=2)")


def test_cli_chaos_list(capsys):
    assert main(["chaos", "--list"]) == 0
    out = capsys.readouterr().out
    for name, __ in list_scenarios():
        assert name in out


def test_cli_chaos_requires_scenario(capsys):
    assert main(["chaos"]) == 2
    assert "scenario" in capsys.readouterr().err


def test_cli_chaos_runs_scenario(capsys):
    code = main(["chaos", "--scenario", "host-hang", "--seed", "7"])
    out = capsys.readouterr().out
    assert code == 0
    assert out.startswith("chaos scenario: host-hang (seed=7)")
    assert "verdict: PASS" in out


def test_cli_chaos_output_byte_identical(capsys):
    main(["chaos", "--scenario", "host-hang", "--seed", "7"])
    first = capsys.readouterr().out
    main(["chaos", "--scenario", "host-hang", "--seed", "7"])
    second = capsys.readouterr().out
    assert first == second
