"""Stateful chaos property test.

Hypothesis drives a loaded three-region deployment through random
interleavings of fault injection (crashes, recoveries, session
expiries, partitions), resilient-policy queries, migration/balance
rounds and clock advances. After every rule the safety invariants must
hold, and every accepted query answer must be exact or explicitly
labelled degraded — the same "never silently wrong" property the named
scenarios check, but over adversarial interleavings no scenario author
thought of.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.chaos.invariants import InvariantChecker
from repro.chaos.policies import ResiliencePolicy
from repro.chaos.scenarios import build_chaos_deployment
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.errors import (
    AdmissionControlError,
    QueryFailedError,
    RegionUnavailableError,
)

REGIONS = ["region0", "region1", "region2"]
HOSTS_PER_REGION = 6  # 2 racks x 3 hosts (build_chaos_deployment)


class ChaosMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.deployment, self.expected_total = build_chaos_deployment(seed=0)
        self.deployment.simulator.run_until(30.0)
        self.checker = InvariantChecker(self.deployment)
        self.policy = ResiliencePolicy.resilient()
        self.down: set[str] = set()
        self.expired: set[str] = set()
        self.partitioned: set[str] = set()

    def _host_id(self, region: int, index: int) -> str:
        hosts = [
            h.host_id
            for h in self.deployment.cluster.hosts_in_region(
                REGIONS[region % len(REGIONS)]
            )
        ]
        return hosts[index % len(hosts)]

    # ------------------------------------------------------------------
    # Fault rules
    # ------------------------------------------------------------------

    @rule(region=st.integers(0, 2), index=st.integers(0, HOSTS_PER_REGION - 1))
    def crash_host(self, region: int, index: int) -> None:
        host_id = self._host_id(region, index)
        if host_id in self.down or len(self.down) >= 4:
            return
        self.deployment.automation.handle_host_failure(
            host_id, permanent=False
        )
        self.down.add(host_id)
        self.expired.discard(host_id)

    @rule(region=st.integers(0, 2), index=st.integers(0, HOSTS_PER_REGION - 1))
    def recover_host(self, region: int, index: int) -> None:
        host_id = self._host_id(region, index)
        if host_id not in self.down:
            return
        self.deployment.automation.handle_host_recovery(host_id)
        self.down.discard(host_id)

    @rule(region=st.integers(0, 2), index=st.integers(0, HOSTS_PER_REGION - 1))
    def expire_session(self, region: int, index: int) -> None:
        host_id = self._host_id(region, index)
        if host_id in self.down or host_id in self.expired:
            return
        sm = self.deployment.sm_servers[
            self.deployment.cluster.host(host_id).region
        ]
        if sm.datastore.expire_session_of(host_id):
            self.expired.add(host_id)

    @rule(region=st.integers(0, 2), index=st.integers(0, HOSTS_PER_REGION - 1))
    def reconnect_expired(self, region: int, index: int) -> None:
        host_id = self._host_id(region, index)
        if host_id not in self.expired or host_id in self.down:
            return
        self.deployment._on_host_return(host_id)
        self.expired.discard(host_id)

    @rule(region=st.integers(0, 2))
    def partition_region(self, region: int) -> None:
        name = REGIONS[region % len(REGIONS)]
        if name in self.partitioned or len(self.partitioned) >= 2:
            return
        self.deployment.cluster.set_region_available(name, False)
        self.partitioned.add(name)

    @rule(region=st.integers(0, 2))
    def heal_region(self, region: int) -> None:
        name = REGIONS[region % len(REGIONS)]
        if name not in self.partitioned:
            return
        self.deployment.cluster.set_region_available(name, True)
        self.partitioned.discard(name)

    # ------------------------------------------------------------------
    # Work rules
    # ------------------------------------------------------------------

    @rule()
    def balance_and_retry(self) -> None:
        for sm in self.deployment.sm_servers.values():
            sm.collect_metrics()
            sm.run_load_balance()
            sm.retry_unplaced_failovers()

    @rule(dt=st.sampled_from([5.0, 30.0, 60.0]))
    def advance_time(self, dt: float) -> None:
        simulator = self.deployment.simulator
        simulator.run_until(simulator.now + dt)

    @rule()
    def probe_query(self) -> None:
        query = Query.build("events", [Aggregation(AggFunc.SUM, "clicks")])
        try:
            result = self.deployment.proxy.submit(query, policy=self.policy)
        except (
            AdmissionControlError,
            QueryFailedError,
            RegionUnavailableError,
        ):
            return  # failing loudly is always legal under chaos
        total = float(result.rows[0][-1]) if result.rows else 0.0
        report = self.checker.check_query_integrity(
            result, self.expected_total, total=total, label="stateful-probe"
        )
        assert report.ok, report.render()
        if not result.metadata.get("degraded", False):
            assert total == self.expected_total, (
                f"unlabelled answer dropped rows: {total} != "
                f"{self.expected_total}"
            )

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def safety_holds(self) -> None:
        report = self.checker.check_safety(label="stateful")
        assert report.ok, report.render()


TestChaosStateful = ChaosMachine.TestCase
TestChaosStateful.settings = settings(
    max_examples=10,
    stateful_step_count=20,
    deadline=None,
    derandomize=True,  # fixed seed: CI runs are reproducible
)
