"""Regression tests: unified per-hop timeout semantics.

Historically the region coordinator counted a timed-out hop as a failed
attempt while the SM client kept waiting on slow hosts indefinitely.
Both now route the decision through ``TimeoutPolicy.is_timeout`` so a
hop that exceeds the bound consumes retry budget identically in both
layers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos.faults import ChaosInjector, FaultSchedule
from repro.chaos.policies import ResiliencePolicy, RetryPolicy, TimeoutPolicy
from repro.chaos.scenarios import build_chaos_deployment
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.errors import HostUnavailableError, QueryFailedError


@pytest.fixture
def settled():
    deployment, expected_total = build_chaos_deployment(seed=13)
    deployment.simulator.run_until(30.0)
    return deployment, expected_total


def _sum_query():
    return Query.build("events", [Aggregation(AggFunc.SUM, "clicks")])


def test_coordinator_counts_timed_out_hop_as_failed(settled):
    deployment, __ = settled
    injector = ChaosInjector(deployment)
    # Amplify one region0 host far past the per-hop bound.
    injector.install(
        FaultSchedule().slow_disk(
            40.0, "region0-rack000-host000", factor=10_000.0, duration=60.0
        )
    )
    deployment.simulator.run_until(41.0)
    coordinator = deployment.coordinators["region0"]
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=1),
        timeout=TimeoutPolicy(per_hop=2.0),
    )
    with pytest.raises(QueryFailedError, match="per-hop timeout"):
        coordinator.execute(_sum_query(), policy=policy)


def test_coordinator_timeout_skipped_in_partial_mode(settled):
    deployment, __ = settled
    injector = ChaosInjector(deployment)
    injector.install(
        FaultSchedule().slow_disk(
            40.0, "region0-rack000-host000", factor=10_000.0, duration=60.0
        )
    )
    deployment.simulator.run_until(41.0)
    coordinator = deployment.coordinators["region0"]
    policy = ResiliencePolicy(timeout=TimeoutPolicy(per_hop=2.0))
    result = coordinator.execute(
        _sum_query(), allow_partial=True, policy=policy
    )
    assert result.metadata["coverage"] < 1.0


def test_sm_client_counts_timed_out_hop_as_failed(settled):
    deployment, __ = settled
    from repro.shardmanager.client import SMClient

    sm = deployment.sm_servers["region0"]
    client = SMClient(sm)
    shard_id = sorted(sm.shard_ids())[0]
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=3, base_backoff=0.0,
                          jitter_fraction=0.0),
        timeout=TimeoutPolicy(per_hop=2.0),
    )
    # Every hop reports a latency above the bound: all three attempts
    # must be consumed, then the timeout error surfaces.
    with pytest.raises(HostUnavailableError, match="per-hop timeout"):
        client.request_with_retries(
            shard_id,
            lambda node: "ok",
            policy=policy,
            hop_latency=lambda host: 5.0,
        )


def test_sm_client_timeout_stats_count_each_slow_hop(settled):
    deployment, __ = settled
    from repro.shardmanager.client import SMClient

    sm = deployment.sm_servers["region0"]
    client = SMClient(sm)
    shard_id = sorted(sm.shard_ids())[0]
    latencies = iter([5.0, 5.0, 0.01])
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=3, base_backoff=0.0,
                          jitter_fraction=0.0),
        timeout=TimeoutPolicy(per_hop=2.0),
    )
    result, routed, stats = client.request_with_retries(
        shard_id,
        lambda node: "ok",
        policy=policy,
        hop_latency=lambda host: next(latencies),
    )
    assert result == "ok"
    assert stats.attempts == 3
    assert stats.timeouts == 2


def test_sm_client_fast_hop_never_times_out(settled):
    deployment, __ = settled
    from repro.shardmanager.client import SMClient

    sm = deployment.sm_servers["region0"]
    client = SMClient(sm)
    shard_id = sorted(sm.shard_ids())[0]
    result, routed, stats = client.request_with_retries(
        shard_id,
        lambda node: "ok",
        policy=ResiliencePolicy.resilient(),
        hop_latency=lambda host: 0.01,
    )
    assert result == "ok"
    assert stats.attempts == 1
    assert stats.timeouts == 0


def test_both_layers_share_the_same_timeout_predicate(settled):
    # The unification itself: one policy object drives both layers.
    deployment, __ = settled
    policy = ResiliencePolicy(timeout=TimeoutPolicy(per_hop=2.0))
    assert policy.timeout.is_timeout(2.5)
    assert not policy.timeout.is_timeout(1.5)
    # Coordinator consults exactly this predicate (no private bound).
    coordinator = deployment.coordinators["region0"]
    assert not hasattr(coordinator, "per_hop_timeout")


def test_proxy_budget_bounded_under_total_blackout(settled):
    deployment, __ = settled
    injector = ChaosInjector(deployment)
    schedule = FaultSchedule()
    for region in ("region0", "region1", "region2"):
        schedule.tail_amplify(40.0, region, factor=100_000.0, duration=120.0)
    injector.install(schedule)
    deployment.simulator.run_until(41.0)
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=4, base_backoff=0.0,
                          jitter_fraction=0.0),
        timeout=TimeoutPolicy(per_hop=2.0),
    )
    with pytest.raises(QueryFailedError):
        deployment.proxy.submit(_sum_query(), policy=policy)
    # Budget respected: the proxy gave up after exactly four attempts.
    entry = deployment.proxy.query_log[-1]
    assert entry.attempts == 4
