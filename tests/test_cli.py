"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_int_list, build_parser, main


class TestParsing:
    def test_int_list(self):
        assert _parse_int_list("1,2,3") == [1, 2, 3]

    def test_int_list_rejects_garbage(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_int_list("1,x")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_wall(self, capsys):
        assert main(["wall"]) == 0
        out = capsys.readouterr().out
        assert "scalability wall    : 100 servers" in out

    def test_wall_custom_parameters(self, capsys):
        assert main(["wall", "--failure-probability", "1e-3",
                     "--sla", "0.99"]) == 0
        out = capsys.readouterr().out
        assert "10 servers" in out

    def test_curve(self, capsys):
        assert main(["curve", "--fanouts", "1,100,1000"]) == 0
        out = capsys.readouterr().out
        assert "NO" in out  # 1000 hosts misses the 99% SLA
        assert "yes" in out

    def test_required_reliability(self, capsys):
        assert main(["required-reliability", "--fanout", "10000"]) == 0
        out = capsys.readouterr().out
        assert "must be below" in out

    def test_collisions(self, capsys):
        assert main(["collisions", "--tables", "100",
                     "--max-shards", "50000", "--hosts", "100"]) == 0
        out = capsys.readouterr().out
        assert "same-table partition coll.  : 0.00%" in out

    def test_smc_delay(self, capsys):
        assert main(["smc-delay", "--samples", "5000"]) == 0
        out = capsys.readouterr().out
        assert "p50" in out and "mean" in out

    def test_demo_sql(self, capsys):
        assert main([
            "demo-sql",
            "SELECT count(*) FROM events WHERE day = 1",
            "--rows", "500",
        ]) == 0
        out = capsys.readouterr().out
        assert "count(*)" in out
        assert "1 row(s)" in out

    def test_demo_sql_rejects_bad_statement(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            main(["demo-sql", "SELEC oops", "--rows", "10"])

    def test_sql_sharded_join(self, capsys):
        assert main([
            "sql",
            "SELECT dim_users.tier, sum(clicks) FROM events "
            "JOIN dim_users ON events.user_id = dim_users.user_id "
            "GROUP BY dim_users.tier",
            "--rows", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "dim_users.tier" in out
        assert "joins {'dim_users': 'broadcast'}" in out

    def test_explain_deterministic(self, capsys):
        argv = [
            "explain",
            "SELECT count(*) FROM events WHERE day < 7 GROUP BY country",
            "--rows", "200",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert "== physical plan == [fanout]" in first

    def test_explain_no_optimize(self, capsys):
        statement = (
            "SELECT count(*) FROM events "
            "JOIN dim_users ON events.user_id = dim_users.user_id "
            "WHERE day = 1"
        )
        assert main(["explain", statement, "--rows", "200"]) == 0
        optimized = capsys.readouterr().out
        assert main(["explain", statement, "--rows", "200",
                     "--no-optimize"]) == 0
        unoptimized = capsys.readouterr().out
        assert optimized != unoptimized
        assert "partition-pruning" in optimized

    def test_fanout_experiment_small(self, capsys):
        assert main(["fanout-experiment", "--fanouts", "1,2",
                     "--queries", "30"]) == 0
        out = capsys.readouterr().out
        assert "fanout" in out
        assert " 1 " in out or "\n      1" in out
