"""Tests for the cluster substrate: hosts, topology, automation."""

import pytest

from repro.cluster.automation import (
    DatacenterAutomation,
    MaintenanceKind,
    SafetyPolicy,
)
from repro.cluster.host import GIB, Host, HostState
from repro.cluster.topology import Cluster
from repro.errors import HostNotFoundError
from repro.sim.engine import DAY, Simulator


def make_host(host_id="h1", region="region0", rack="rack0", **kwargs) -> Host:
    return Host(host_id=host_id, region=region, rack=rack, **kwargs)


class TestHost:
    def test_healthy_host_is_available(self):
        host = make_host()
        assert host.is_available
        assert host.accepts_new_shards

    def test_failed_host_is_unavailable(self):
        host = make_host()
        host.fail(permanent=False)
        assert host.state is HostState.FAILED
        assert not host.is_available

    def test_permanent_failure_goes_to_repair(self):
        host = make_host()
        host.fail(permanent=True)
        assert host.state is HostState.REPAIR

    def test_draining_host_serves_but_refuses_new_shards(self):
        host = make_host()
        host.start_drain()
        assert host.is_available
        assert not host.accepts_new_shards

    def test_recover_restores_health(self):
        host = make_host()
        host.fail(permanent=False)
        host.recover()
        assert host.state is HostState.HEALTHY

    def test_failure_domains(self):
        host = make_host(host_id="x", region="r1", rack="k7")
        assert host.failure_domain("host") == "x"
        assert host.failure_domain("rack") == "r1/k7"
        assert host.failure_domain("region") == "r1"

    def test_unknown_spread_rejected(self):
        with pytest.raises(ValueError):
            make_host().failure_domain("continent")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            make_host(memory_bytes=0)


class TestCluster:
    def test_build_dimensions(self):
        cluster = Cluster.build(regions=2, racks_per_region=3, hosts_per_rack=4)
        assert len(cluster) == 24
        assert len(cluster.region_names()) == 2
        assert len(cluster.hosts_in_region("region0")) == 12
        assert len(cluster.hosts_in_rack("region0", "rack001")) == 4

    def test_duplicate_host_rejected(self):
        cluster = Cluster()
        cluster.add_host(make_host())
        with pytest.raises(ValueError):
            cluster.add_host(make_host())

    def test_unknown_host_raises(self, small_cluster):
        with pytest.raises(HostNotFoundError):
            small_cluster.host("nope")

    def test_contains(self, small_cluster):
        host_id = small_cluster.host_ids()[0]
        assert host_id in small_cluster
        assert "nope" not in small_cluster

    def test_available_excludes_failed(self, small_cluster):
        victim = small_cluster.host_ids()[0]
        small_cluster.host(victim).fail(permanent=False)
        available = {h.host_id for h in small_cluster.available_hosts()}
        assert victim not in available
        assert len(available) == len(small_cluster) - 1

    def test_region_drain_hides_all_hosts(self, three_region_cluster):
        three_region_cluster.set_region_available("region1", False)
        assert three_region_cluster.available_hosts("region1") == []
        assert len(three_region_cluster.available_hosts("region0")) == 6

    def test_placeable_excludes_draining(self, small_cluster):
        victim = small_cluster.host_ids()[0]
        small_cluster.host(victim).start_drain()
        placeable = {h.host_id for h in small_cluster.placeable_hosts()}
        available = {h.host_id for h in small_cluster.available_hosts()}
        assert victim not in placeable
        assert victim in available

    def test_count_by_state(self, small_cluster):
        small_cluster.host(small_cluster.host_ids()[0]).fail(permanent=True)
        counts = small_cluster.count_by_state()
        assert counts[HostState.REPAIR] == 1
        assert counts[HostState.HEALTHY] == len(small_cluster) - 1

    def test_build_validates_dimensions(self):
        with pytest.raises(ValueError):
            Cluster.build(regions=0)

    def test_unknown_rack_raises(self, small_cluster):
        with pytest.raises(HostNotFoundError):
            small_cluster.hosts_in_rack("region0", "rack999")


class TestAutomation:
    def _make(self, cluster=None, policy=None):
        simulator = Simulator()
        cluster = cluster or Cluster.build(
            regions=1, racks_per_region=2, hosts_per_rack=5
        )
        drained, returned = [], []
        automation = DatacenterAutomation(
            simulator,
            cluster,
            policy=policy,
            on_drain=drained.append,
            on_return=returned.append,
        )
        return simulator, cluster, automation, drained, returned

    def test_maintenance_drains_and_returns(self):
        simulator, cluster, automation, drained, returned = self._make()
        target = cluster.host_ids()[0]
        request = automation.request_maintenance(
            MaintenanceKind.POWER_MAINTENANCE, [target], duration=DAY
        )
        assert request.approved
        assert drained == [target]
        assert cluster.host(target).state is HostState.DRAINED
        simulator.run_until(2 * DAY)
        assert cluster.host(target).state is HostState.HEALTHY
        assert returned == [target]

    def test_decommission_is_permanent(self):
        simulator, cluster, automation, __, returned = self._make()
        target = cluster.host_ids()[0]
        automation.request_maintenance(
            MaintenanceKind.DECOMMISSION, [target], duration=100.0
        )
        simulator.run_until(DAY)
        assert cluster.host(target).state is HostState.DECOMMISSIONED
        assert returned == []

    def test_safety_check_blocks_oversized_request(self):
        policy = SafetyPolicy(max_hosts_per_request=2)
        simulator, cluster, automation, drained, __ = self._make(policy=policy)
        request = automation.request_maintenance(
            MaintenanceKind.RACK_MAINTENANCE, cluster.host_ids()[:5]
        )
        assert not request.approved
        assert "limit" in request.reason
        assert drained == []

    def test_safety_check_blocks_capacity_violation(self):
        policy = SafetyPolicy(min_available_fraction=0.9)
        simulator, cluster, automation, drained, __ = self._make(policy=policy)
        request = automation.request_maintenance(
            MaintenanceKind.DISASTER_EXERCISE, cluster.host_ids()[:3]
        )
        assert not request.approved
        assert drained == []

    def test_repair_log_counts_permanent_failures(self):
        simulator, cluster, automation, __, __r = self._make()
        hosts = cluster.host_ids()
        automation.handle_host_failure(hosts[0], permanent=True)
        simulator.run_until(DAY + 1)
        automation.handle_host_failure(hosts[1], permanent=True)
        automation.handle_host_failure(hosts[2], permanent=False)
        per_day = automation.repairs_per_day(horizon_days=2)
        assert per_day == [1, 1]
        assert automation.hosts_in_repair() == 2

    def test_recovery_notifies(self):
        simulator, cluster, automation, __, returned = self._make()
        target = cluster.host_ids()[0]
        automation.handle_host_failure(target, permanent=False)
        automation.handle_host_recovery(target)
        assert cluster.host(target).state is HostState.HEALTHY
        assert returned == [target]

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SafetyPolicy(min_available_fraction=1.5)
        with pytest.raises(ValueError):
            SafetyPolicy(max_hosts_per_request=0)

    def test_repairs_per_day_validates_horizon(self):
        __, __c, automation, __d, __r = self._make()
        with pytest.raises(ValueError):
            automation.repairs_per_day(0)
