"""Tests for on-the-fly cluster resize (paper §II-C design question)."""

import numpy as np
import pytest

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.errors import ConfigurationError
from repro.workloads.fanout_experiment import probe_schema
from repro.workloads.queries import simple_probe_query


@pytest.fixture
def deployment():
    deployment = CubrickDeployment(
        DeploymentConfig(seed=55, regions=1, racks_per_region=2,
                         hosts_per_rack=5)
    )
    schema = probe_schema("resize")
    deployment.create_table(schema)
    rng = np.random.default_rng(1)
    deployment.load(
        "resize",
        [{"bucket": int(rng.integers(64)), "value": 1.0} for __ in range(500)],
    )
    deployment.simulator.run_until(30.0)
    return deployment


class TestScaleOut:
    def test_added_hosts_are_registered(self, deployment):
        added = deployment.add_hosts("region0", 3)
        assert len(added) == 3
        sm = deployment.sm_servers["region0"]
        for host_id in added:
            assert host_id in sm.registered_hosts()
            assert host_id in deployment.cluster
        assert len(deployment.cluster) == 13

    def test_balancer_uses_new_hosts(self):
        # A small cluster where every host carries multiple shards, so
        # moving some to fresh hosts genuinely improves the balance.
        deployment = CubrickDeployment(
            DeploymentConfig(seed=56, regions=1, racks_per_region=2,
                             hosts_per_rack=2)
        )
        rng = np.random.default_rng(2)
        for i in range(6):
            schema = probe_schema(f"dense{i}")
            deployment.create_table(schema, num_partitions=2)
            deployment.load(
                schema.name,
                [{"bucket": int(rng.integers(64)), "value": 1.0}
                 for __ in range(100 + 60 * i)],
            )
        sm = deployment.sm_servers["region0"]
        added = deployment.add_hosts("region0", 4)
        sm.collect_metrics()
        for __ in range(4):
            sm.run_load_balance()
            sm.collect_metrics()
        moved_to_new = any(
            record.to_host in added for record in sm.migrations.log
        )
        assert moved_to_new

    def test_fanout_unchanged_by_scale_out(self, deployment):
        """The core partial-sharding property: adding nodes never grows
        any table's fan-out."""
        before = deployment.table_fanout("resize")
        deployment.add_hosts("region0", 6)
        sm = deployment.sm_servers["region0"]
        sm.collect_metrics()
        sm.run_load_balance()
        assert deployment.table_fanout("resize") <= before + 0  # never grows
        deployment.simulator.run_until(deployment.simulator.now + 60.0)
        result = deployment.query(simple_probe_query(probe_schema("resize")))
        assert result.scalar() == 500.0

    def test_new_hosts_get_replicated_tables(self, deployment):
        dim = TableSchema.build(
            "dim_r", [Dimension("k", 10), Dimension("a", 3)], []
        )
        deployment.create_table(dim, replicated=True)
        deployment.load("dim_r", [{"k": 1, "a": 0}])
        added = deployment.add_hosts("region0", 2)
        for host_id in added:
            assert "dim_r" in deployment.nodes[host_id].replicated_tables()

    def test_invalid_count_rejected(self, deployment):
        with pytest.raises(ConfigurationError):
            deployment.add_hosts("region0", 0)

    def test_repeated_expansion_names_unique(self, deployment):
        first = deployment.add_hosts("region0", 2)
        second = deployment.add_hosts("region0", 2)
        assert len(set(first + second)) == 4


class TestScaleIn:
    def test_decommission_drains_then_removes(self, deployment):
        sm = deployment.sm_servers["region0"]
        # Make room first so the drain has collision-free targets.
        deployment.add_hosts("region0", 4)
        sm.collect_metrics()
        victim = next(
            h for h in sm.registered_hosts() if sm.shards_on_host(h)
        )
        assert deployment.decommission_host(victim)
        assert sm.shards_on_host(victim) == set()
        deployment.simulator.run_until(deployment.simulator.now + 60.0)
        from repro.cluster.host import HostState

        assert deployment.cluster.host(victim).state is HostState.DECOMMISSIONED
        result = deployment.query(simple_probe_query(probe_schema("resize")))
        assert result.scalar() == 500.0

    def test_decommission_refused_when_unsafe(self, deployment):
        # Removing most of the fleet trips the capacity safety check.
        hosts = deployment.cluster.host_ids()
        removed = 0
        refused = False
        for host_id in hosts:
            if deployment.decommission_host(host_id):
                removed += 1
            else:
                refused = True
                break
        assert refused
        assert removed < len(hosts)
