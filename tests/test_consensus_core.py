"""Unit tests for the consensus core: log, transport, node, group, store."""

from __future__ import annotations

import pytest

from repro.consensus import (
    LEADER,
    LogEntry,
    MetadataCluster,
    RaftLog,
    ReplicatedDatastore,
)
from repro.errors import ConfigurationError, QuorumUnavailableError
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

REGIONS = ["a", "b", "c"]


def make_cluster(simulator=None, *, seed=0, obs=None, regions=None,
                 bootstrap="a", **kwargs):
    simulator = simulator if simulator is not None else Simulator()
    rngs = RngRegistry(seed)
    cluster = MetadataCluster(
        simulator,
        list(regions if regions is not None else REGIONS),
        lambda r: rngs.stream(f"consensus:{r}"),
        obs=obs,
        bootstrap_leader=bootstrap,
        **kwargs,
    )
    return simulator, cluster


def settle(simulator, dt=10.0):
    simulator.run_until(simulator.now + dt)


# ----------------------------------------------------------------------
# RaftLog
# ----------------------------------------------------------------------


class TestRaftLog:
    def test_append_and_lookup(self):
        log = RaftLog()
        assert log.last_index == 0 and log.last_term == 0
        assert log.term_at(0) == 0
        entry = log.append_new(1, ("set", "k", 1))
        assert entry == LogEntry(1, 1, ("set", "k", 1))
        assert log.last_index == 1 and log.last_term == 1
        assert log.term_at(1) == 1
        assert log.term_at(5) is None
        assert list(log.entries_from(1)) == [entry]

    def test_entry_out_of_range_raises(self):
        log = RaftLog()
        log.append_new(1, ("noop",))
        with pytest.raises(ConfigurationError):
            log.entry(2)
        with pytest.raises(ConfigurationError):
            log.entry(0)

    def test_overwrite_keeps_matching_truncates_conflicts(self):
        log = RaftLog()
        log.append_new(1, ("set", "k", 1))
        log.append_new(1, ("set", "k", 2))
        log.append_new(1, ("set", "k", 3))
        # Same index 2 at a later term: truncate 2..3 and append.
        log.overwrite_from((
            LogEntry(2, 2, ("set", "k", 9)),
            LogEntry(3, 2, ("set", "k", 10)),
        ))
        assert log.last_index == 3
        assert log.entry(1).term == 1
        assert log.entry(2) == LogEntry(2, 2, ("set", "k", 9))
        assert log.entry(3).term == 2
        # Idempotent replay of a matching prefix changes nothing.
        log.overwrite_from((LogEntry(2, 2, ("set", "k", 9)),))
        assert log.last_index == 3

    def test_compact_and_snapshot_state(self):
        log = RaftLog()
        for i in range(5):
            log.append_new(1, ("set", "k", i))
        log.compact(3, state=(("k", 2),))
        assert log.snapshot_index == 3 and log.snapshot_term == 1
        assert log.term_at(3) == 1  # served from the snapshot boundary
        assert log.term_at(2) is None  # compacted away
        assert log.last_index == 5
        with pytest.raises(ConfigurationError):
            log.compact(99, state=())

    def test_install_snapshot_resets_conflicting_log(self):
        log = RaftLog()
        log.append_new(1, ("set", "k", 1))
        log.install_snapshot(4, 3, (("k", 9),))
        assert log.snapshot_index == 4 and log.snapshot_term == 3
        assert log.last_index == 4
        assert log.snapshot_state == (("k", 9),)
        # An older snapshot is a no-op.
        log.install_snapshot(2, 1, ())
        assert log.snapshot_index == 4


# ----------------------------------------------------------------------
# Election + replication
# ----------------------------------------------------------------------


class TestElectionAndReplication:
    def test_bootstrap_region_wins_first_election(self):
        simulator, cluster = make_cluster()
        settle(simulator)
        assert cluster.leader() == "a"
        assert cluster.replica("a").role == LEADER
        assert cluster.leader_history() == {1: ["a"]}

    def test_committed_command_applies_everywhere(self):
        simulator, cluster = make_cluster()
        settle(simulator)
        index = cluster.propose(("set", "k", 42))
        assert index is not None
        settle(simulator)
        for region in REGIONS:
            assert cluster.machines[region].get("k") == 42
        assert cluster.max_committed_index >= index
        assert cluster.commit_conflicts == []

    def test_propose_via_follower_returns_none(self):
        simulator, cluster = make_cluster()
        settle(simulator)
        assert cluster.propose(("set", "k", 1), region="b") is None

    def test_leader_crash_triggers_new_election(self):
        simulator, cluster = make_cluster()
        settle(simulator)
        cluster.crash_replica("a")
        settle(simulator, 15.0)
        leader = cluster.leader()
        assert leader in ("b", "c")
        assert cluster.replica(leader).current_term > 1
        # The recovered replica rejoins as a follower and catches up.
        cluster.propose(("set", "after", 1))
        settle(simulator)
        cluster.recover_replica("a")
        settle(simulator, 15.0)
        assert cluster.machines["a"].get("after") == 1
        history = cluster.leader_history()
        assert all(len(winners) == 1 for winners in history.values())

    def test_partitioned_minority_cannot_elect(self):
        simulator, cluster = make_cluster()
        settle(simulator)
        cluster.partition_region("b")
        settle(simulator, 60.0)
        # b keeps starting elections but can never win one.
        assert cluster.leader() == "a"
        assert "b" not in [
            r for winners in cluster.leader_history().values()
            for r in winners
        ]
        cluster.heal_region("b")
        settle(simulator, 30.0)
        # b's inflated term forces a step-down + re-election, but the
        # per-term single-winner property always holds.
        history = cluster.leader_history()
        assert all(len(winners) == 1 for winners in history.values())
        assert cluster.commit_conflicts == []

    def test_partitioned_leader_loses_lease(self):
        simulator, cluster = make_cluster()
        settle(simulator)
        node = cluster.replica("a")
        assert node.has_lease(simulator.now)
        cluster.partition_region("a")
        settle(simulator, 10.0)
        assert not node.has_lease(simulator.now)

    def test_majority_partition_keeps_committing(self):
        simulator, cluster = make_cluster()
        settle(simulator)
        cluster.partition_region("a")
        settle(simulator, 15.0)
        leader = cluster.leader()
        assert leader in ("b", "c")
        index = cluster.propose(("set", "during", 7))
        assert index is not None
        settle(simulator)
        assert cluster.machines[leader].get("during") == 7
        # Heal: the isolated ex-leader catches up without conflicts.
        cluster.heal_region("a")
        settle(simulator, 20.0)
        assert cluster.machines["a"].get("during") == 7
        assert cluster.commit_conflicts == []
        assert all(
            cluster.replica(r).commit_regressions == 0 for r in REGIONS
        )

    def test_asymmetric_cut_routes_around(self):
        simulator, cluster = make_cluster()
        settle(simulator)
        # a's messages to b vanish; b still reaches a and c.
        cluster.cut_link("a", "b")
        settle(simulator, 30.0)
        leader = cluster.leader()
        assert leader is not None
        index = cluster.propose(("set", "oneway", 1))
        assert index is not None
        settle(simulator, 10.0)
        cluster.restore_link("a", "b")
        settle(simulator, 20.0)
        for region in REGIONS:
            assert cluster.machines[region].get("oneway") == 1
        history = cluster.leader_history()
        assert all(len(winners) == 1 for winners in history.values())

    def test_compaction_and_snapshot_catchup(self):
        simulator, cluster = make_cluster(compaction_threshold=8)
        settle(simulator)
        cluster.crash_replica("c")
        for i in range(20):
            cluster.propose(("set", f"k{i}", i))
            settle(simulator, 2.0)
        leader_log = cluster.replica("a").log
        assert leader_log.snapshot_index > 0  # compaction ran
        cluster.recover_replica("c")
        settle(simulator, 30.0)
        # c was behind the leader's compacted prefix: caught up by
        # snapshot shipping, then log replay.
        assert cluster.machines["c"].get("k19") == 19
        assert cluster.replica("c").commit_index == \
            cluster.replica("a").commit_index


# ----------------------------------------------------------------------
# Quorum reads
# ----------------------------------------------------------------------


class TestQuorumReads:
    def test_quorum_read_returns_freshest(self):
        simulator, cluster = make_cluster()
        settle(simulator)
        cluster.propose(("set", "k", 5))
        settle(simulator)
        assert cluster.quorum_read("b", "k") == 5
        assert cluster.quorum_keys_with_prefix("c", "k") == ["k"]

    def test_quorum_read_unavailable_when_partitioned(self):
        simulator, cluster = make_cluster()
        settle(simulator)
        cluster.partition_region("b")
        with pytest.raises(QuorumUnavailableError):
            cluster.quorum_read("b", "k")

    def test_invalid_construction(self):
        simulator = Simulator()
        rngs = RngRegistry(0)
        with pytest.raises(ConfigurationError):
            MetadataCluster(simulator, [], lambda r: rngs.stream(r))
        with pytest.raises(ConfigurationError):
            MetadataCluster(
                simulator, ["a"], lambda r: rngs.stream(r),
                bootstrap_leader="nope",
            )


# ----------------------------------------------------------------------
# ReplicatedDatastore
# ----------------------------------------------------------------------


def make_store(region="a"):
    simulator, cluster = make_cluster()
    settle(simulator)
    store = ReplicatedDatastore(simulator, cluster, region)
    return simulator, cluster, store


class TestReplicatedDatastore:
    def test_set_get_roundtrip(self):
        simulator, cluster, store = make_store()
        store.set("x", 1)
        settle(simulator)
        assert store.get("x") == 1
        # Every region's machine converged on the write.
        for region in REGIONS:
            assert cluster.machines[region].get("x") == 1

    def test_delete_removes_everywhere(self):
        simulator, cluster, store = make_store()
        store.set("x", 1)
        settle(simulator)
        store.delete("x")
        settle(simulator)
        assert store.get("x") is None
        assert store.get("x", "fallback") == "fallback"

    def test_follower_region_routes_to_leader(self):
        simulator, cluster, store = make_store(region="b")
        store.set("routed", 9)
        settle(simulator)
        assert cluster.machines["a"].get("routed") == 9

    def test_writes_park_during_partition_and_drain(self):
        simulator, cluster, store = make_store(region="b")
        cluster.partition_region("b")
        store.set("parked", 1)
        store.set("parked2", 2)
        settle(simulator, 30.0)
        assert cluster.machines["a"].get("parked") is None
        cluster.heal_region("b")
        settle(simulator, 30.0)
        # The pending buffer drained in order once a route appeared.
        assert cluster.machines["a"].get("parked") == 1
        assert cluster.machines["a"].get("parked2") == 2

    def test_reads_fall_back_locally_when_no_quorum(self):
        simulator, cluster, store = make_store()
        store.set("x", 1)
        settle(simulator)
        cluster.partition_region("a")
        settle(simulator, 10.0)  # past the leader lease
        # No quorum from a, but the local machine still has the value.
        assert store.get("x") == 1
        fallbacks = store.obs.metrics.counter(
            "consensus.quorum_read_fallbacks", region="a"
        )
        assert fallbacks.value > 0

    def test_keys_with_prefix_merges_replicated_and_local(self):
        simulator, cluster, store = make_store()
        store.set("p/one", 1)
        settle(simulator)
        session = store.create_session("host-1")
        store.create_ephemeral(session, "p/eph", 2)
        assert store.keys_with_prefix("p/") == ["p/eph", "p/one"]
        assert store.get("p/eph") == 2

    def test_sessions_stay_region_local(self):
        simulator, cluster, store = make_store()
        session = store.create_session("host-1")
        assert [s.owner for s in store.live_sessions()] == ["host-1"]
        store.close_session(session)
        assert store.live_sessions() == []

    def test_shutdown_cancels_drain(self):
        simulator, cluster, store = make_store()
        store.set("x", 1)
        store.shutdown()
        settle(simulator, 30.0)  # no pending-drain churn after shutdown
