"""Differential test: ReplicatedDatastore ≡ legacy Datastore, fault-free.

The same operation sequence is applied to the consensus-backed store
and to the plain in-memory one; with no faults injected, every read —
``get``, ``keys_with_prefix``, session/ephemeral state — must be
equivalent once commits have landed. Hypothesis generates the op
sequences; the suite is derandomized so CI runs are reproducible.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus import MetadataCluster, ReplicatedDatastore
from repro.shardmanager.datastore import Datastore
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

REGIONS = ["a", "b", "c"]
KEYS = [f"key/{i}" for i in range(6)]

# One op: ("set", key_index, value) | ("delete", key_index)
OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("set"), st.integers(0, len(KEYS) - 1),
            st.integers(0, 99),
        ),
        st.tuples(st.just("delete"), st.integers(0, len(KEYS) - 1)),
    ),
    max_size=12,
)


def _build_replicated(region: str):
    simulator = Simulator()
    rngs = RngRegistry(0)
    cluster = MetadataCluster(
        simulator,
        list(REGIONS),
        lambda r: rngs.stream(f"consensus:{r}"),
        bootstrap_leader="a",
    )
    simulator.run_until(10.0)
    return simulator, ReplicatedDatastore(simulator, cluster, region)


def _apply(store, simulator, ops, *, advance: float) -> None:
    for op in ops:
        if op[0] == "set":
            store.set(KEYS[op[1]], op[2])
        else:
            store.delete(KEYS[op[1]])
        if advance:
            simulator.run_until(simulator.now + advance)
    if advance:
        simulator.run_until(simulator.now + 10.0)  # let commits land


@settings(max_examples=25, deadline=None, derandomize=True)
@given(ops=OPS)
def test_reads_equivalent_via_leader_region(ops):
    simulator, replicated = _build_replicated("a")
    legacy_simulator = Simulator()
    legacy = Datastore(legacy_simulator)
    _apply(replicated, simulator, ops, advance=1.0)
    _apply(legacy, legacy_simulator, ops, advance=0.0)
    for key in KEYS:
        assert replicated.get(key) == legacy.get(key), key
        assert replicated.get(key, -1) == legacy.get(key, -1), key
    assert replicated.keys_with_prefix("key/") == \
        legacy.keys_with_prefix("key/")


@settings(max_examples=10, deadline=None, derandomize=True)
@given(ops=OPS)
def test_reads_equivalent_via_follower_region(ops):
    # Writes forwarded to the leader; reads quorum-served. Still the
    # same observable state as the process-local dict.
    simulator, replicated = _build_replicated("b")
    legacy_simulator = Simulator()
    legacy = Datastore(legacy_simulator)
    _apply(replicated, simulator, ops, advance=1.0)
    _apply(legacy, legacy_simulator, ops, advance=0.0)
    for key in KEYS:
        assert replicated.get(key) == legacy.get(key), key
    assert replicated.keys_with_prefix("key/") == \
        legacy.keys_with_prefix("key/")


def test_session_lifecycle_equivalent():
    simulator, replicated = _build_replicated("a")
    legacy = Datastore(Simulator())
    for store in (replicated, legacy):
        session = store.create_session("host-7")
        store.create_ephemeral(session, "eph/one", 1)
        assert [s.owner for s in store.live_sessions()] == ["host-7"]
        assert store.get("eph/one") == 1
        assert store.keys_with_prefix("eph/") == ["eph/one"]
        store.close_session(session)
        assert store.live_sessions() == []
        assert store.get("eph/one") is None
