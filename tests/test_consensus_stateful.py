"""Stateful consensus property test.

Hypothesis drives a three-replica metadata cluster through random
interleavings of proposals, replica crashes/restarts, directional link
cuts, full region partitions/heals and clock advances. After every rule
the Raft safety properties must hold:

* **election safety** — at most one winner per term;
* **log matching** — two replicas holding the same (index, term) hold
  the same command, at every retained index;
* **no committed-entry loss** — no replica ever applies a different
  (term, command) at a committed index than the cluster ledger records;
* **monotonic commit** — no replica's commit index ever moves back.

A final quiesce rule heals everything and checks the cluster converges
on identical applied state.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.consensus import MetadataCluster
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

REGIONS = ["a", "b", "c"]


class ConsensusMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.simulator = Simulator()
        rngs = RngRegistry(0)
        self.cluster = MetadataCluster(
            self.simulator,
            list(REGIONS),
            lambda r: rngs.stream(f"consensus:{r}"),
            bootstrap_leader="a",
        )
        self.counter = 0
        self.simulator.run_until(10.0)

    def _advance(self, dt: float) -> None:
        self.simulator.run_until(self.simulator.now + dt)

    # ------------------------------------------------------------------
    # Workload + fault rules
    # ------------------------------------------------------------------

    @rule()
    def propose(self) -> None:
        self.counter += 1
        self.cluster.propose(("set", f"k{self.counter}", self.counter))
        self._advance(1.0)

    @rule(index=st.integers(0, 2))
    def crash_replica(self, index: int) -> None:
        region = REGIONS[index]
        if self.cluster.nodes[region].crashed:
            return
        if len(self.cluster.live_regions()) <= 2:
            return  # keep a majority electable so runs stay interesting
        self.cluster.crash_replica(region)

    @rule(index=st.integers(0, 2))
    def restart_replica(self, index: int) -> None:
        region = REGIONS[index]
        if self.cluster.nodes[region].crashed:
            self.cluster.recover_replica(region)

    @rule(src=st.integers(0, 2), dst=st.integers(0, 2))
    def cut_link(self, src: int, dst: int) -> None:
        if src == dst:
            return
        self.cluster.cut_link(REGIONS[src], REGIONS[dst])

    @rule(src=st.integers(0, 2), dst=st.integers(0, 2))
    def restore_link(self, src: int, dst: int) -> None:
        if src == dst:
            return
        self.cluster.restore_link(REGIONS[src], REGIONS[dst])

    @rule(index=st.integers(0, 2))
    def partition_region(self, index: int) -> None:
        self.cluster.partition_region(REGIONS[index])

    @rule(index=st.integers(0, 2))
    def heal_region(self, index: int) -> None:
        self.cluster.heal_region(REGIONS[index])

    @rule(dt=st.sampled_from([1.0, 5.0, 20.0]))
    def advance_time(self, dt: float) -> None:
        self._advance(dt)

    @rule()
    def quiesce_and_converge(self) -> None:
        """Heal every fault, then require full state convergence."""
        for region in REGIONS:
            self.cluster.heal_region(region)
            if self.cluster.nodes[region].crashed:
                self.cluster.recover_replica(region)
        self._advance(40.0)
        leader = self.cluster.leader()
        assert leader is not None, "healed cluster must elect a leader"
        reference = self.cluster.machines[leader].snapshot()
        for region in REGIONS:
            assert self.cluster.machines[region].snapshot() == reference, (
                f"{region} diverged from leader {leader} after quiesce"
            )

    # ------------------------------------------------------------------
    # Safety invariants (checked after every rule)
    # ------------------------------------------------------------------

    @invariant()
    def election_safety(self) -> None:
        for term, winners in self.cluster.leader_history().items():
            assert len(winners) == 1, (
                f"term {term} won by {sorted(winners)}"
            )

    @invariant()
    def log_matching(self) -> None:
        nodes = [self.cluster.nodes[r] for r in REGIONS]
        for i, left in enumerate(nodes):
            for right in nodes[i + 1:]:
                lo = max(left.log.snapshot_index, right.log.snapshot_index)
                hi = min(left.log.last_index, right.log.last_index)
                for index in range(lo + 1, hi + 1):
                    if left.log.term_at(index) != right.log.term_at(index):
                        continue
                    assert (
                        left.log.entry(index).command
                        == right.log.entry(index).command
                    ), (
                        f"log matching violated at index {index}: "
                        f"{left.node_id} vs {right.node_id}"
                    )

    @invariant()
    def no_committed_entry_loss(self) -> None:
        assert self.cluster.commit_conflicts == [], (
            self.cluster.commit_conflicts
        )
        for region in REGIONS:
            node = self.cluster.nodes[region]
            for index in range(
                node.log.snapshot_index + 1, node.commit_index + 1
            ):
                recorded = self.cluster.ledger.get(index)
                term = node.log.term_at(index)
                if recorded is not None and term is not None:
                    assert term == recorded[0], (
                        f"{region}: committed index {index} term {term} "
                        f"!= ledger term {recorded[0]}"
                    )

    @invariant()
    def monotonic_commit(self) -> None:
        for region in REGIONS:
            assert self.cluster.nodes[region].commit_regressions == 0


TestConsensusStateful = ConsensusMachine.TestCase
TestConsensusStateful.settings = settings(
    max_examples=15,
    stateful_step_count=30,
    deadline=None,
    derandomize=True,  # fixed seed: CI runs are reproducible
)
