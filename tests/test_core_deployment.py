"""Tests for the CubrickDeployment facade."""

import pytest

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.core.fanout import ShardingMode
from repro.cubrick.partitioning import PartitioningPolicy
from repro.cubrick.query import AggFunc, Aggregation, Filter, Query
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.errors import TableNotFoundError
from tests.conftest import make_rows


def count_query(table="events"):
    return Query.build(table, [Aggregation(AggFunc.COUNT, "clicks")])


class TestTableLifecycle:
    def test_create_materializes_in_all_regions(self, tiny_deployment):
        shards = tiny_deployment.directory.shards_for_table("events")
        for region, sm in tiny_deployment.sm_servers.items():
            for shard in shards:
                owner = sm.discovery.resolve_authoritative(shard)
                node = sm.app_server(owner)
                assert "events" in node.tables_stored()

    def test_partition_count_respects_policy(self, tiny_deployment):
        # 6 hosts per region, partial mode -> min(8, 6) = 6 partitions
        assert tiny_deployment.catalog.get("events").num_partitions == 6

    def test_full_sharding_spans_region(self, events_schema):
        deployment = CubrickDeployment(
            DeploymentConfig(
                seed=1, regions=1, racks_per_region=2, hosts_per_rack=3,
                mode=ShardingMode.FULL,
            )
        )
        deployment.create_table(events_schema)
        assert deployment.catalog.get("events").num_partitions == 6
        deployment.load("events", make_rows(events_schema, 300, seed=2))
        assert deployment.table_fanout("events") == 6

    def test_drop_table_releases_shards(self, tiny_deployment):
        shards = set(tiny_deployment.directory.shards_for_table("events"))
        tiny_deployment.drop_table("events")
        assert "events" not in tiny_deployment.catalog
        for sm in tiny_deployment.sm_servers.values():
            for shard in shards:
                assert not sm.has_shard(shard)

    def test_load_replicates_to_every_region(self, tiny_deployment):
        for region, coordinator in tiny_deployment.coordinators.items():
            result = coordinator.execute(count_query())
            assert result.scalar() == 500.0

    def test_unknown_table_fanout_raises(self, tiny_deployment):
        with pytest.raises(TableNotFoundError):
            tiny_deployment.table_fanout("missing")

    def test_create_failure_rolls_back(self, events_schema):
        deployment = CubrickDeployment(
            DeploymentConfig(seed=1, regions=1, racks_per_region=1,
                             hosts_per_rack=2)
        )
        # More partitions than the SM key space can take will fail:
        # simulate by requesting an absurd partition count per host
        # capacity. Easier: monkeypatch _materialize_table to raise.
        original = deployment._materialize_table

        def boom(table, shards):
            raise RuntimeError("injected")

        deployment._materialize_table = boom
        with pytest.raises(RuntimeError):
            deployment.create_table(events_schema)
        deployment._materialize_table = original
        # Name is reusable: nothing was left behind.
        deployment.create_table(events_schema)


class TestQueries:
    def test_filtered_query_end_to_end(self, tiny_deployment, events_schema):
        rows = make_rows(events_schema, 500, seed=7)
        expected = sum(r["clicks"] for r in rows if 0 <= r["day"] <= 6)
        result = tiny_deployment.query(
            Query.build(
                "events",
                [Aggregation(AggFunc.SUM, "clicks")],
                filters=[Filter.between("day", 0, 6)],
            )
        )
        assert result.scalar() == pytest.approx(expected)

    def test_multiple_tables_coexist(self, tiny_deployment):
        other = TableSchema.build(
            "metrics", [Dimension("host", 50)], [Metric("cpu")]
        )
        tiny_deployment.create_table(other)
        tiny_deployment.load(
            "metrics", [{"host": i % 50, "cpu": 1.0} for i in range(100)]
        )
        # Let the new shard mappings propagate through SMC.
        tiny_deployment.simulator.run_until(tiny_deployment.simulator.now + 30.0)
        result = tiny_deployment.query(
            Query.build("metrics", [Aggregation(AggFunc.COUNT, "cpu")])
        )
        assert result.scalar() == 100.0
        # The first table is unaffected.
        assert tiny_deployment.query(count_query()).scalar() == 500.0


class TestRepartitioning:
    def _deployment(self):
        return CubrickDeployment(
            DeploymentConfig(
                seed=5, regions=2, racks_per_region=2, hosts_per_rack=8,
                partitioning=PartitioningPolicy(
                    max_rows_per_partition=100, min_rows_per_partition=5
                ),
            )
        )

    def test_growth_preserves_data(self, events_schema):
        deployment = self._deployment()
        deployment.create_table(events_schema)
        rows = make_rows(events_schema, 1500, seed=3)
        deployment.load("events", rows)
        before = deployment.catalog.get("events").num_partitions
        assert deployment.maybe_repartition("events")
        after = deployment.catalog.get("events").num_partitions
        # Doubling target, capped by per-region host headroom (75% of 16).
        assert before < after <= before * 2
        assert after == 12
        assert deployment.catalog.get("events").generation == 1
        deployment.simulator.run_until(60.0)
        result = deployment.query(count_query())
        assert result.scalar() == 1500.0

    def test_no_repartition_when_in_band(self, events_schema):
        deployment = self._deployment()
        deployment.create_table(events_schema)
        deployment.load("events", make_rows(events_schema, 400, seed=3))
        assert not deployment.maybe_repartition("events")

    def test_failed_repartition_rolls_back(self, events_schema):
        """A re-partition that cannot place its new layout must restore
        the old layout with all data intact."""
        deployment = self._deployment()
        deployment.create_table(events_schema)
        rows = make_rows(events_schema, 1500, seed=3)
        deployment.load("events", rows)
        before = deployment.catalog.get("events").num_partitions

        original = deployment._materialize_table
        calls = {"n": 0}

        def flaky(table, shards):
            calls["n"] += 1
            if calls["n"] == 1:
                # Simulate placement failure mid-shuffle; the rollback's
                # second call must succeed.
                raise RuntimeError("injected placement failure")
            return original(table, shards)

        deployment._materialize_table = flaky
        with pytest.raises(RuntimeError):
            deployment.maybe_repartition("events")
        deployment._materialize_table = original

        info = deployment.catalog.get("events")
        assert info.num_partitions == before
        deployment.simulator.run_until(60.0)
        result = deployment.query(count_query())
        assert result.scalar() == 1500.0
        # And a later, healthy re-partition still works.
        assert deployment.maybe_repartition("events")
        deployment.simulator.run_until(120.0)
        assert deployment.query(count_query()).scalar() == 1500.0

    def test_proxy_cache_handles_new_partition_count(self, events_schema):
        deployment = self._deployment()
        deployment.create_table(events_schema)
        deployment.load("events", make_rows(events_schema, 1500, seed=3))
        deployment.simulator.run_until(30.0)
        deployment.query(count_query())  # seeds the locator cache
        deployment.maybe_repartition("events")
        deployment.simulator.run_until(60.0)
        result = deployment.query(count_query())
        assert result.scalar() == 1500.0
        assert (
            deployment.proxy.locator.cached_count("events")
            == deployment.catalog.get("events").num_partitions
        )


class TestOperations:
    def test_background_maintenance_runs(self, events_schema):
        deployment = CubrickDeployment(
            DeploymentConfig(seed=2, regions=1, racks_per_region=2,
                             hosts_per_rack=3)
        )
        deployment.create_table(events_schema)
        deployment.load("events", make_rows(events_schema, 300, seed=1))
        deployment.start_background_maintenance(until=3600.0)
        deployment.simulator.run_until(3600.0)
        # SM collected metrics for every node hosting data.
        sm = deployment.sm_servers["region0"]
        loads = [
            sm.metrics.host_load(h) for h in sm.registered_hosts()
        ]
        assert sum(loads) > 0

    def test_drain_via_automation_moves_shards(self, events_schema):
        from repro.cluster.automation import MaintenanceKind

        # More hosts than partitions so collision-free targets exist.
        deployment = CubrickDeployment(
            DeploymentConfig(seed=4, regions=2, racks_per_region=2,
                             hosts_per_rack=8)
        )
        deployment.create_table(events_schema)
        deployment.load("events", make_rows(events_schema, 500, seed=7))
        deployment.simulator.run_until(30.0)
        sm = deployment.sm_servers["region0"]
        victim = next(
            h for h in sm.registered_hosts() if sm.shards_on_host(h)
        )
        request = deployment.automation.request_maintenance(
            MaintenanceKind.RACK_MAINTENANCE, [victim], duration=600.0
        )
        assert request.approved
        assert sm.shards_on_host(victim) == set()
        # Queries still work from region0 after the drain.
        deployment.simulator.run_until(deployment.simulator.now + 60.0)
        result = deployment.coordinators["region0"].execute(count_query())
        assert result.scalar() == 500.0

    def test_drain_refused_when_all_targets_collide(self, tiny_deployment):
        """With as many partitions as hosts, every target would create a
        shard collision, so the drain must leave the shard in place."""
        sm = tiny_deployment.sm_servers["region0"]
        victim = next(
            h for h in sm.registered_hosts() if sm.shards_on_host(h)
        )
        before = set(sm.shards_on_host(victim))
        moved = sm.drain_host(victim)
        assert moved == 0
        assert sm.shards_on_host(victim) == before
