"""Tests for the scalability-wall model and the fan-out policy."""

import numpy as np
import pytest

from repro.core.fanout import FanoutPolicy, ShardingMode, SlaPlanner
from repro.core.wall import (
    PAPER_FAILURE_PROBABILITY,
    PAPER_SLA,
    WallAnalysis,
    monte_carlo_success_ratio,
    query_success_ratio,
    required_failure_probability,
    scalability_wall,
    success_curve,
)
from repro.cubrick.partitioning import PartitioningPolicy
from repro.errors import ConfigurationError


class TestSuccessRatio:
    def test_closed_form(self):
        assert query_success_ratio(0, 0.01) == 1.0
        assert query_success_ratio(1, 0.01) == pytest.approx(0.99)
        assert query_success_ratio(10, 0.01) == pytest.approx(0.99 ** 10)

    def test_monotonically_decreasing_in_fanout(self):
        values = [query_success_ratio(n, 1e-3) for n in range(0, 500, 25)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_monotonically_decreasing_in_probability(self):
        probabilities = [1e-5, 1e-4, 1e-3, 1e-2]
        values = [query_success_ratio(100, p) for p in probabilities]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_curve_matches_scalar(self):
        fanouts = [1, 10, 100, 1000]
        curve = success_curve(fanouts, 1e-4)
        for fanout, value in zip(fanouts, curve):
            assert value == pytest.approx(query_success_ratio(fanout, 1e-4))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            query_success_ratio(-1, 0.01)
        with pytest.raises(ConfigurationError):
            query_success_ratio(10, 1.5)
        with pytest.raises(ConfigurationError):
            success_curve([-1], 0.01)


class TestWall:
    def test_paper_headline_wall_is_100(self):
        """Figure 1: p=0.01%, SLA 99% -> wall at about 100 servers."""
        assert scalability_wall(PAPER_FAILURE_PROBABILITY, PAPER_SLA) == 100

    def test_wall_boundary_is_tight(self):
        wall = scalability_wall(1e-4, 0.99)
        assert query_success_ratio(wall, 1e-4) >= 0.99
        assert query_success_ratio(wall + 1, 1e-4) < 0.99

    def test_wall_shrinks_with_failure_probability(self):
        """Figure 2's ordering: less reliable servers -> earlier wall."""
        walls = [scalability_wall(p, 0.99) for p in (1e-5, 1e-4, 1e-3)]
        assert walls[0] > walls[1] > walls[2]

    def test_wall_shrinks_with_stricter_sla(self):
        assert scalability_wall(1e-4, 0.999) < scalability_wall(1e-4, 0.99)

    def test_no_failures_no_wall(self):
        assert scalability_wall(0.0, 0.99) > 10 ** 15

    def test_required_failure_probability_inverts_wall(self):
        p = required_failure_probability(1000, 0.99)
        assert query_success_ratio(1000, p) == pytest.approx(0.99)
        assert scalability_wall(p, 0.99) >= 999

    def test_analysis_summary(self):
        analysis = WallAnalysis.compute(1e-4, 0.99)
        assert analysis.wall_fanout == 100
        assert analysis.success_at_wall >= 0.99
        assert analysis.success_at_twice_wall < 0.99

    def test_invalid_sla_rejected(self):
        with pytest.raises(ConfigurationError):
            scalability_wall(1e-4, 1.0)


class TestMonteCarlo:
    def test_matches_closed_form(self):
        rng = np.random.default_rng(0)
        for fanout, p in [(10, 1e-2), (100, 1e-3)]:
            empirical = monte_carlo_success_ratio(
                fanout, p, trials=200_000, rng=rng
            )
            assert empirical == pytest.approx(
                query_success_ratio(fanout, p), abs=0.005
            )

    def test_zero_fanout(self):
        assert monte_carlo_success_ratio(0, 0.5, trials=10) == 1.0

    def test_invalid_trials_rejected(self):
        with pytest.raises(ConfigurationError):
            monte_carlo_success_ratio(1, 0.1, trials=0)


class TestFanoutPolicy:
    def test_full_sharding_spans_cluster(self):
        policy = FanoutPolicy(mode=ShardingMode.FULL)
        assert policy.partitions_for_new_table(500) == 500

    def test_partial_sharding_starts_at_eight(self):
        policy = FanoutPolicy(mode=ShardingMode.PARTIAL)
        assert policy.partitions_for_new_table(500) == 8

    def test_partial_grows_with_expected_size(self):
        policy = FanoutPolicy(
            mode=ShardingMode.PARTIAL,
            partitioning=PartitioningPolicy(
                max_rows_per_partition=1000, min_rows_per_partition=10
            ),
        )
        assert policy.partitions_for_new_table(500, expected_rows=500) == 8
        assert policy.partitions_for_new_table(500, expected_rows=20_000) == 32

    def test_partial_capped_by_max_partitions(self):
        policy = FanoutPolicy(
            mode=ShardingMode.PARTIAL,
            partitioning=PartitioningPolicy(
                max_rows_per_partition=10, min_rows_per_partition=1,
                max_partitions=64,
            ),
        )
        assert policy.partitions_for_new_table(500, expected_rows=10 ** 9) == 64

    def test_partial_capped_by_cluster_size(self):
        policy = FanoutPolicy(mode=ShardingMode.PARTIAL)
        assert policy.partitions_for_new_table(4) == 4

    def test_invalid_cluster_size_rejected(self):
        with pytest.raises(ConfigurationError):
            FanoutPolicy().partitions_for_new_table(0)


class TestSlaPlanner:
    def test_max_safe_fanout_is_the_wall(self):
        planner = SlaPlanner(failure_probability=1e-4, sla=0.99)
        assert planner.max_safe_fanout == 100

    def test_meets_sla(self):
        planner = SlaPlanner(failure_probability=1e-4, sla=0.99)
        assert planner.meets_sla(100)
        assert not planner.meets_sla(101)

    def test_headroom(self):
        planner = SlaPlanner(failure_probability=1e-4, sla=0.99)
        assert planner.headroom(8) == 92
        assert planner.headroom(150) < 0

    def test_partial_sharding_survives_scale_out(self):
        """The paper's core claim, in policy terms: a partially-sharded
        table's fan-out (8) meets the SLA regardless of cluster size,
        while full sharding violates it past the wall."""
        planner = SlaPlanner(failure_probability=1e-4, sla=0.99)
        partial = FanoutPolicy(mode=ShardingMode.PARTIAL)
        full = FanoutPolicy(mode=ShardingMode.FULL)
        for cluster_size in (50, 100, 1000, 10_000):
            assert planner.meets_sla(
                partial.partitions_for_new_table(cluster_size)
            )
        assert planner.meets_sla(full.partitions_for_new_table(50))
        assert not planner.meets_sla(full.partitions_for_new_table(1000))
