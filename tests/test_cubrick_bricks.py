"""Tests for bricks: storage, hotness counters, real compression."""

import numpy as np
import pytest

from repro.cubrick.bricks import Brick


def make_brick(rows=100, seed=0) -> Brick:
    brick = Brick(0, ("day",), ("value",))
    rng = np.random.default_rng(seed)
    for __ in range(rows):
        brick.append({"day": int(rng.integers(10)), "value": 1.0})
    return brick


class TestAppendAndRead:
    def test_append_and_columns(self):
        brick = Brick(5, ("d",), ("m",))
        brick.append({"d": 1, "m": 2.5})
        brick.append({"d": 3, "m": 4.5})
        arrays = brick.columns()
        assert arrays["d"].tolist() == [1, 3]
        assert arrays["m"].tolist() == [2.5, 4.5]
        assert brick.rows == 2

    def test_column_dtypes(self):
        brick = make_brick(rows=5)
        arrays = brick.columns()
        assert arrays["day"].dtype == np.int64
        assert arrays["value"].dtype == np.float64

    def test_bulk_append(self):
        brick = Brick(0, ("d",), ("m",))
        brick.append_columns(
            {"d": np.array([1, 2, 3]), "m": np.array([1.0, 2.0, 3.0])}
        )
        assert brick.rows == 3
        assert brick.columns()["d"].tolist() == [1, 2, 3]

    def test_bulk_append_ragged_rejected(self):
        brick = Brick(0, ("d",), ("m",))
        with pytest.raises(Exception):
            brick.append_columns(
                {"d": np.array([1, 2]), "m": np.array([1.0])}
            )

    def test_append_after_read_invalidates_cache(self):
        brick = Brick(0, ("d",), ("m",))
        brick.append({"d": 1, "m": 1.0})
        first = brick.columns()
        brick.append({"d": 2, "m": 2.0})
        assert brick.columns()["d"].tolist() == [1, 2]
        assert len(first["d"]) == 1  # old snapshot untouched


class TestHotness:
    def test_touch_increments(self):
        brick = make_brick()
        brick.touch()
        brick.touch()
        assert brick.hotness == 2.0

    def test_decay_skips_recently_touched(self, rng):
        brick = make_brick()
        brick.touch()
        brick.decay(rng, probability=1.0)
        assert brick.hotness == 1.0  # protected this round
        brick.decay(rng, probability=1.0, factor=0.5)
        assert brick.hotness == 0.5  # decays next round

    def test_decay_is_stochastic(self):
        rng = np.random.default_rng(0)
        decayed = 0
        for __ in range(1000):
            brick = Brick(0, ("d",), ("m",))
            brick.hotness = 4.0
            brick.decay(rng, probability=0.3, factor=0.5)
            if brick.hotness < 4.0:
                decayed += 1
        assert 250 < decayed < 350

    def test_decay_floors_to_zero(self, rng):
        brick = make_brick()
        brick.hotness = 0.001
        brick.decay(rng, probability=1.0, factor=0.5)
        assert brick.hotness == 0.0


class TestCompression:
    def test_compress_reduces_footprint(self):
        brick = make_brick(rows=2000)
        before = brick.footprint_bytes()
        brick.compress()
        assert brick.is_compressed
        assert brick.footprint_bytes() < before
        assert brick.compression_ratio() > 1.0

    def test_decompressed_bytes_stable_under_compression(self):
        """The generation-2 LB metric must not move when state changes."""
        brick = make_brick(rows=500)
        logical = brick.decompressed_bytes()
        brick.compress()
        assert brick.decompressed_bytes() == logical
        brick.decompress()
        assert brick.decompressed_bytes() == logical

    def test_data_survives_compression_roundtrip(self):
        brick = make_brick(rows=300, seed=3)
        original = {k: v.copy() for k, v in brick.columns().items()}
        brick.compress()
        brick.decompress()
        for name, values in original.items():
            assert (brick.columns()[name] == values).all()

    def test_read_transparently_decompresses(self):
        brick = make_brick(rows=100)
        expected = brick.columns()["day"].sum()
        brick.compress()
        assert brick.columns()["day"].sum() == expected
        assert not brick.is_compressed  # read decompressed it

    def test_append_to_compressed_brick(self):
        brick = make_brick(rows=10)
        brick.compress()
        brick.append({"day": 5, "value": 9.0})
        assert brick.rows == 11
        assert brick.columns()["value"][-1] == 9.0

    def test_compress_is_idempotent(self):
        brick = make_brick(rows=50)
        brick.compress()
        footprint = brick.footprint_bytes()
        brick.compress()
        assert brick.footprint_bytes() == footprint

    def test_ratio_is_one_when_uncompressed(self):
        assert make_brick().compression_ratio() == 1.0

    def test_stats_snapshot(self):
        brick = make_brick(rows=42)
        brick.touch()
        stats = brick.stats()
        assert stats.rows == 42
        assert stats.hotness == 1.0
        assert not stats.compressed
        assert stats.footprint_bytes == stats.decompressed_bytes

    def test_decompressed_bytes_formula(self):
        brick = Brick(0, ("a", "b"), ("m",))
        for __ in range(10):
            brick.append({"a": 1, "b": 2, "m": 3.0})
        # 10 rows x (2 dims x 8B + 1 metric x 8B) = 240 bytes
        assert brick.decompressed_bytes() == 240
