"""Tests for adaptive compression (memory monitor) and dynamic partitioning."""

import numpy as np
import pytest

from repro.cubrick.bricks import Brick
from repro.cubrick.compression import (
    MemoryBudget,
    MemoryMonitor,
    classify_hot_cold,
    decay_all,
)
from repro.cubrick.partitioning import (
    PartitioningPolicy,
    partition_of,
    plan_repartition,
    skew,
)
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.errors import ConfigurationError


def make_bricks(count, rows_each=200, hotness=None):
    bricks = []
    rng = np.random.default_rng(1)
    for i in range(count):
        brick = Brick(i, ("d",), ("m",))
        for __ in range(rows_each):
            brick.append({"d": int(rng.integers(100)), "m": float(rng.random())})
        if hotness is not None:
            brick.hotness = hotness[i]
        bricks.append(brick)
    return bricks


class TestMemoryBudget:
    def test_watermarks(self):
        budget = MemoryBudget(
            capacity_bytes=1000, high_watermark=0.9, low_watermark=0.5
        )
        assert budget.high_bytes == 900
        assert budget.low_bytes == 500

    def test_invalid_watermarks_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryBudget(capacity_bytes=1000, high_watermark=0.3,
                         low_watermark=0.8)
        with pytest.raises(ConfigurationError):
            MemoryBudget(capacity_bytes=0)


class TestMemoryMonitor:
    def test_pressure_compresses_coldest_first(self):
        bricks = make_bricks(4, hotness=[10.0, 0.0, 5.0, 1.0])
        footprint = sum(b.footprint_bytes() for b in bricks)
        budget = MemoryBudget(
            capacity_bytes=int(footprint * 0.9),
            high_watermark=0.8,
            low_watermark=0.7,
        )
        report = MemoryMonitor(budget).run(bricks)
        assert report.compressed >= 1
        compressed_ids = [b.brick_id for b in bricks if b.is_compressed]
        # Brick 1 (coldest) must be the first compressed.
        assert 1 in compressed_ids
        # The hottest brick should be compressed only if everything was.
        if len(compressed_ids) < 4:
            assert 0 not in compressed_ids

    def test_surplus_decompresses_hottest_first(self):
        bricks = make_bricks(4, hotness=[10.0, 0.0, 5.0, 1.0])
        for brick in bricks:
            brick.compress()
        total_decompressed = sum(b.decompressed_bytes() for b in bricks)
        budget = MemoryBudget(
            capacity_bytes=total_decompressed * 10,
            high_watermark=0.9,
            low_watermark=0.8,
        )
        report = MemoryMonitor(budget).run(bricks)
        assert report.decompressed == 4  # plenty of room: all decompressed

    def test_partial_decompression_respects_watermark(self):
        bricks = make_bricks(4, hotness=[10.0, 0.0, 5.0, 1.0])
        for brick in bricks:
            brick.compress()
        gains = sorted(
            b.decompressed_bytes() - b.footprint_bytes() for b in bricks
        )
        compressed_total = sum(b.footprint_bytes() for b in bricks)
        # Room for exactly one decompression gain above current footprint.
        budget = MemoryBudget(
            capacity_bytes=int(compressed_total + gains[-1] * 1.1),
            high_watermark=1.0,
            low_watermark=0.99,
        )
        MemoryMonitor(budget).run(bricks)
        decompressed = [b for b in bricks if not b.is_compressed]
        assert decompressed  # surplus was used
        assert len(decompressed) < len(bricks)  # but bounded by watermark
        # And it picked the hottest first.
        assert bricks[0] in decompressed
        # The watermark was respected.
        assert sum(b.footprint_bytes() for b in bricks) <= budget.high_bytes

    def test_steady_state_no_churn(self):
        bricks = make_bricks(4)
        footprint = sum(b.footprint_bytes() for b in bricks)
        budget = MemoryBudget(
            capacity_bytes=footprint * 2, high_watermark=0.9, low_watermark=0.1
        )
        report = MemoryMonitor(budget).run(bricks)
        assert report.compressed == 0
        assert report.decompressed == 0
        assert report.footprint_before == report.footprint_after

    def test_report_footprint_accounting(self):
        bricks = make_bricks(3)
        footprint = sum(b.footprint_bytes() for b in bricks)
        budget = MemoryBudget(capacity_bytes=int(footprint * 0.5))
        report = MemoryMonitor(budget).run(bricks)
        assert report.footprint_after == sum(
            b.footprint_bytes() for b in bricks
        )
        assert report.footprint_after < report.footprint_before


class TestHotColdHelpers:
    def test_classify(self):
        bricks = make_bricks(3, hotness=[0.0, 2.0, 0.5])
        hot, cold = classify_hot_cold(bricks, hot_threshold=1.0)
        assert (hot, cold) == (1, 2)

    def test_decay_all_returns_count(self, rng):
        bricks = make_bricks(5)
        assert decay_all(bricks, rng) == 5


class TestPartitioningPolicy:
    def test_default_starts_at_eight(self):
        assert PartitioningPolicy().initial_partitions == 8

    def test_growth_doubles(self):
        policy = PartitioningPolicy(max_rows_per_partition=100, min_rows_per_partition=10)
        assert policy.next_partition_count(8, 150, 800) == 16

    def test_growth_capped(self):
        policy = PartitioningPolicy(max_rows_per_partition=100, min_rows_per_partition=10, max_partitions=64)
        assert policy.next_partition_count(64, 1000, 64000) == 64

    def test_shrink_halves(self):
        policy = PartitioningPolicy(
            max_rows_per_partition=1000, min_rows_per_partition=100
        )
        assert policy.next_partition_count(32, 50, 32 * 50) == 16

    def test_never_shrinks_below_initial(self):
        policy = PartitioningPolicy(
            max_rows_per_partition=1000, min_rows_per_partition=100
        )
        assert policy.next_partition_count(8, 1, 8) == 8

    def test_stable_in_band(self):
        policy = PartitioningPolicy(
            max_rows_per_partition=1000, min_rows_per_partition=100
        )
        assert policy.next_partition_count(16, 500, 16 * 500) == 16

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitioningPolicy(initial_partitions=0)
        with pytest.raises(ConfigurationError):
            PartitioningPolicy(
                max_rows_per_partition=10, min_rows_per_partition=20
            )
        with pytest.raises(ConfigurationError):
            PartitioningPolicy(max_partitions=4)

    def test_growth_clamps_on_overshoot(self):
        # Doubling 48 would overshoot a cap of 64; the policy must land
        # exactly on the cap, not at 96.
        policy = PartitioningPolicy(
            max_rows_per_partition=100, min_rows_per_partition=10,
            max_partitions=64,
        )
        assert policy.next_partition_count(48, 500, 48 * 500) == 64

    def test_overloaded_at_cap_never_shrinks(self):
        # Regression: a skewed table at max_partitions whose hottest
        # partition is over the growth threshold but whose *average*
        # is under the shrink threshold used to fall through into the
        # shrink branch and get halved — making the hot partition worse.
        policy = PartitioningPolicy(
            max_rows_per_partition=100, min_rows_per_partition=10,
            max_partitions=64,
        )
        # max partition has 5000 rows, but total 320 → avg 5 < min 10.
        assert policy.next_partition_count(64, 5000, 320) == 64

    def test_shrink_clamps_to_initial_from_odd_count(self):
        # 12 // 2 = 6 would undershoot initial=8; must clamp at 8.
        policy = PartitioningPolicy(
            initial_partitions=8,
            max_rows_per_partition=1000, min_rows_per_partition=100,
        )
        assert policy.next_partition_count(12, 50, 12 * 50) == 8

    def test_below_initial_never_shrinks_further(self):
        # A table created with fewer partitions than the policy initial
        # (e.g. policy changed after creation) must not shrink at all.
        policy = PartitioningPolicy(
            initial_partitions=8,
            max_rows_per_partition=1000, min_rows_per_partition=100,
        )
        assert policy.next_partition_count(4, 1, 4) == 4

    def test_above_cap_never_grows_further(self):
        # Likewise a table already above the cap stays put even when
        # overloaded: growth is gated on current < max_partitions.
        policy = PartitioningPolicy(
            max_rows_per_partition=100, min_rows_per_partition=10,
            max_partitions=64,
        )
        assert policy.next_partition_count(128, 5000, 128 * 5000) == 128

    def test_boundary_rows_do_not_trigger(self):
        # Exactly at the thresholds: no growth at == max rows, no
        # shrink at average == min rows.
        policy = PartitioningPolicy(
            max_rows_per_partition=100, min_rows_per_partition=10,
        )
        assert policy.next_partition_count(16, 100, 16 * 100) == 16
        assert policy.next_partition_count(16, 10, 16 * 10) == 16

    def test_invalid_current_rejected(self):
        policy = PartitioningPolicy()
        with pytest.raises(ConfigurationError):
            policy.next_partition_count(0, 10, 10)


class TestRecordAssignment:
    @pytest.fixture
    def schema(self):
        return TableSchema.build(
            "t", [Dimension("a", 1000), Dimension("b", 1000)], [Metric("m")]
        )

    def test_deterministic(self, schema):
        row = {"a": 5, "b": 7, "m": 1.0}
        assert partition_of(schema, row, 8) == partition_of(schema, row, 8)

    def test_in_range(self, schema, rng):
        for __ in range(200):
            row = {"a": int(rng.integers(1000)), "b": int(rng.integers(1000))}
            assert 0 <= partition_of(schema, row, 8) < 8

    def test_low_skew(self, schema, rng):
        counts = [0] * 8
        for __ in range(8000):
            row = {"a": int(rng.integers(1000)), "b": int(rng.integers(1000))}
            counts[partition_of(schema, row, 8)] += 1
        assert skew(counts) < 1.15

    def test_plan_repartition_preserves_rows(self, schema, rng):
        rows = [
            {"a": int(rng.integers(1000)), "b": int(rng.integers(1000)), "m": 1.0}
            for __ in range(500)
        ]
        plan = plan_repartition(schema, rows, 16)
        assert sum(len(v) for v in plan.values()) == 500
        assert set(plan) == set(range(16))
        for index, chunk in plan.items():
            for row in chunk:
                assert partition_of(schema, row, 16) == index

    def test_skew_edge_cases(self):
        assert skew([]) == 1.0
        assert skew([0, 0]) == 1.0
        assert skew([10, 10]) == 1.0
        assert skew([30, 10]) == 1.5

    def test_invalid_partition_count_rejected(self, schema):
        with pytest.raises(ConfigurationError):
            partition_of(schema, {"a": 1, "b": 1}, 0)
