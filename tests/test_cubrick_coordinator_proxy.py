"""Tests for the region coordinator and the Cubrick proxy."""

import pytest

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.errors import (
    AdmissionControlError,
    QueryFailedError,
    RegionUnavailableError,
)
from repro.workloads.fanout_experiment import probe_schema
from repro.workloads.queries import simple_probe_query
from tests.conftest import make_rows


def probe(deployment, table="events"):
    return Query.build(table, [Aggregation(AggFunc.COUNT, "clicks")])


class TestCoordinator:
    def test_partition_hosts_covers_all_partitions(self, tiny_deployment):
        coordinator = tiny_deployment.coordinators["region0"]
        hosts = coordinator.partition_hosts("events")
        indexes = sorted(i for idxs in hosts.values() for i in idxs)
        assert indexes == list(
            range(tiny_deployment.catalog.get("events").num_partitions)
        )

    def test_execute_merges_all_partitions(self, tiny_deployment):
        coordinator = tiny_deployment.coordinators["region0"]
        result = coordinator.execute(probe(tiny_deployment))
        assert result.scalar() == 500.0
        assert result.metadata["fanout"] >= 1
        assert result.metadata["latency"] > 0

    def test_execution_diagnostics_recorded(self, tiny_deployment):
        coordinator = tiny_deployment.coordinators["region0"]
        coordinator.execute(probe(tiny_deployment))
        execution = coordinator.executions[-1]
        assert execution.succeeded
        assert len(execution.per_host_latency) == execution.fanout
        assert execution.latency >= max(execution.per_host_latency.values())

    def test_down_host_fails_query(self, tiny_deployment):
        coordinator = tiny_deployment.coordinators["region0"]
        hosts = coordinator.partition_hosts("events")
        victim = sorted(hosts)[0]
        tiny_deployment.cluster.host(victim).fail(permanent=False)
        with pytest.raises(QueryFailedError) as excinfo:
            coordinator.execute(probe(tiny_deployment))
        assert excinfo.value.host == victim
        assert excinfo.value.retryable
        tiny_deployment.cluster.host(victim).recover()

    def test_extra_hops_add_latency(self, tiny_deployment):
        coordinator = tiny_deployment.coordinators["region0"]
        base = coordinator.execute(probe(tiny_deployment), extra_hops=0)
        hop = coordinator.execute(probe(tiny_deployment), extra_hops=3)
        # Deterministic part of the latency grows by 3 * HOP_COST; the
        # sampled part varies, so compare against the recorded overhead.
        assert hop.metadata["latency"] >= 3 * coordinator.HOP_COST

    def test_success_ratio_tracks_failures(self, tiny_deployment):
        coordinator = tiny_deployment.coordinators["region0"]
        coordinator.execute(probe(tiny_deployment))
        hosts = coordinator.partition_hosts("events")
        victim = sorted(hosts)[0]
        tiny_deployment.cluster.host(victim).fail(permanent=False)
        with pytest.raises(QueryFailedError):
            coordinator.execute(probe(tiny_deployment))
        assert 0.0 < coordinator.success_ratio() < 1.0
        tiny_deployment.cluster.host(victim).recover()


class TestProxy:
    def test_retry_in_other_region(self, tiny_deployment):
        coordinator = tiny_deployment.coordinators["region0"]
        hosts = coordinator.partition_hosts("events")
        victim = sorted(hosts)[0]
        tiny_deployment.cluster.host(victim).fail(permanent=False)
        result = tiny_deployment.query(probe(tiny_deployment))
        assert result.scalar() == 500.0
        assert result.metadata["region"] == "region1"
        assert result.metadata["attempts"] == 2
        assert victim in tiny_deployment.proxy.blacklisted_hosts()
        tiny_deployment.cluster.host(victim).recover()

    def test_all_regions_failing_raises(self, tiny_deployment):
        victims = []
        for region, coordinator in tiny_deployment.coordinators.items():
            hosts = coordinator.partition_hosts("events")
            victim = sorted(hosts)[0]
            tiny_deployment.cluster.host(victim).fail(permanent=False)
            victims.append(victim)
        with pytest.raises(QueryFailedError):
            tiny_deployment.query(probe(tiny_deployment))
        for victim in victims:
            tiny_deployment.cluster.host(victim).recover()

    def test_region_drain_routes_elsewhere(self, tiny_deployment):
        tiny_deployment.cluster.set_region_available("region0", False)
        result = tiny_deployment.query(probe(tiny_deployment))
        assert result.metadata["region"] == "region1"
        assert result.metadata["attempts"] == 1
        tiny_deployment.cluster.set_region_available("region0", True)

    def test_no_regions_available_raises(self, tiny_deployment):
        for region in tiny_deployment.region_names():
            tiny_deployment.cluster.set_region_available(region, False)
        with pytest.raises(RegionUnavailableError):
            tiny_deployment.query(probe(tiny_deployment))
        for region in tiny_deployment.region_names():
            tiny_deployment.cluster.set_region_available(region, True)

    def test_admission_control_limits_qps(self, events_schema):
        deployment = CubrickDeployment(
            DeploymentConfig(seed=1, regions=1, racks_per_region=2,
                             hosts_per_rack=3)
        )
        deployment.create_table(events_schema)
        deployment.load("events", make_rows(events_schema, 50, seed=1))
        deployment.simulator.run_until(30.0)
        deployment.proxy.admission.max_qps = 5.0
        query = probe(deployment)
        successes, rejections = 0, 0
        for __ in range(20):  # all at the same virtual instant
            try:
                deployment.query(query)
                successes += 1
            except AdmissionControlError:
                rejections += 1
        assert successes == 5
        assert rejections == 15

    def test_query_log_records_everything(self, tiny_deployment):
        before = len(tiny_deployment.proxy.query_log)
        tiny_deployment.query(probe(tiny_deployment))
        log = tiny_deployment.proxy.query_log
        assert len(log) == before + 1
        assert log[-1].succeeded
        assert log[-1].table == "events"
        assert log[-1].latency is not None

    def test_partition_cache_updated_from_metadata(self, tiny_deployment):
        tiny_deployment.query(probe(tiny_deployment))
        cached = tiny_deployment.proxy.locator.cached_count("events")
        assert cached == tiny_deployment.catalog.get("events").num_partitions

    def test_success_ratio_accounting(self, tiny_deployment):
        tiny_deployment.query(probe(tiny_deployment))
        assert 0.0 < tiny_deployment.proxy.success_ratio() <= 1.0
        assert (
            tiny_deployment.proxy.first_try_success_ratio()
            <= tiny_deployment.proxy.success_ratio()
        )

    def test_blacklist_expires(self, tiny_deployment):
        proxy = tiny_deployment.proxy
        proxy.blacklist_host("some-host")
        assert proxy.is_blacklisted("some-host")
        tiny_deployment.simulator.run_until(
            tiny_deployment.simulator.now + proxy.blacklist_ttl + 1.0
        )
        assert not proxy.is_blacklisted("some-host")
