"""Tests for the Granular Partitioning index."""

import pytest

from repro.cubrick.granular import GranularIndex
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.errors import QueryError, SchemaError


@pytest.fixture
def index(events_schema) -> GranularIndex:
    # day: 30/7 -> 5 buckets; country: 100/25 -> 4 buckets
    return GranularIndex(events_schema)


class TestBrickIds:
    def test_total_bricks(self, index):
        assert index.total_bricks == 5 * 4

    def test_row_major_composition(self, index):
        # day bucket 0, country bucket 0 -> brick 0
        assert index.brick_of({"day": 0, "country": 0}) == 0
        # country varies fastest (last dimension)
        assert index.brick_of({"day": 0, "country": 25}) == 1
        assert index.brick_of({"day": 7, "country": 0}) == 4

    def test_coordinates_roundtrip(self, index):
        for brick_id in range(index.total_bricks):
            coords = index.brick_coordinates(brick_id)
            # Reconstruct a representative row from bucket coordinates.
            row = {"day": coords[0] * 7, "country": coords[1] * 25}
            assert index.brick_of(row) == brick_id

    def test_missing_dimension_rejected(self, index):
        with pytest.raises(SchemaError):
            index.brick_of({"day": 1})

    def test_out_of_range_brick_id_rejected(self, index):
        with pytest.raises(QueryError):
            index.brick_coordinates(index.total_bricks)


class TestPruning:
    def test_candidate_buckets_for_values(self, index):
        assert index.candidate_buckets("day", [0, 6], None) == {0}
        assert index.candidate_buckets("day", [0, 7], None) == {0, 1}

    def test_candidate_buckets_for_range(self, index):
        assert index.candidate_buckets("day", None, (0, 13)) == {0, 1}
        assert index.candidate_buckets("day", None, (14, 29)) == {2, 3, 4}

    def test_range_clamped_to_domain(self, index):
        assert index.candidate_buckets("day", None, (-5, 500)) == {0, 1, 2, 3, 4}

    def test_empty_range(self, index):
        assert index.candidate_buckets("day", None, (20, 10)) == set()

    def test_unconstrained_returns_all(self, index):
        assert index.candidate_buckets("day", None, None) == {0, 1, 2, 3, 4}

    def test_prune_filters_existing_bricks(self, index):
        existing = list(range(index.total_bricks))
        allowed = {"day": {0}}  # only day bucket 0 -> bricks 0..3
        pruned = list(index.prune(allowed, existing))
        assert pruned == [0, 1, 2, 3]

    def test_prune_multi_dimension(self, index):
        existing = list(range(index.total_bricks))
        allowed = {"day": {1}, "country": {2}}
        assert list(index.prune(allowed, existing)) == [1 * 4 + 2]

    def test_prune_unknown_dimension_rejected(self, index):
        with pytest.raises(QueryError):
            list(index.prune({"nope": {0}}, [0]))

    def test_prune_only_considers_existing(self, index):
        allowed = {"day": {0}}
        assert list(index.prune(allowed, [2, 17])) == [2]

    def test_single_dimension_schema(self):
        schema = TableSchema.build(
            "t", [Dimension("x", 10, range_size=2)], [Metric("m")]
        )
        index = GranularIndex(schema)
        assert index.total_bricks == 5
        assert index.brick_of({"x": 9}) == 4
