"""Tests for replicated dimension tables and local joins (paper §II-B)."""

import numpy as np
import pytest

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.node import CubrickNode
from repro.cubrick.query import AggFunc, Aggregation, Filter, Join, Query
from repro.cubrick.schema import Catalog, Dimension, Metric, TableSchema
from repro.cubrick.sharding import MonotonicHashMapper, ShardDirectory
from repro.cubrick.storage import PartitionStorage
from repro.errors import PartitionNotFoundError, QueryError

FACT = TableSchema.build(
    "sales",
    dimensions=[Dimension("user_id", 100), Dimension("day", 10)],
    metrics=[Metric("amount")],
)
DIM = TableSchema.build(
    "dim_users",
    dimensions=[Dimension("user_id", 100), Dimension("country", 5)],
    metrics=[],
)

FACT_ROWS = [
    {"user_id": 1, "day": 0, "amount": 10.0},
    {"user_id": 2, "day": 0, "amount": 20.0},
    {"user_id": 3, "day": 1, "amount": 30.0},
    {"user_id": 1, "day": 1, "amount": 40.0},
    {"user_id": 99, "day": 2, "amount": 500.0},  # no dim row: inner-joined away
]
DIM_ROWS = [
    {"user_id": 1, "country": 0},
    {"user_id": 2, "country": 1},
    {"user_id": 3, "country": 0},
]

JOIN = Join(table="dim_users", fact_key="user_id", dim_key="user_id")


def build_lookup():
    """Key->country lookup as the node would materialise it."""
    lookup = np.full(100, -1, dtype=np.int64)
    for row in DIM_ROWS:
        lookup[row["user_id"]] = row["country"]
    return {"dim_users.country": ("user_id", lookup)}


class TestJoinModel:
    def test_join_validation(self):
        with pytest.raises(QueryError):
            Join(table="", fact_key="a", dim_key="b")

    def test_column_of(self):
        assert JOIN.column_of("dim_users.country") == "country"
        assert JOIN.column_of("other.country") is None

    def test_duplicate_join_tables_rejected(self):
        with pytest.raises(QueryError):
            Query.build(
                "sales",
                [Aggregation(AggFunc.SUM, "amount")],
                joins=[JOIN, JOIN],
            )

    def test_joined_columns(self):
        query = Query.build(
            "sales",
            [Aggregation(AggFunc.SUM, "amount")],
            group_by=["dim_users.country"],
            filters=[Filter.eq("day", 0)],
            joins=[JOIN],
        )
        assert query.joined_columns() == {"dim_users.country"}


class TestStorageJoinExecution:
    @pytest.fixture
    def storage(self):
        part = PartitionStorage(FACT, 0)
        part.insert_many(FACT_ROWS)
        return part

    def test_group_by_joined_column(self, storage):
        query = Query.build(
            "sales",
            [Aggregation(AggFunc.SUM, "amount")],
            group_by=["dim_users.country"],
            joins=[JOIN],
        )
        result = storage.execute(query, build_lookup()).finalize()
        got = {int(k): v for k, v in result.rows}
        # country 0: users 1,3 -> 10+40+30 = 80; country 1: user 2 -> 20.
        assert got == {0: 80.0, 1: 20.0}

    def test_unmatched_keys_dropped(self, storage):
        """user 99 has no dim row: inner join drops its 500.0."""
        query = Query.build(
            "sales",
            [Aggregation(AggFunc.SUM, "amount")],
            group_by=["dim_users.country"],
            joins=[JOIN],
        )
        result = storage.execute(query, build_lookup()).finalize()
        assert sum(v for __, v in result.rows) == 100.0

    def test_filter_on_joined_column(self, storage):
        query = Query.build(
            "sales",
            [Aggregation(AggFunc.COUNT, "amount")],
            filters=[Filter.eq("dim_users.country", 0)],
            joins=[JOIN],
        )
        result = storage.execute(query, build_lookup()).finalize()
        assert result.scalar() == 3.0  # rows of users 1 and 3

    def test_mixed_fact_and_joined_filters(self, storage):
        query = Query.build(
            "sales",
            [Aggregation(AggFunc.SUM, "amount")],
            filters=[Filter.eq("dim_users.country", 0), Filter.eq("day", 1)],
            joins=[JOIN],
        )
        result = storage.execute(query, build_lookup()).finalize()
        assert result.scalar() == 70.0  # user1 day1 + user3 day1

    def test_missing_lookup_raises(self, storage):
        query = Query.build(
            "sales",
            [Aggregation(AggFunc.SUM, "amount")],
            group_by=["dim_users.country"],
            joins=[JOIN],
        )
        with pytest.raises(QueryError):
            storage.execute(query)  # no lookups supplied


class TestNodeJoins:
    @pytest.fixture
    def node(self):
        catalog = Catalog()
        catalog.create(FACT, num_partitions=1)
        catalog.create(DIM, num_partitions=1, replicated=True)
        directory = ShardDirectory(MonotonicHashMapper(max_shards=10_000))
        shards = directory.register_table("sales", 1)
        node = CubrickNode("h1", catalog, directory)
        node.add_shard(shards[0], None)
        node.insert_into_partition("sales", 0, FACT_ROWS)
        node.insert_into_replicated("dim_users", DIM_ROWS)
        return node

    def test_local_join_execution(self, node):
        query = Query.build(
            "sales",
            [Aggregation(AggFunc.SUM, "amount")],
            group_by=["dim_users.country"],
            joins=[JOIN],
        )
        result = node.execute_local(query, [0]).finalize()
        assert {int(k): v for k, v in result.rows} == {0: 80.0, 1: 20.0}

    def test_missing_replica_raises(self, node):
        node.drop_replicated("dim_users")
        query = Query.build(
            "sales",
            [Aggregation(AggFunc.SUM, "amount")],
            group_by=["dim_users.country"],
            joins=[JOIN],
        )
        with pytest.raises(PartitionNotFoundError):
            node.execute_local(query, [0])

    def test_replicated_tables_listed(self, node):
        assert node.replicated_tables() == {"dim_users"}


class TestDeploymentJoins:
    @pytest.fixture
    def deployment(self):
        deployment = CubrickDeployment(
            DeploymentConfig(seed=123, regions=2, racks_per_region=2,
                             hosts_per_rack=3)
        )
        deployment.create_table(FACT)
        deployment.create_table(DIM, replicated=True)
        deployment.load("sales", FACT_ROWS * 20)
        deployment.load("dim_users", DIM_ROWS)
        deployment.simulator.run_until(30.0)
        return deployment

    def test_replicated_table_on_every_node(self, deployment):
        for node in deployment.nodes.values():
            assert "dim_users" in node.replicated_tables()

    def test_distributed_join_through_proxy(self, deployment):
        query = Query.build(
            "sales",
            [Aggregation(AggFunc.SUM, "amount")],
            group_by=["dim_users.country"],
            joins=[JOIN],
        )
        result = deployment.query(query)
        got = {int(k): v for k, v in result.rows}
        assert got == {0: 80.0 * 20, 1: 20.0 * 20}

    def test_join_survives_region_failover(self, deployment):
        coordinator = deployment.coordinators["region0"]
        victim = sorted(coordinator.partition_hosts("sales"))[0]
        deployment.cluster.host(victim).fail(permanent=False)
        query = Query.build(
            "sales",
            [Aggregation(AggFunc.COUNT, "amount")],
            filters=[Filter.eq("dim_users.country", 0)],
            joins=[JOIN],
        )
        result = deployment.query(query)
        assert result.scalar() == 3.0 * 20
        assert result.metadata["region"] == "region1"
        deployment.cluster.host(victim).recover()

    def test_drop_replicated_table(self, deployment):
        deployment.drop_table("dim_users")
        for node in deployment.nodes.values():
            assert "dim_users" not in node.replicated_tables()
        assert "dim_users" not in deployment.catalog
