"""Tests for the three load-balancing metric generations (paper §IV-F)."""

import pytest

from repro.cluster.host import GIB
from repro.cubrick.compression import MemoryBudget
from repro.cubrick.loadbalance import (
    DecompressedSizeExporter,
    FootprintExporter,
    LoadBalanceGeneration,
    SsdExporter,
    make_exporter,
)
from repro.cubrick.node import CubrickNode
from repro.cubrick.schema import Catalog
from repro.cubrick.sharding import MonotonicHashMapper, ShardDirectory
from tests.conftest import make_rows


@pytest.fixture
def loaded_node(events_schema):
    catalog = Catalog()
    catalog.create(events_schema, num_partitions=2)
    directory = ShardDirectory(MonotonicHashMapper(max_shards=10_000))
    shards = directory.register_table("events", 2)
    node = CubrickNode(
        "h1", catalog, directory,
        memory_bytes=GIB, ssd_bytes=8 * GIB,
        memory_budget=MemoryBudget(capacity_bytes=GIB),
    )
    node.add_shard(shards[0], None)
    node.insert_into_partition("events", 0, make_rows(events_schema, 400, seed=3))
    return node, shards


class TestGeneration1:
    def test_capacity_is_90_percent_of_memory(self, loaded_node):
        node, __ = loaded_node
        exporter = FootprintExporter()
        assert exporter.capacity(node) == pytest.approx(0.9 * GIB)

    def test_shard_size_is_actual_footprint(self, loaded_node):
        node, shards = loaded_node
        exporter = FootprintExporter()
        expected = sum(
            p.footprint_bytes() for p in node.partitions_of_shard(shards[0])
        )
        assert exporter.shard_size(node, shards[0]) == expected

    def test_metric_changes_under_compression(self, loaded_node):
        """The generation-1 flaw: compression changes the exported size."""
        node, shards = loaded_node
        exporter = FootprintExporter()
        before = exporter.shard_size(node, shards[0])
        for brick in node.all_bricks():
            brick.compress()
        after = exporter.shard_size(node, shards[0])
        assert after < before


class TestGeneration2:
    def test_metric_stable_under_compression(self, loaded_node):
        """The generation-2 fix: decompressed size never moves."""
        node, shards = loaded_node
        exporter = DecompressedSizeExporter()
        before = exporter.shard_size(node, shards[0])
        for brick in node.all_bricks():
            brick.compress()
        assert exporter.shard_size(node, shards[0]) == before

    def test_metric_grows_only_with_data(self, loaded_node, events_schema):
        node, shards = loaded_node
        exporter = DecompressedSizeExporter()
        before = exporter.shard_size(node, shards[0])
        node.insert_into_partition(
            "events", 0, make_rows(events_schema, 100, seed=4)
        )
        assert exporter.shard_size(node, shards[0]) > before

    def test_capacity_scaled_by_compression_ratio(self, loaded_node):
        node, __ = loaded_node
        exporter = DecompressedSizeExporter(average_compression_ratio=2.5)
        assert exporter.capacity(node) == pytest.approx(0.9 * GIB * 2.5)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            DecompressedSizeExporter(average_compression_ratio=0.5)


class TestGeneration3:
    def test_capacity_is_ssd(self, loaded_node):
        node, __ = loaded_node
        assert SsdExporter().capacity(node) == 8 * GIB

    def test_shard_size_is_spillable_size(self, loaded_node):
        node, shards = loaded_node
        exporter = SsdExporter()
        expected = sum(
            p.decompressed_bytes() for p in node.partitions_of_shard(shards[0])
        )
        assert exporter.shard_size(node, shards[0]) == expected


class TestFactory:
    @pytest.mark.parametrize(
        "generation,cls",
        [
            (LoadBalanceGeneration.GEN1_FOOTPRINT, FootprintExporter),
            (LoadBalanceGeneration.GEN2_DECOMPRESSED, DecompressedSizeExporter),
            (LoadBalanceGeneration.GEN3_SSD, SsdExporter),
        ],
    )
    def test_make_exporter(self, generation, cls):
        assert isinstance(make_exporter(generation), cls)

    def test_shard_metrics_covers_all_shards(self, loaded_node):
        node, shards = loaded_node
        metrics = make_exporter(
            LoadBalanceGeneration.GEN2_DECOMPRESSED
        ).shard_metrics(node)
        assert set(metrics) == {shards[0]}
