"""Tests for the four coordinator-locating strategies (paper §IV-C)."""

import numpy as np
import pytest

from repro.cubrick.locator import (
    AlwaysPartitionZero,
    CachedRandom,
    ForwardFromZero,
    LookupThenRandom,
)


class TestAlwaysZero:
    def test_always_picks_zero(self, rng):
        locator = AlwaysPartitionZero()
        for __ in range(20):
            choice = locator.choose("t", 16, rng)
            assert choice.partition_index == 0
            assert choice.extra_hops == 0
            assert choice.extra_roundtrips == 0

    def test_creates_imbalance(self, rng):
        """The documented flaw: one partition coordinates everything."""
        locator = AlwaysPartitionZero()
        picks = [locator.choose("t", 16, rng).partition_index for __ in range(100)]
        assert set(picks) == {0}


class TestForwardFromZero:
    def test_balances_partitions(self, rng):
        locator = ForwardFromZero()
        picks = [locator.choose("t", 8, rng).partition_index for __ in range(4000)]
        counts = np.bincount(picks, minlength=8)
        assert counts.min() > 400  # roughly uniform

    def test_pays_extra_hop_unless_zero(self, rng):
        locator = ForwardFromZero()
        for __ in range(100):
            choice = locator.choose("t", 8, rng)
            expected = 0 if choice.partition_index == 0 else 1
            assert choice.extra_hops == expected


class TestLookupThenRandom:
    def test_balances_and_pays_roundtrip(self, rng):
        locator = LookupThenRandom()
        picks = []
        for __ in range(4000):
            choice = locator.choose("t", 8, rng)
            picks.append(choice.partition_index)
            assert choice.extra_roundtrips == 1
            assert choice.extra_hops == 0
        assert len(set(picks)) == 8


class TestCachedRandom:
    def test_first_call_is_a_miss(self, rng):
        locator = CachedRandom()
        choice = locator.choose("t", 8, rng)
        assert not choice.used_cache
        assert choice.extra_roundtrips == 1

    def test_subsequent_calls_hit_cache(self, rng):
        locator = CachedRandom()
        locator.choose("t", 8, rng)
        choice = locator.choose("t", 8, rng)
        assert choice.used_cache
        assert choice.extra_roundtrips == 0
        assert choice.extra_hops == 0

    def test_result_metadata_refreshes_cache(self, rng):
        locator = CachedRandom()
        locator.choose("t", 8, rng)
        locator.observe_result("t", 16)
        assert locator.cached_count("t") == 16

    def test_stale_cache_still_valid_modulo_actual(self, rng):
        """A stale (too large) cache cannot pick a missing partition."""
        locator = CachedRandom()
        locator.choose("t", 16, rng)
        # Table shrank to 4 partitions; cache still says 16.
        for __ in range(50):
            choice = locator.choose("t", 4, rng)
            assert 0 <= choice.partition_index < 4

    def test_balances_with_fresh_cache(self, rng):
        locator = CachedRandom()
        locator.observe_result("t", 8)
        picks = [locator.choose("t", 8, rng).partition_index for __ in range(4000)]
        counts = np.bincount(picks, minlength=8)
        assert counts.min() > 400

    def test_invalidate(self, rng):
        locator = CachedRandom()
        locator.choose("t", 8, rng)
        locator.invalidate("t")
        assert locator.cached_count("t") is None
        assert not locator.choose("t", 8, rng).used_cache

    def test_separate_tables_cached_separately(self, rng):
        locator = CachedRandom()
        locator.observe_result("a", 8)
        locator.observe_result("b", 32)
        assert locator.cached_count("a") == 8
        assert locator.cached_count("b") == 32
