"""Tests for CubrickNode: SM endpoints, collision refusal, local queries."""

import pytest

from repro.cubrick.node import CubrickNode
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.cubrick.schema import Catalog, Dimension, Metric, TableSchema
from repro.cubrick.sharding import MonotonicHashMapper, ShardDirectory
from repro.errors import (
    NonRetryableShardError,
    PartitionNotFoundError,
    ShardAlreadyAssignedError,
    ShardNotFoundError,
)
from tests.conftest import make_rows


@pytest.fixture
def env(events_schema):
    catalog = Catalog()
    catalog.create(events_schema, num_partitions=4)
    directory = ShardDirectory(MonotonicHashMapper(max_shards=10_000))
    shards = directory.register_table("events", 4)
    node = CubrickNode("h1", catalog, directory)
    return catalog, directory, shards, node


class TestShardEndpoints:
    def test_add_shard_creates_partitions(self, env):
        __, directory, shards, node = env
        node.add_shard(shards[0], None)
        assert node.has_partition("events", 0)
        assert node.hosted_shards() == {shards[0]}
        assert node.partition_names() == ["events#0"]

    def test_duplicate_add_rejected(self, env):
        __, __d, shards, node = env
        node.add_shard(shards[0], None)
        with pytest.raises(ShardAlreadyAssignedError):
            node.add_shard(shards[0], None)

    def test_drop_shard_deletes_data(self, env):
        __, __d, shards, node = env
        node.add_shard(shards[0], None)
        node.insert_into_partition(
            "events", 0, [{"day": 1, "country": 1, "clicks": 1.0, "cost": 1.0}]
        )
        node.drop_shard(shards[0])
        assert not node.has_partition("events", 0)
        assert node.total_rows() == 0

    def test_drop_unknown_shard_rejected(self, env):
        __, __d, __s, node = env
        with pytest.raises(ShardNotFoundError):
            node.drop_shard(12345)

    def test_collision_refused_with_non_retryable(self, env):
        """The §IV-A1 behaviour: refuse shards that co-locate a table."""
        __, __d, shards, node = env
        node.add_shard(shards[0], None)
        with pytest.raises(NonRetryableShardError):
            node.add_shard(shards[1], None)

    def test_unrelated_shards_coexist(self, env, events_schema):
        catalog, directory, shards, node = env
        other = TableSchema.build(
            "other", [Dimension("x", 10)], [Metric("m")]
        )
        catalog.create(other, num_partitions=2)
        other_shards = directory.register_table("other", 2)
        node.add_shard(shards[0], None)
        if other_shards[0] not in node.hosted_shards():
            node.add_shard(other_shards[0], None)
        assert node.tables_stored() == {"events", "other"}

    def test_migration_copies_data(self, env):
        catalog, directory, shards, node = env
        node.add_shard(shards[0], None)
        rows = make_rows(catalog.get("events").schema, 50, seed=1)
        in_zero = [
            r for r in rows
        ]
        node.insert_into_partition("events", 0, in_zero)
        target = CubrickNode("h2", catalog, directory)
        target.add_shard(shards[0], node)
        assert target.partition("events", 0).rows == 50

    def test_failover_without_source_creates_empty(self, env):
        catalog, directory, shards, __ = env
        fresh = CubrickNode("h3", catalog, directory)
        fresh.add_shard(shards[2], None)
        assert fresh.partition("events", 2).rows == 0

    def test_graceful_protocol_forwarding_state(self, env):
        catalog, directory, shards, node = env
        node.add_shard(shards[0], None)
        target = CubrickNode("h2", catalog, directory)
        target.prepare_add_shard(shards[0], node)
        node.prepare_drop_shard(shards[0], target)
        assert node.is_forwarding(shards[0])
        target.commit_add_shard(shards[0])
        node.drop_shard(shards[0])
        assert not node.is_forwarding(shards[0])

    def test_commit_without_prepare_rejected(self, env):
        __, __d, shards, node = env
        with pytest.raises(ShardNotFoundError):
            node.commit_add_shard(shards[0])


class TestAttachDetach:
    def test_attach_partition_to_existing_shard(self, env, events_schema):
        catalog, directory, shards, node = env
        node.add_shard(shards[0], None)
        other = TableSchema.build("late", [Dimension("x", 10)], [Metric("m")])
        catalog.create(other, num_partitions=1)
        node.attach_partition(shards[0], "late", 0)
        assert node.has_partition("late", 0)
        assert "late" in node.tables_stored()

    def test_attach_can_create_shard_collision(self, env):
        """Creation-time shard collisions are allowed (paper §IV-A1)."""
        catalog, directory, shards, node = env
        node.add_shard(shards[0], None)
        # Simulate a second shard arriving that, at creation time, holds
        # a partition of a *different* table...
        other = TableSchema.build("t2", [Dimension("x", 10)], [Metric("m")])
        catalog.create(other, num_partitions=2)
        other_shards = directory.register_table("t2", 2)
        target_shard = next(s for s in other_shards if s not in shards)
        node.add_shard(target_shard, None)
        # ... and then a new table maps partitions onto both hosted shards.
        node.attach_partition(shards[0], "t2", 1) if False else None
        node.attach_partition(target_shard, "events", 1) if False else None
        # Direct check of the collision detector with synthetic state:
        node.attach_partition(shards[0], "t2", 1)
        assert "t2" in node.has_shard_collision()

    def test_detach_partition(self, env):
        __, __d, shards, node = env
        node.add_shard(shards[0], None)
        node.detach_partition(shards[0], "events", 0)
        assert not node.has_partition("events", 0)
        assert node.hosted_shards() == {shards[0]}

    def test_attach_to_missing_shard_rejected(self, env):
        __, __d, __s, node = env
        with pytest.raises(ShardNotFoundError):
            node.attach_partition(999, "events", 0)


class TestLocalExecution:
    def test_execute_local_over_partitions(self, env):
        catalog, __, shards, node = env
        node.add_shard(shards[0], None)
        rows = [
            {"day": 1, "country": 2, "clicks": 5.0, "cost": 1.0},
            {"day": 2, "country": 3, "clicks": 7.0, "cost": 1.0},
        ]
        node.insert_into_partition("events", 0, rows)
        query = Query.build("events", [Aggregation(AggFunc.SUM, "clicks")])
        partial = node.execute_local(query, [0])
        assert partial.finalize().scalar() == 12.0

    def test_execute_local_missing_partition_raises(self, env):
        __, __d, shards, node = env
        node.add_shard(shards[0], None)
        query = Query.build("events", [Aggregation(AggFunc.SUM, "clicks")])
        with pytest.raises(PartitionNotFoundError):
            node.execute_local(query, [1])


class TestMetricsAndMaintenance:
    def test_shard_metrics_per_shard(self, env):
        __, __d, shards, node = env
        node.add_shard(shards[0], None)
        node.insert_into_partition(
            "events", 0,
            [{"day": 1, "country": 1, "clicks": 1.0, "cost": 1.0}] * 10,
        )
        metrics = node.shard_metrics()
        assert set(metrics) == {shards[0]}
        assert metrics[shards[0]] > 0

    def test_exported_capacity_positive(self, env):
        __, __d, __s, node = env
        assert node.exported_capacity() > 0

    def test_memory_monitor_compresses_under_pressure(
        self, env, events_schema
    ):
        from repro.cubrick.compression import MemoryBudget

        catalog, directory, shards, __ = env
        node = CubrickNode(
            "tiny", catalog, directory,
            memory_budget=MemoryBudget(capacity_bytes=4096),
        )
        node.add_shard(shards[0], None)
        node.insert_into_partition(
            "events", 0, make_rows(events_schema, 500, seed=9)
        )
        report = node.run_memory_monitor()
        assert report.compressed > 0
        assert report.footprint_after < report.footprint_before

    def test_decay_hotness_counts_bricks(self, env, events_schema):
        __, __d, shards, node = env
        node.add_shard(shards[0], None)
        node.insert_into_partition(
            "events", 0, make_rows(events_schema, 100, seed=4)
        )
        assert node.decay_hotness() == node.partition("events", 0).brick_count

    def test_repr(self, env):
        __, __d, __s, node = env
        assert "h1" in repr(node)
