"""Tests for table schemas, partition names and the catalog."""

import pytest

from repro.cubrick.schema import (
    Catalog,
    Dimension,
    Metric,
    TableSchema,
    partition_name,
    split_partition_name,
    validate_table_name,
)
from repro.errors import (
    InvalidTableNameError,
    SchemaError,
    TableAlreadyExistsError,
    TableNotFoundError,
)


class TestNames:
    def test_partition_name_format(self):
        assert partition_name("dim_users", 2) == "dim_users#2"

    def test_split_roundtrip(self):
        assert split_partition_name("dim_users#2") == ("dim_users", 2)

    def test_split_rejects_plain_names(self):
        with pytest.raises(SchemaError):
            split_partition_name("dim_users")

    def test_hash_in_table_name_rejected(self):
        """# is reserved as the partition separator (paper §IV-A)."""
        with pytest.raises(InvalidTableNameError):
            validate_table_name("bad#name")

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidTableNameError):
            validate_table_name("")

    def test_negative_partition_rejected(self):
        with pytest.raises(SchemaError):
            partition_name("t", -1)


class TestDimension:
    def test_bucket_count_rounds_up(self):
        dim = Dimension("day", 30, range_size=7)
        assert dim.bucket_count == 5

    def test_default_range_is_whole_domain(self):
        dim = Dimension("x", 100)
        assert dim.bucket_count == 1
        assert dim.bucket_of(99) == 0

    def test_bucket_of(self):
        dim = Dimension("day", 30, range_size=7)
        assert dim.bucket_of(0) == 0
        assert dim.bucket_of(6) == 0
        assert dim.bucket_of(7) == 1
        assert dim.bucket_of(29) == 4

    def test_out_of_domain_rejected(self):
        dim = Dimension("day", 30)
        with pytest.raises(SchemaError):
            dim.bucket_of(30)
        with pytest.raises(SchemaError):
            dim.bucket_of(-1)

    def test_invalid_cardinality_rejected(self):
        with pytest.raises(SchemaError):
            Dimension("x", 0)


class TestTableSchema:
    def test_column_names(self, events_schema):
        assert events_schema.dimension_names == ("day", "country")
        assert events_schema.metric_names == ("clicks", "cost")
        assert events_schema.column_names == ("day", "country", "clicks", "cost")

    def test_requires_dimensions(self):
        with pytest.raises(SchemaError):
            TableSchema.build("t", [], [Metric("m")])

    def test_metrics_may_be_empty_for_dimension_tables(self):
        schema = TableSchema.build("dim_users", [Dimension("user_id", 10)], [])
        assert schema.metric_names == ()

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema.build(
                "t", [Dimension("x", 10)], [Metric("x")]
            )

    def test_dimension_lookup(self, events_schema):
        assert events_schema.dimension("day").cardinality == 30
        with pytest.raises(SchemaError):
            events_schema.dimension("nope")

    def test_has_helpers(self, events_schema):
        assert events_schema.has_dimension("day")
        assert not events_schema.has_dimension("clicks")
        assert events_schema.has_metric("cost")
        assert not events_schema.has_metric("day")

    def test_validate_row_accepts_good_rows(self, events_schema):
        events_schema.validate_row(
            {"day": 3, "country": 50, "clicks": 1.0, "cost": 2.0}
        )

    def test_validate_row_rejects_missing_column(self, events_schema):
        with pytest.raises(SchemaError):
            events_schema.validate_row({"day": 3, "clicks": 1.0, "cost": 2.0})

    def test_validate_row_rejects_out_of_domain(self, events_schema):
        with pytest.raises(SchemaError):
            events_schema.validate_row(
                {"day": 30, "country": 0, "clicks": 1.0, "cost": 2.0}
            )

    def test_validate_row_rejects_fractional_dimension(self, events_schema):
        with pytest.raises(SchemaError):
            events_schema.validate_row(
                {"day": 1.5, "country": 0, "clicks": 1.0, "cost": 2.0}
            )


class TestCatalog:
    def test_create_and_get(self, events_schema):
        catalog = Catalog()
        info = catalog.create(events_schema)
        assert info.num_partitions == 8  # the paper's default
        assert catalog.get("events") is info
        assert "events" in catalog

    def test_duplicate_create_rejected(self, events_schema):
        catalog = Catalog()
        catalog.create(events_schema)
        with pytest.raises(TableAlreadyExistsError):
            catalog.create(events_schema)

    def test_get_unknown_raises(self):
        with pytest.raises(TableNotFoundError):
            Catalog().get("missing")

    def test_drop(self, events_schema):
        catalog = Catalog()
        catalog.create(events_schema)
        catalog.drop("events")
        assert "events" not in catalog
        with pytest.raises(TableNotFoundError):
            catalog.drop("events")

    def test_table_names_sorted(self, events_schema):
        catalog = Catalog()
        catalog.create(events_schema)
        other = TableSchema.build(
            "aaa", [Dimension("d", 5)], [Metric("m")]
        )
        catalog.create(other)
        assert catalog.table_names() == ["aaa", "events"]

    def test_invalid_partition_count_rejected(self, events_schema):
        catalog = Catalog()
        with pytest.raises(SchemaError):
            catalog.create(events_schema, num_partitions=0)
