"""Tests for shard mappers, the shard directory and collision analysis."""

import pytest

from repro.cubrick.sharding import (
    MonotonicHashMapper,
    NaiveHashMapper,
    ReplicaMapper,
    ShardDirectory,
    analyze_collisions,
    stable_hash,
)
from repro.errors import ConfigurationError


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("dim_users#0") == stable_hash("dim_users#0")

    def test_distinct_keys_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_64_bit(self):
        assert 0 <= stable_hash("anything") < 2 ** 64


class TestNaiveMapper:
    def test_within_keyspace(self):
        mapper = NaiveHashMapper(max_shards=100)
        for i in range(20):
            assert 0 <= mapper.shard_of("t", i) < 100

    def test_same_table_collisions_possible(self):
        """The paper's test_table problem: naive hashing self-collides."""
        mapper = NaiveHashMapper(max_shards=50)
        collided = False
        for t in range(200):
            shards = mapper.shards_of(f"table_{t}", 8)
            if len(set(shards)) != len(shards):
                collided = True
                break
        assert collided

    def test_invalid_max_shards(self):
        with pytest.raises(ConfigurationError):
            NaiveHashMapper(max_shards=0)


class TestMonotonicMapper:
    def test_consecutive_shards(self):
        """The paper's fix: hash partition 0, increment the rest."""
        mapper = MonotonicHashMapper(max_shards=100_000)
        shards = mapper.shards_of("test_table", 4)
        base = shards[0]
        assert shards == [base, base + 1, base + 2, base + 3]

    def test_never_self_collides(self):
        mapper = MonotonicHashMapper(max_shards=1000)
        for t in range(500):
            shards = mapper.shards_of(f"table_{t}", 60)
            assert len(set(shards)) == 60

    def test_wraps_around_keyspace(self):
        mapper = MonotonicHashMapper(max_shards=10)
        shards = mapper.shards_of("t", 10)
        assert sorted(shards) == list(range(10))

    def test_shard_of_consistent_with_shards_of(self):
        mapper = MonotonicHashMapper(max_shards=997)
        assert [mapper.shard_of("x", i) for i in range(5)] == mapper.shards_of("x", 5)


class TestReplicaMapper:
    def test_single_shard_per_table(self):
        mapper = ReplicaMapper(max_shards=100, replicas=8)
        shards = mapper.shards_of("t", 8)
        assert len(set(shards)) == 1

    def test_fixed_partition_count_enforced(self):
        """The paper's limitation: all tables need exactly N partitions."""
        mapper = ReplicaMapper(max_shards=100, replicas=8)
        with pytest.raises(ConfigurationError):
            mapper.shards_of("t", 16)
        with pytest.raises(ConfigurationError):
            mapper.shard_of("t", 8)


class TestShardDirectory:
    def test_register_and_lookup(self):
        directory = ShardDirectory(MonotonicHashMapper(max_shards=1000))
        shards = directory.register_table("t", 4)
        assert directory.shards_for_table("t") == shards
        assert directory.shard_for_partition("t", 2) == shards[2]
        for index, shard in enumerate(shards):
            assert ("t", index) in directory.contents(shard)

    def test_duplicate_register_rejected(self):
        directory = ShardDirectory(MonotonicHashMapper(max_shards=1000))
        directory.register_table("t", 4)
        with pytest.raises(ConfigurationError):
            directory.register_table("t", 4)

    def test_unregister_cleans_up(self):
        directory = ShardDirectory(MonotonicHashMapper(max_shards=1000))
        shards = directory.register_table("t", 4)
        directory.unregister_table("t")
        assert directory.tables() == []
        for shard in shards:
            assert directory.contents(shard) == []

    def test_partition_collision_shares_shard(self):
        """Two tables on one shard travel together (paper §IV-A1)."""
        mapper = MonotonicHashMapper(max_shards=4)
        directory = ShardDirectory(mapper)
        directory.register_table("a", 2)
        directory.register_table("b", 2)
        occupied = directory.occupied_shards()
        total_entries = sum(len(directory.contents(s)) for s in occupied)
        assert total_entries == 4
        assert len(occupied) <= 4

    def test_out_of_range_partition_rejected(self):
        directory = ShardDirectory(MonotonicHashMapper(max_shards=1000))
        directory.register_table("t", 4)
        with pytest.raises(ConfigurationError):
            directory.shard_for_partition("t", 4)

    def test_unknown_table_rejected(self):
        directory = ShardDirectory(MonotonicHashMapper(max_shards=1000))
        with pytest.raises(ConfigurationError):
            directory.shards_for_table("missing")
        with pytest.raises(ConfigurationError):
            directory.unregister_table("missing")


class TestCollisionAnalysis:
    def test_monotonic_has_no_same_table_collisions(self):
        """The Figure 4a 'none by design' bar."""
        mapper = MonotonicHashMapper(max_shards=10_000)
        tables = {f"t{i}": 8 for i in range(500)}
        report = analyze_collisions(tables, mapper)
        assert report.same_table_partition_collisions == 0

    def test_naive_has_same_table_collisions(self):
        mapper = NaiveHashMapper(max_shards=500)
        tables = {f"t{i}": 8 for i in range(500)}
        report = analyze_collisions(tables, mapper)
        assert report.same_table_partition_collisions > 0

    def test_cross_table_collisions_counted_per_table(self):
        mapper = MonotonicHashMapper(max_shards=20)
        tables = {f"t{i}": 8 for i in range(10)}  # 80 partitions on 20 shards
        report = analyze_collisions(tables, mapper)
        assert report.cross_table_partition_collisions > 0
        assert report.cross_table_fraction <= 1.0

    def test_shard_collisions_require_host_map(self):
        mapper = MonotonicHashMapper(max_shards=1000)
        tables = {"t": 8}
        shards = mapper.shards_of("t", 8)
        # Co-locate two of the table's shards on one host.
        shard_to_host = {s: f"h{i}" for i, s in enumerate(shards)}
        shard_to_host[shards[1]] = "h0"
        report = analyze_collisions(tables, mapper, shard_to_host)
        assert report.shard_collisions == 1
        assert report.shard_collision_fraction == 1.0

    def test_no_shard_collisions_on_distinct_hosts(self):
        mapper = MonotonicHashMapper(max_shards=1000)
        tables = {"t": 8}
        shard_to_host = {
            s: f"h{i}" for i, s in enumerate(mapper.shards_of("t", 8))
        }
        report = analyze_collisions(tables, mapper, shard_to_host)
        assert report.shard_collisions == 0

    def test_empty_population(self):
        report = analyze_collisions({}, MonotonicHashMapper(max_shards=10))
        assert report.tables == 0
        assert report.same_table_fraction == 0.0
