"""Tests for the SQL dialect parser."""

import pytest

from repro.cubrick.query import AggFunc, FilterOp
from repro.cubrick.sql import parse_query
from repro.errors import QueryError


class TestBasicSelect:
    def test_minimal_query(self):
        query = parse_query("SELECT sum(clicks) FROM events")
        assert query.table == "events"
        assert len(query.aggregations) == 1
        assert query.aggregations[0].func is AggFunc.SUM
        assert query.aggregations[0].metric == "clicks"

    def test_multiple_aggregates(self):
        query = parse_query(
            "SELECT sum(clicks), count(clicks), avg(cost) FROM events"
        )
        funcs = [a.func for a in query.aggregations]
        assert funcs == [AggFunc.SUM, AggFunc.COUNT, AggFunc.AVG]

    def test_count_star(self):
        query = parse_query("SELECT count(*) FROM events")
        assert query.aggregations[0].metric == "*"

    def test_count_distinct(self):
        query = parse_query("SELECT count_distinct(country) FROM events")
        assert query.aggregations[0].func is AggFunc.COUNT_DISTINCT

    def test_keywords_case_insensitive(self):
        query = parse_query("select SUM(clicks) from events")
        assert query.aggregations[0].func is AggFunc.SUM

    def test_star_only_for_count(self):
        with pytest.raises(QueryError):
            parse_query("SELECT sum(*) FROM events")

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT median(clicks) FROM events")


class TestWhere:
    def test_equality(self):
        query = parse_query("SELECT count(*) FROM events WHERE day = 3")
        flt = query.filters[0]
        assert flt.op is FilterOp.EQ
        assert flt.values == (3,)

    def test_between(self):
        query = parse_query(
            "SELECT count(*) FROM events WHERE day BETWEEN 0 AND 6"
        )
        assert query.filters[0].op is FilterOp.BETWEEN
        assert query.filters[0].values == (0, 6)

    def test_in(self):
        query = parse_query(
            "SELECT count(*) FROM events WHERE country IN (1, 2, 3)"
        )
        assert query.filters[0].op is FilterOp.IN
        assert query.filters[0].values == (1, 2, 3)

    def test_conjunction(self):
        query = parse_query(
            "SELECT count(*) FROM events "
            "WHERE day = 1 AND country IN (4, 5) AND cost BETWEEN 0 AND 9"
        )
        assert len(query.filters) == 3

    def test_range_comparison_lowers_to_between(self):
        query = parse_query("SELECT count(*) FROM events WHERE day < 3")
        assert query.filters[0].op is FilterOp.BETWEEN
        assert query.filters[0].values == (0, 2)

    def test_not_in(self):
        query = parse_query(
            "SELECT count(*) FROM events WHERE country NOT IN (1, 2)"
        )
        assert query.filters[0].op is FilterOp.NOT_IN
        assert query.filters[0].values == (1, 2)

    def test_catalog_needing_predicate_rejected(self):
        with pytest.raises(QueryError):
            parse_query(
                "SELECT count(*) FROM events WHERE day = 1 OR country = 2"
            )


class TestClauses:
    def test_group_by(self):
        query = parse_query(
            "SELECT sum(clicks) FROM events GROUP BY day, country"
        )
        assert query.group_by == ("day", "country")

    def test_order_by_aggregate_desc_default(self):
        query = parse_query(
            "SELECT sum(clicks) FROM events GROUP BY day ORDER BY sum(clicks)"
        )
        assert query.order_by == "sum(clicks)"
        assert query.descending

    def test_order_by_asc(self):
        query = parse_query(
            "SELECT sum(clicks) FROM events GROUP BY day "
            "ORDER BY day ASC LIMIT 3"
        )
        assert query.order_by == "day"
        assert not query.descending
        assert query.limit == 3

    def test_limit(self):
        query = parse_query(
            "SELECT sum(clicks) FROM events GROUP BY day LIMIT 7"
        )
        assert query.limit == 7

    def test_join(self):
        query = parse_query(
            "SELECT sum(amount) FROM sales "
            "JOIN dim_users ON sales.user_id = dim_users.user_id "
            "GROUP BY dim_users.country"
        )
        join = query.joins[0]
        assert join.table == "dim_users"
        assert join.fact_key == "user_id"
        assert join.dim_key == "user_id"
        assert query.group_by == ("dim_users.country",)

    def test_join_reversed_condition(self):
        query = parse_query(
            "SELECT sum(amount) FROM sales "
            "JOIN dim_users ON dim_users.uid = sales.user_id"
        )
        join = query.joins[0]
        assert join.fact_key == "user_id"
        assert join.dim_key == "uid"

    def test_join_requires_dotted_names(self):
        with pytest.raises(QueryError):
            parse_query(
                "SELECT sum(a) FROM f JOIN d ON user_id = d.user_id"
            )

    def test_join_unknown_table_rejected(self):
        with pytest.raises(QueryError):
            parse_query(
                "SELECT sum(a) FROM f JOIN d ON x.k = d.k"
            )


class TestErrors:
    def test_empty_input(self):
        with pytest.raises(QueryError):
            parse_query("   ")

    def test_missing_from(self):
        with pytest.raises(QueryError):
            parse_query("SELECT sum(clicks)")

    def test_trailing_garbage(self):
        with pytest.raises(QueryError):
            parse_query("SELECT sum(x) FROM t LIMIT 5 LIMIT 6")

    def test_garbage_characters(self):
        with pytest.raises(QueryError):
            parse_query("SELECT sum(x) FROM t WHERE a = 'text'")

    def test_aggregate_in_where(self):
        with pytest.raises(QueryError, match="not allowed in WHERE"):
            parse_query("SELECT count(*) FROM t WHERE sum(clicks) = 1")


class TestRender:
    def test_not_in_renders_and_round_trips(self):
        from repro.cubrick.sql import render_query

        query = parse_query(
            "SELECT count(*) FROM events WHERE user_id NOT IN (3, 9)"
        )
        text = render_query(query)
        assert "user_id NOT IN (3, 9)" in text
        assert parse_query(text) == query

    def test_float_having_value_renders_exactly(self):
        from repro.cubrick.sql import render_query

        query = parse_query(
            "SELECT sum(cost) FROM events GROUP BY day "
            "HAVING sum(cost) > 1.5"
        )
        text = render_query(query)
        assert "HAVING sum(cost) > 1.5" in text
        assert parse_query(text) == query


class TestEndToEnd:
    def test_sql_through_deployment(self, tiny_deployment, events_schema):
        from tests.conftest import make_rows

        rows = make_rows(events_schema, 500, seed=7)
        expected = sum(r["clicks"] for r in rows if 0 <= r["day"] <= 6)
        result = tiny_deployment.sql(
            "SELECT sum(clicks) FROM events WHERE day BETWEEN 0 AND 6"
        )
        assert result.scalar() == pytest.approx(expected)

    def test_sql_topk(self, tiny_deployment):
        result = tiny_deployment.sql(
            "SELECT sum(clicks) FROM events GROUP BY day "
            "ORDER BY sum(clicks) DESC LIMIT 3"
        )
        assert len(result.rows) == 3
        values = [r[1] for r in result.rows]
        assert values == sorted(values, reverse=True)
