"""Tests for partition storage and query execution, against oracles."""

import numpy as np
import pytest

from repro.cubrick.query import (
    AggFunc,
    Aggregation,
    Filter,
    FilterOp,
    PartialResult,
    Query,
)
from repro.cubrick.storage import PartitionStorage
from repro.errors import QueryError
from tests.conftest import make_rows


@pytest.fixture
def loaded_storage(events_schema):
    storage = PartitionStorage(events_schema, partition_index=0)
    rows = make_rows(events_schema, 800, seed=11)
    storage.insert_many(rows)
    return storage, rows


def oracle(rows, filters=(), group_by=(), agg=("sum", "clicks")):
    """Pure-Python reference implementation."""
    def match(row):
        for flt in filters:
            value = row[flt.dimension]
            if flt.op is FilterOp.EQ and value != flt.values[0]:
                return False
            if flt.op is FilterOp.IN and value not in flt.values:
                return False
            if flt.op is FilterOp.BETWEEN and not (
                flt.values[0] <= value <= flt.values[1]
            ):
                return False
        return True

    groups = {}
    for row in rows:
        if not match(row):
            continue
        key = tuple(int(row[d]) for d in group_by)
        groups.setdefault(key, []).append(row[agg[1]])

    func, __ = agg
    out = {}
    for key, values in groups.items():
        if func == "sum":
            out[key] = sum(values)
        elif func == "count":
            out[key] = float(len(values))
        elif func == "min":
            out[key] = min(values)
        elif func == "max":
            out[key] = max(values)
        elif func == "avg":
            out[key] = sum(values) / len(values)
        elif func == "count_distinct":
            out[key] = float(len(set(values)))
    return out


class TestFilterValidation:
    def test_eq_needs_one_value(self):
        with pytest.raises(QueryError):
            Filter(dimension="d", op=FilterOp.EQ, values=(1, 2))

    def test_between_needs_ordered_pair(self):
        with pytest.raises(QueryError):
            Filter(dimension="d", op=FilterOp.BETWEEN, values=(5, 1))

    def test_in_needs_values(self):
        with pytest.raises(QueryError):
            Filter(dimension="d", op=FilterOp.IN, values=())

    def test_query_needs_aggregation(self):
        with pytest.raises(QueryError):
            Query.build("t", [])


class TestExecution:
    @pytest.mark.parametrize("func", list(AggFunc))
    def test_global_aggregates_match_oracle(self, loaded_storage, func):
        storage, rows = loaded_storage
        query = Query.build("events", [Aggregation(func, "clicks")])
        result = storage.execute(query).finalize()
        expected = oracle(rows, agg=(func.value, "clicks"))[()]
        assert result.scalar() == pytest.approx(expected)

    def test_eq_filter_matches_oracle(self, loaded_storage):
        storage, rows = loaded_storage
        flt = Filter.eq("day", 3)
        query = Query.build(
            "events", [Aggregation(AggFunc.SUM, "clicks")], filters=[flt]
        )
        result = storage.execute(query).finalize()
        expected = oracle(rows, filters=[flt]).get((), 0.0)
        got = result.scalar() if result.rows else 0.0
        assert got == pytest.approx(expected)

    def test_between_filter_matches_oracle(self, loaded_storage):
        storage, rows = loaded_storage
        flt = Filter.between("day", 5, 20)
        query = Query.build(
            "events", [Aggregation(AggFunc.COUNT, "clicks")], filters=[flt]
        )
        result = storage.execute(query).finalize()
        assert result.scalar() == pytest.approx(
            oracle(rows, filters=[flt], agg=("count", "clicks"))[()]
        )

    def test_in_filter_matches_oracle(self, loaded_storage):
        storage, rows = loaded_storage
        flt = Filter.isin("country", [1, 5, 99])
        query = Query.build(
            "events", [Aggregation(AggFunc.SUM, "cost")], filters=[flt]
        )
        result = storage.execute(query).finalize()
        expected = oracle(rows, filters=[flt], agg=("sum", "cost")).get((), 0.0)
        got = result.scalar() if result.rows else 0.0
        assert got == pytest.approx(expected)

    def test_group_by_matches_oracle(self, loaded_storage):
        storage, rows = loaded_storage
        query = Query.build(
            "events", [Aggregation(AggFunc.AVG, "clicks")], group_by=["day"]
        )
        result = storage.execute(query).finalize()
        expected = oracle(rows, group_by=["day"], agg=("avg", "clicks"))
        got = {(int(r[0]),): r[1] for r in result.rows}
        assert set(got) == set(expected)
        for key in expected:
            assert got[key] == pytest.approx(expected[key])

    def test_group_by_two_dims_with_filter(self, loaded_storage):
        storage, rows = loaded_storage
        flt = Filter.between("country", 0, 49)
        query = Query.build(
            "events",
            [Aggregation(AggFunc.SUM, "clicks")],
            group_by=["day", "country"],
            filters=[flt],
        )
        result = storage.execute(query).finalize()
        expected = oracle(rows, filters=[flt], group_by=["day", "country"])
        got = {(int(r[0]), int(r[1])): r[2] for r in result.rows}
        assert got.keys() == expected.keys()
        for key in expected:
            assert got[key] == pytest.approx(expected[key])

    def test_pruning_reduces_bricks_scanned(self, loaded_storage):
        storage, __ = loaded_storage
        unfiltered = storage.execute(
            Query.build("events", [Aggregation(AggFunc.COUNT, "clicks")])
        )
        filtered = storage.execute(
            Query.build(
                "events",
                [Aggregation(AggFunc.COUNT, "clicks")],
                filters=[Filter.eq("day", 0)],
            )
        )
        assert filtered.bricks_scanned < unfiltered.bricks_scanned

    def test_execution_touches_bricks(self, loaded_storage):
        storage, __ = loaded_storage
        assert all(b.hotness == 0 for b in storage.bricks())
        storage.execute(
            Query.build("events", [Aggregation(AggFunc.COUNT, "clicks")])
        )
        assert all(b.hotness == 1.0 for b in storage.bricks())

    def test_unknown_filter_dimension_rejected(self, loaded_storage):
        storage, __ = loaded_storage
        with pytest.raises(QueryError):
            storage.execute(
                Query.build(
                    "events",
                    [Aggregation(AggFunc.COUNT, "clicks")],
                    filters=[Filter.eq("nope", 1)],
                )
            )

    def test_unknown_metric_rejected(self, loaded_storage):
        storage, __ = loaded_storage
        with pytest.raises(QueryError):
            storage.execute(
                Query.build("events", [Aggregation(AggFunc.SUM, "nope")])
            )

    def test_unknown_group_by_rejected(self, loaded_storage):
        storage, __ = loaded_storage
        with pytest.raises(QueryError):
            storage.execute(
                Query.build(
                    "events",
                    [Aggregation(AggFunc.SUM, "clicks")],
                    group_by=["nope"],
                )
            )

    def test_empty_result_when_nothing_matches(self, events_schema):
        storage = PartitionStorage(events_schema, 0)
        storage.insert({"day": 0, "country": 0, "clicks": 1.0, "cost": 1.0})
        result = storage.execute(
            Query.build(
                "events",
                [Aggregation(AggFunc.SUM, "clicks")],
                filters=[Filter.eq("day", 29)],
            )
        ).finalize()
        assert result.rows == []

    def test_execute_on_compressed_partition(self, loaded_storage):
        storage, rows = loaded_storage
        for brick in storage.bricks():
            brick.compress()
        result = storage.execute(
            Query.build("events", [Aggregation(AggFunc.SUM, "clicks")])
        ).finalize()
        assert result.scalar() == pytest.approx(oracle(rows)[()])


class TestPartialMerge:
    def test_merge_two_partitions_equals_whole(self, events_schema):
        rows = make_rows(events_schema, 400, seed=5)
        whole = PartitionStorage(events_schema, 0)
        whole.insert_many(rows)
        left = PartitionStorage(events_schema, 0)
        right = PartitionStorage(events_schema, 1)
        left.insert_many(rows[:200])
        right.insert_many(rows[200:])
        query = Query.build(
            "events", [Aggregation(AggFunc.AVG, "clicks")], group_by=["day"]
        )
        merged = left.execute(query).merge(right.execute(query)).finalize()
        expected = whole.execute(query).finalize()
        assert merged.rows == expected.rows

    def test_merge_different_queries_rejected(self, events_schema):
        a = PartialResult(
            query=Query.build("t", [Aggregation(AggFunc.SUM, "x")])
        )
        b = PartialResult(
            query=Query.build("t", [Aggregation(AggFunc.MAX, "x")])
        )
        with pytest.raises(QueryError):
            a.merge(b)

    def test_merge_different_group_bys_rejected(self, events_schema):
        """Same aggregations but different grouping: the group keys are
        incompatible tuples, so merging must fail loudly instead of
        producing silently wrong totals."""
        aggs = [Aggregation(AggFunc.SUM, "x")]
        a = PartialResult(query=Query.build("t", aggs, group_by=["day"]))
        b = PartialResult(
            query=Query.build("t", aggs, group_by=["day", "country"])
        )
        a.accumulate((1,), [2.0])
        b.accumulate((1, 5), [3.0])
        with pytest.raises(QueryError, match="group-by"):
            a.merge(b)

    def test_scalar_on_non_scalar_rejected(self, loaded_storage):
        storage, __ = loaded_storage
        result = storage.execute(
            Query.build(
                "events", [Aggregation(AggFunc.SUM, "clicks")], group_by=["day"]
            )
        ).finalize()
        with pytest.raises(QueryError):
            result.scalar()

    def test_to_dicts(self, loaded_storage):
        storage, __ = loaded_storage
        result = storage.execute(
            Query.build("events", [Aggregation(AggFunc.COUNT, "clicks")])
        ).finalize()
        assert result.to_dicts() == [{"count(clicks)": 800.0}]


class TestStorageInternals:
    def test_insert_routes_to_granular_brick(self, events_schema):
        storage = PartitionStorage(events_schema, 0)
        brick_id = storage.insert(
            {"day": 0, "country": 0, "clicks": 1.0, "cost": 1.0}
        )
        assert brick_id == 0
        brick_id2 = storage.insert(
            {"day": 29, "country": 99, "clicks": 1.0, "cost": 1.0}
        )
        assert brick_id2 == storage.index.total_bricks - 1

    def test_all_rows_roundtrip(self, events_schema):
        storage = PartitionStorage(events_schema, 0)
        rows = make_rows(events_schema, 50, seed=2)
        storage.insert_many(rows)
        recovered = storage.all_rows()
        assert len(recovered) == 50
        key = lambda r: tuple(sorted(r.items()))
        assert sorted(map(key, recovered)) == sorted(map(key, rows))

    def test_footprints(self, loaded_storage):
        storage, __ = loaded_storage
        assert storage.footprint_bytes() == storage.decompressed_bytes()
        for brick in storage.bricks():
            brick.compress()
        assert storage.footprint_bytes() < storage.decompressed_bytes()
