"""Tests for HAVING (post-aggregation filtering)."""

import pytest

from repro.cubrick.query import (
    AggFunc,
    Aggregation,
    CompareOp,
    Having,
    Query,
)
from repro.cubrick.sql import parse_query, render_query
from repro.cubrick.storage import PartitionStorage
from repro.errors import QueryError
from tests.conftest import make_rows


@pytest.fixture
def storage(events_schema):
    part = PartitionStorage(events_schema, 0)
    part.insert_many(make_rows(events_schema, 600, seed=41))
    return part


def day_sums(storage):
    result = storage.execute(
        Query.build(
            "events", [Aggregation(AggFunc.SUM, "clicks")], group_by=["day"]
        )
    ).finalize()
    return {int(k): v for k, v in result.rows}


class TestHavingExecution:
    @pytest.mark.parametrize("op,keep", [
        (CompareOp.GT, lambda v, t: v > t),
        (CompareOp.GE, lambda v, t: v >= t),
        (CompareOp.LT, lambda v, t: v < t),
        (CompareOp.LE, lambda v, t: v <= t),
    ])
    def test_operators_match_python(self, storage, op, keep):
        sums = day_sums(storage)
        threshold = sorted(sums.values())[len(sums) // 2]
        result = storage.execute(
            Query.build(
                "events",
                [Aggregation(AggFunc.SUM, "clicks")],
                group_by=["day"],
                having=[Having("sum(clicks)", op, threshold)],
            )
        ).finalize()
        got = {int(k) for k, __ in result.rows}
        expected = {d for d, v in sums.items() if keep(v, threshold)}
        assert got == expected

    def test_having_on_group_column(self, storage):
        result = storage.execute(
            Query.build(
                "events",
                [Aggregation(AggFunc.COUNT, "clicks")],
                group_by=["day"],
                having=[Having("day", CompareOp.LE, 4)],
            )
        ).finalize()
        assert {int(k) for k, __ in result.rows} == {0, 1, 2, 3, 4}

    def test_having_before_limit(self, storage):
        sums = day_sums(storage)
        threshold = sorted(sums.values())[-5]  # keep top-5 days
        result = storage.execute(
            Query.build(
                "events",
                [Aggregation(AggFunc.SUM, "clicks")],
                group_by=["day"],
                having=[Having("sum(clicks)", CompareOp.GE, threshold)],
                order_by="sum(clicks)",
                limit=3,
            )
        ).finalize()
        assert len(result.rows) == 3
        expected_top = sorted(sums.values(), reverse=True)[:3]
        assert [v for __, v in result.rows] == expected_top

    def test_having_split_invariance(self, events_schema):
        """HAVING applies only after the full merge, so a split dataset
        yields the same surviving groups."""
        rows = make_rows(events_schema, 400, seed=42)
        whole = PartitionStorage(events_schema, 0)
        whole.insert_many(rows)
        sums = day_sums(whole)
        threshold = sorted(sums.values())[len(sums) // 2]
        query = Query.build(
            "events",
            [Aggregation(AggFunc.SUM, "clicks")],
            group_by=["day"],
            having=[Having("sum(clicks)", CompareOp.GT, threshold)],
        )
        expected = whole.execute(query).finalize().rows
        left = PartitionStorage(events_schema, 0)
        right = PartitionStorage(events_schema, 1)
        left.insert_many(rows[:200])
        right.insert_many(rows[200:])
        merged = left.execute(query).merge(right.execute(query)).finalize()
        assert merged.rows == expected

    def test_invalid_having_column_rejected(self):
        with pytest.raises(QueryError):
            Query.build(
                "t",
                [Aggregation(AggFunc.SUM, "x")],
                having=[Having("nope", CompareOp.GT, 1)],
            )

    def test_having_none_values_dropped(self, storage):
        # avg of an empty group never exists here, but None-safety is a
        # contract of Having.matches.
        assert not Having("x", CompareOp.GT, 0).matches(None)


class TestHavingSql:
    def test_parse(self):
        query = parse_query(
            "SELECT sum(clicks) FROM events GROUP BY day "
            "HAVING sum(clicks) > 100"
        )
        assert query.having == (
            Having("sum(clicks)", CompareOp.GT, 100.0),
        )

    def test_parse_conjunction_and_ops(self):
        query = parse_query(
            "SELECT sum(c) FROM t GROUP BY d "
            "HAVING sum(c) >= 10 AND d < 5"
        )
        assert query.having[0].op is CompareOp.GE
        assert query.having[1].op is CompareOp.LT

    def test_render_roundtrip(self):
        query = Query.build(
            "events",
            [Aggregation(AggFunc.SUM, "clicks")],
            group_by=["day"],
            having=[Having("sum(clicks)", CompareOp.GT, 100.0),
                    Having("day", CompareOp.LE, 6.0)],
        )
        assert parse_query(render_query(query)) == query

    def test_unsupported_operator_rejected(self):
        with pytest.raises(QueryError):
            parse_query(
                "SELECT sum(c) FROM t GROUP BY d HAVING sum(c) between 1"
            )

    def test_end_to_end(self, tiny_deployment):
        result = tiny_deployment.sql(
            "SELECT count(clicks) FROM events GROUP BY day "
            "HAVING count(clicks) >= 10 ORDER BY count(clicks) DESC"
        )
        assert all(v >= 10 for __, v in result.rows)
