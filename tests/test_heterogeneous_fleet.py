"""Heterogeneous servers and dynamic capacities (paper §III-A3).

SM supports fleets mixing hardware generations: application servers
export per-host capacities, placement and balancing operate on relative
utilization, and capacities may be re-exported over time.
"""

import pytest

from repro.cluster.topology import Cluster
from repro.shardmanager.app_server import InMemoryApplicationServer
from repro.shardmanager.server import SMServer
from repro.shardmanager.spec import ServiceSpec
from repro.sim.engine import Simulator


def make_mixed_fleet(big_capacity=1000.0, small_capacity=250.0):
    """Half the hosts are 4x larger than the other half."""
    simulator = Simulator()
    cluster = Cluster.build(regions=1, racks_per_region=2, hosts_per_rack=4)
    server = SMServer(
        ServiceSpec(name="hetero", max_shards=10_000,
                    load_imbalance_tolerance=0.10),
        simulator, cluster, region="region0",
    )
    apps = {}
    for i, host in enumerate(cluster.hosts()):
        capacity = big_capacity if i % 2 == 0 else small_capacity
        app = InMemoryApplicationServer(host.host_id, capacity=capacity)
        apps[host.host_id] = app
        server.register_host(app)
    return simulator, cluster, server, apps


class TestHeterogeneousPlacement:
    def test_big_hosts_receive_proportionally_more(self):
        __, __c, server, apps = make_mixed_fleet()
        for shard in range(64):
            server.create_shard(shard, size_hint=10.0)
        big = sum(
            len(app.hosted_shards())
            for app in apps.values()
            if app.exported_capacity() == 1000.0
        )
        small = sum(
            len(app.hosted_shards())
            for app in apps.values()
            if app.exported_capacity() == 250.0
        )
        # Capacity ratio is 4:1; placement should reflect it roughly.
        assert big > 2 * small

    def test_utilization_evens_out_not_shard_counts(self):
        __, __c, server, apps = make_mixed_fleet()
        for shard in range(64):
            server.create_shard(shard, size_hint=10.0)
        server.collect_metrics()
        utils = [
            server.metrics.utilization(host_id)
            for host_id in server.registered_hosts()
        ]
        assert max(utils) / max(min(utils), 1e-9) < 2.5

    def test_balancer_levels_relative_utilization(self):
        __, __c, server, apps = make_mixed_fleet()
        for shard in range(32):
            server.create_shard(shard, size_hint=10.0)
        # Inflate a small host's shards so it runs proportionally hot.
        small_host, small_app = next(
            (h, a) for h, a in apps.items()
            if a.exported_capacity() == 250.0 and a.hosted_shards()
        )
        for shard in small_app.hosted_shards():
            small_app.set_shard_size(shard, 120.0)
        server.collect_metrics()
        before = server.metrics.utilization(small_host)
        for __ in range(3):
            server.run_load_balance()
            server.collect_metrics()
        after = server.metrics.utilization(small_host)
        assert after <= before


class TestDynamicCapacity:
    def test_capacity_re_export_changes_placement(self):
        simulator, __, server, apps = make_mixed_fleet(
            big_capacity=500.0, small_capacity=500.0
        )
        # One host shrinks its capacity drastically (e.g. co-located
        # workload claimed the memory).
        shrunk = next(iter(apps.values()))
        shrunk.set_capacity(10.0)
        server.collect_metrics()
        assert server.metrics.capacity(shrunk.host_id) == 10.0
        for shard in range(14):
            server.create_shard(shard, size_hint=30.0)
        # Shards with a 30-unit footprint no longer fit on the shrunken
        # host at all.
        assert len(shrunk.hosted_shards()) == 0

    def test_invalid_capacity_rejected(self):
        app = InMemoryApplicationServer("x", capacity=10.0)
        with pytest.raises(ValueError):
            app.set_capacity(0.0)
