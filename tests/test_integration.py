"""End-to-end integration scenarios across the whole stack.

These tests exercise the complete paper narrative: multi-tenant load,
failures during live traffic, region-level disasters, load balancing
under growth, and the full-vs-partial sharding comparison.
"""

import numpy as np
import pytest

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.core.fanout import ShardingMode
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.errors import QueryFailedError
from repro.sim.engine import DAY, HOUR
from repro.sim.failures import MtbfFailureModel
from repro.workloads.fanout_experiment import probe_schema, run_fanout_experiment
from repro.workloads.queries import simple_probe_query
from repro.workloads.tables import default_schema, generate_rows
from tests.conftest import make_rows


def count_query(table):
    return Query.build(table, [Aggregation(AggFunc.COUNT, "value")])


class TestMultiTenant:
    def test_many_tables_loaded_and_queried(self):
        deployment = CubrickDeployment(
            DeploymentConfig(seed=11, regions=2, racks_per_region=2,
                             hosts_per_rack=6)
        )
        rng = np.random.default_rng(0)
        tables = []
        for i in range(10):
            schema = default_schema(f"tenant_{i}")
            deployment.create_table(schema)
            rows = list(generate_rows(schema, 100 + i * 30, rng))
            deployment.load(schema.name, rows)
            tables.append((schema.name, len(rows)))
        deployment.simulator.run_until(60.0)
        for name, expected in tables:
            result = deployment.query(count_query(name))
            assert result.scalar() == expected

    def test_partial_sharding_bounds_fanout(self):
        deployment = CubrickDeployment(
            DeploymentConfig(seed=12, regions=1, racks_per_region=4,
                             hosts_per_rack=8)  # 32 hosts
        )
        schema = default_schema("bounded")
        deployment.create_table(schema)
        deployment.load(
            "bounded", list(generate_rows(schema, 200, np.random.default_rng(1)))
        )
        # Partial sharding: 8 partitions regardless of the 32 hosts.
        assert deployment.catalog.get("bounded").num_partitions == 8
        assert deployment.table_fanout("bounded") <= 8


class TestFailuresDuringTraffic:
    def test_week_of_traffic_with_mtbf_failures(self):
        # More hosts than partitions per region, so failovers always have
        # a collision-free target (8 partitions, 12 hosts).
        deployment = CubrickDeployment(
            DeploymentConfig(seed=13, regions=3, racks_per_region=3,
                             hosts_per_rack=4)
        )
        schema = probe_schema("steady")
        deployment.create_table(schema)
        rng = np.random.default_rng(5)
        deployment.load(
            "steady",
            [{"bucket": int(rng.integers(64)), "value": 1.0} for __ in range(200)],
        )
        deployment.simulator.run_until(60.0)
        injector = deployment.start_failure_injection(
            MtbfFailureModel(mtbf=2 * DAY, mttr=20 * 60.0,
                             permanent_fraction=0.2),
            until=2 * DAY,
        )
        probe = simple_probe_query(schema)
        successes = 0
        total = 0
        for hour in range(1, 48):
            deployment.simulator.run_until(60.0 + hour * HOUR)
            total += 1
            try:
                result = deployment.query(probe)
            except QueryFailedError:
                continue
            assert result.scalar() == 200.0
            successes += 1
        # Failures happened...
        assert injector.events
        # ... but cross-region retries kept nearly all queries working.
        assert successes / total > 0.9

    def test_permanent_failure_triggers_failover_and_repair_log(self):
        deployment = CubrickDeployment(
            DeploymentConfig(seed=14, regions=2, racks_per_region=2,
                             hosts_per_rack=5)
        )
        schema = probe_schema("ft")
        deployment.create_table(schema)
        deployment.load("ft", [{"bucket": 1, "value": 1.0}] * 50)
        deployment.simulator.run_until(30.0)

        sm = deployment.sm_servers["region0"]
        victim = next(h for h in sm.registered_hosts() if sm.shards_on_host(h))
        lost_shards = set(sm.shards_on_host(victim))
        deployment.automation.handle_host_failure(victim, permanent=True)
        deployment.simulator.run_until(300.0)

        # SM failed the shards over inside the region.
        for shard in lost_shards:
            new_owner = sm.discovery.resolve_authoritative(shard)
            assert new_owner != victim
        assert deployment.automation.repairs_per_day(1)[0] == 1
        # Data for the failed partitions is empty in region0 (recovered
        # metadata only), so region0 queries undercount — the proxy must
        # still return the right answer via region1.
        result = deployment.query(simple_probe_query(schema))
        assert result.scalar() == 50.0


class TestRegionDisaster:
    def test_full_region_offline_is_transparent(self):
        deployment = CubrickDeployment(
            DeploymentConfig(seed=15, regions=3, racks_per_region=2,
                             hosts_per_rack=3)
        )
        schema = probe_schema("dr")
        deployment.create_table(schema)
        deployment.load("dr", [{"bucket": 2, "value": 3.0}] * 40)
        deployment.simulator.run_until(30.0)
        deployment.cluster.set_region_available("region0", False)
        result = deployment.query(simple_probe_query(schema))
        assert result.scalar() == 40.0
        assert result.metadata["region"] != "region0"
        deployment.cluster.set_region_available("region0", True)


class TestLoadBalancing:
    def test_growth_triggers_balancing_migrations(self):
        deployment = CubrickDeployment(
            DeploymentConfig(seed=16, regions=1, racks_per_region=3,
                             hosts_per_rack=6)
        )
        rng = np.random.default_rng(2)
        # A handful of tables, one of which grows much bigger.
        for i in range(6):
            schema = default_schema(f"t{i}")
            deployment.create_table(schema)
            count = 2000 if i == 0 else 100
            deployment.load(
                schema.name, list(generate_rows(schema, count, rng))
            )
        sm = deployment.sm_servers["region0"]
        sm.collect_metrics()
        before = sm.balancer.imbalance("region0")
        for __ in range(5):
            sm.run_load_balance()
            sm.collect_metrics()
        after = sm.balancer.imbalance("region0")
        assert after <= before
        assert sm.migrations.count_by_reason().get("load_balance", 0) >= 0

    def test_queries_survive_live_migration(self):
        deployment = CubrickDeployment(
            DeploymentConfig(seed=17, regions=1, racks_per_region=3,
                             hosts_per_rack=6)
        )
        schema = probe_schema("mig")
        deployment.create_table(schema)
        deployment.load("mig", [{"bucket": 5, "value": 2.0}] * 60)
        deployment.simulator.run_until(30.0)

        sm = deployment.sm_servers["region0"]
        donor = next(h for h in sm.registered_hosts() if sm.shards_on_host(h))
        moved = sm.drain_host(donor)
        assert moved > 0
        # Immediately (stale mappings) and after propagation.
        probe = simple_probe_query(schema)
        assert deployment.query(probe).scalar() == 60.0
        deployment.simulator.run_until(120.0)
        assert deployment.query(probe).scalar() == 60.0


class TestFullVersusPartial:
    def test_fanout_experiment_end_to_end(self):
        deployment = CubrickDeployment(
            DeploymentConfig(seed=18, regions=2, racks_per_region=2,
                             hosts_per_rack=4)
        )
        deployment.simulator.run_until(1.0)
        result = run_fanout_experiment(
            deployment, [1, 4, 8], queries_per_table=150, rows_per_table=64
        )
        fanouts = [row.fanout for row in result.rows]
        assert fanouts == [1, 4, 8]
        p99 = dict(result.series("p99"))
        assert p99[8] > p99[1]

    def test_full_sharding_fans_out_everywhere(self):
        config = DeploymentConfig(
            seed=19, regions=1, racks_per_region=3, hosts_per_rack=4,
            mode=ShardingMode.FULL,
        )
        deployment = CubrickDeployment(config)
        schema = probe_schema("wide")
        deployment.create_table(schema)
        rng = np.random.default_rng(3)
        deployment.load(
            "wide",
            [{"bucket": int(rng.integers(64)), "value": 1.0} for __ in range(600)],
        )
        assert deployment.table_fanout("wide") == 12
        deployment.simulator.run_until(30.0)
        result = deployment.query(simple_probe_query(schema))
        assert result.metadata["fanout"] == 12

    def test_partial_beats_full_on_success_ratio(self):
        """The paper's core claim measured end-to-end: same cluster, same
        per-visit failure probability — the fully-sharded table misses
        its SLA while the partially-sharded one holds it."""
        failure_p = 0.01  # exaggerated so the effect shows at test scale

        def run(mode):
            deployment = CubrickDeployment(
                DeploymentConfig(
                    seed=20, regions=1, racks_per_region=4, hosts_per_rack=8,
                    mode=mode, query_failure_probability=failure_p,
                )
            )
            schema = probe_schema("sla")
            deployment.create_table(schema)
            rng = np.random.default_rng(4)
            deployment.load(
                "sla",
                [{"bucket": int(rng.integers(64)), "value": 1.0}
                 for __ in range(320)],
            )
            deployment.simulator.run_until(30.0)
            probe = simple_probe_query(schema)
            ok = 0
            for __ in range(300):
                try:
                    deployment.query(probe)
                    ok += 1
                except QueryFailedError:
                    pass
            return ok / 300

        partial = run(ShardingMode.PARTIAL)  # fan-out 8
        full = run(ShardingMode.FULL)  # fan-out 32
        assert partial > full
