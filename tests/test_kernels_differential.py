"""Differential tests: vectorised scan kernels vs a per-row reference.

Randomized queries (filters x group-bys x every :class:`AggFunc`, with
and without joins) run through ``PartitionStorage.execute`` AND a naive
pure-Python reference that accumulates one row at a time through the
``PartialResult`` state machinery. Finalized results must be *exactly*
equal — no tolerances. Metric values are multiples of 1/8 with sums far
below 2**53, so they are exactly representable and every summation
order produces the same float: any kernel discrepancy surfaces as a
hard mismatch rather than rounding noise.

The storage under test mixes plain, zlib-compressed and SSD-evicted
bricks, so the kernels are also exercised over decompressed
``np.frombuffer`` views and reloaded blobs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubrick.query import (
    AggFunc,
    Aggregation,
    Filter,
    Join,
    PartialResult,
    Query,
)
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.cubrick.storage import PartitionStorage

SCHEMA = TableSchema.build(
    "facts",
    dimensions=[
        Dimension("day", 30, range_size=5),
        Dimension("country", 50, range_size=10),
        Dimension("user", 200, range_size=40),
    ],
    metrics=[Metric("clicks"), Metric("cost")],
)

ROWS = 4_000

def _build_lookups(rng: np.random.Generator) -> dict:
    """dotted reference -> (fact_key, lookup array), hand-built the way
    a node derives them from its replicated-table copy. lookup[key] is
    the joined attribute, -1 where the key is absent from the dimension
    table (inner-join drop)."""
    tier = rng.integers(0, 5, size=200)
    tier[rng.random(200) < 0.15] = -1  # users missing from dim table
    return {"dim_users.tier": ("user", tier)}


def _build_storage(rng: np.random.Generator) -> PartitionStorage:
    storage = PartitionStorage(SCHEMA, 0)
    columns = {
        "day": rng.integers(30, size=ROWS),
        "country": rng.integers(50, size=ROWS),
        "user": rng.integers(200, size=ROWS),
        # Multiples of 1/8 — exactly representable at any summation order.
        "clicks": rng.integers(0, 100, size=ROWS).astype(np.float64),
        "cost": rng.integers(0, 800, size=ROWS) / 8.0,
    }
    storage.insert_columns(columns)
    # A few rows through the row-at-a-time path too (pending buffers).
    for __ in range(50):
        storage.insert(
            {
                "day": int(rng.integers(30)),
                "country": int(rng.integers(50)),
                "user": int(rng.integers(200)),
                "clicks": float(rng.integers(0, 100)),
                "cost": float(rng.integers(0, 800)) / 8.0,
            }
        )
    _cycle_brick_states(storage)
    return storage


def _cycle_brick_states(storage: PartitionStorage) -> None:
    """Mix brick states: every third brick compressed, every fifth
    evicted all the way to SSD (queries transparently restore them, so
    the randomized run re-applies this periodically)."""
    for i, brick in enumerate(storage.bricks()):
        if i % 5 == 0:
            brick.evict()
        elif i % 3 == 0:
            brick.compress()


@pytest.fixture(scope="module")
def loaded():
    rng = np.random.default_rng(2024)
    storage = _build_storage(rng)
    states = [(b.is_compressed, b.is_evicted) for b in storage.bricks()]
    return storage, _build_lookups(rng), states


# ----------------------------------------------------------------------
# The reference: one row at a time through the PartialResult machinery
# ----------------------------------------------------------------------


def _row_state(func: AggFunc, value):
    if func is AggFunc.COUNT:
        return 1.0
    if func is AggFunc.AVG:
        return (float(value), 1.0)
    if func is AggFunc.COUNT_DISTINCT:
        return frozenset({value})
    return float(value)  # SUM / MIN / MAX


def _matches(flt: Filter, value) -> bool:
    if flt.op.value == "eq":
        return value == flt.values[0]
    if flt.op.value == "in":
        return value in flt.values
    return flt.values[0] <= value <= flt.values[1]  # BETWEEN


def reference_execute(
    storage: PartitionStorage,
    query: Query,
    lookups: dict[str, tuple[str, np.ndarray]],
) -> PartialResult:
    """Row-at-a-time evaluation with no numpy in the aggregate path."""
    partial = PartialResult(query=query)
    joined = query.joined_columns()
    for brick in storage.bricks():
        arrays = brick.columns()
        names = list(arrays)
        column_lists = [arrays[name].tolist() for name in names]
        for values in zip(*column_lists):
            row = dict(zip(names, values))

            def resolve(name: str):
                if "." in name:
                    fact_key, lookup = lookups[name]
                    return int(lookup[int(row[fact_key])])
                return row[name]

            if any(not _matches(f, resolve(f.dimension)) for f in query.filters):
                continue
            if any(resolve(name) < 0 for name in joined):
                continue  # inner join: key missing from dimension table
            key = tuple(int(resolve(dim)) for dim in query.group_by)
            partial.accumulate(
                key,
                [
                    _row_state(agg.func, row.get(agg.metric))
                    for agg in query.aggregations
                ],
            )
    return partial


# ----------------------------------------------------------------------
# Randomized query generation
# ----------------------------------------------------------------------

ALL_AGGS = [
    Aggregation(AggFunc.SUM, "cost"),
    Aggregation(AggFunc.COUNT, "cost"),
    Aggregation(AggFunc.MIN, "cost"),
    Aggregation(AggFunc.MAX, "clicks"),
    Aggregation(AggFunc.AVG, "clicks"),
    Aggregation(AggFunc.COUNT_DISTINCT, "clicks"),
]

GROUP_CHOICES = [
    [],
    ["day"],
    ["country"],
    ["day", "country"],
    ["user", "day"],
    ["dim_users.tier"],
    ["dim_users.tier", "day"],
]


def _random_filters(rng: np.random.Generator) -> list[Filter]:
    filters = []
    if rng.random() < 0.5:
        filters.append(Filter.between("day", int(rng.integers(0, 15)),
                                      int(rng.integers(15, 30))))
    if rng.random() < 0.4:
        filters.append(
            Filter.isin("country", rng.integers(0, 50, size=8).tolist())
        )
    if rng.random() < 0.3:
        filters.append(Filter.eq("dim_users.tier", int(rng.integers(0, 5))))
    return filters


def _random_query(rng: np.random.Generator) -> Query:
    group_by = GROUP_CHOICES[int(rng.integers(len(GROUP_CHOICES)))]
    filters = _random_filters(rng)
    joins = []
    if any("." in name for name in [*group_by, *(f.dimension for f in filters)]):
        joins.append(Join(table="dim_users", fact_key="user", dim_key="id"))
    n_aggs = int(rng.integers(1, len(ALL_AGGS) + 1))
    picked = [ALL_AGGS[i] for i in rng.permutation(len(ALL_AGGS))[:n_aggs]]
    return Query.build(
        "facts", picked, group_by=group_by, filters=filters, joins=joins
    )


# ----------------------------------------------------------------------
# Tests
# ----------------------------------------------------------------------


def _assert_identical(storage, query, lookups):
    engine = storage.execute(query, lookups).finalize()
    reference = reference_execute(storage, query, lookups).finalize()
    assert engine.columns == reference.columns
    assert engine.rows == reference.rows, (
        f"kernel/reference divergence for {query}"
    )


@pytest.mark.parametrize("func", list(AggFunc))
def test_every_agg_func_matches_reference(loaded, func):
    storage, lookups, __ = loaded
    query = Query.build(
        "facts",
        [Aggregation(func, "cost")],
        group_by=["day", "country"],
    )
    _assert_identical(storage, query, lookups)


def test_randomized_queries_match_reference(loaded):
    storage, lookups, __ = loaded
    rng = np.random.default_rng(7)
    for i in range(60):
        if i % 15 == 0:
            # Queries transparently decompress/un-evict; re-mix the
            # brick states so later queries hit those paths again.
            _cycle_brick_states(storage)
        _assert_identical(storage, _random_query(rng), lookups)


def test_ungrouped_and_filtered_paths(loaded):
    storage, lookups, __ = loaded
    query = Query.build(
        "facts",
        [Aggregation(f, "cost") for f in AggFunc],
        filters=[Filter.between("day", 3, 11)],
    )
    _assert_identical(storage, query, lookups)


def test_joined_group_by_matches_reference(loaded):
    storage, lookups, __ = loaded
    query = Query.build(
        "facts",
        [Aggregation(AggFunc.SUM, "cost"), Aggregation(AggFunc.AVG, "clicks")],
        group_by=["dim_users.tier"],
        joins=[Join(table="dim_users", fact_key="user", dim_key="id")],
    )
    _assert_identical(storage, query, lookups)


def test_mixed_brick_states_covered(loaded):
    """The fixture must actually have covered compressed + evicted
    bricks (states captured at build time — queries restore bricks to
    memory as they touch them)."""
    storage, __, states = loaded
    assert any(evicted for __, evicted in states)
    assert sum(compressed for compressed, __ in states) >= 1
    for brick in storage.bricks():
        brick.columns()  # forces any still-evicted brick through an IO
    assert any(b.io_reads > 0 for b in storage.bricks())


# ----------------------------------------------------------------------
# Dictionary-encoded columns
# ----------------------------------------------------------------------

ENCODED_SCHEMA = TableSchema.build(
    "facts_enc",
    dimensions=[
        Dimension("day", 30, range_size=5),
        Dimension("country", 50, range_size=10),
        # Forced below the cardinality heuristic: every scan of `user`
        # goes through the per-brick dictionary codes.
        Dimension("user", 200, range_size=40, dict_encode=True),
    ],
    metrics=[Metric("clicks"), Metric("cost")],
)


@pytest.fixture(scope="module")
def loaded_encoded():
    rng = np.random.default_rng(4096)
    storage = PartitionStorage(ENCODED_SCHEMA, 0)
    columns = {
        "day": rng.integers(30, size=ROWS),
        "country": rng.integers(50, size=ROWS),
        "user": rng.integers(200, size=ROWS),
        "clicks": rng.integers(0, 100, size=ROWS).astype(np.float64),
        "cost": rng.integers(0, 800, size=ROWS) / 8.0,
    }
    storage.insert_columns(columns)
    # Row appends after the bulk load: the per-brick dictionaries must
    # extend incrementally instead of going stale.
    for __ in range(100):
        storage.insert(
            {
                "day": int(rng.integers(30)),
                "country": int(rng.integers(50)),
                "user": int(rng.integers(200)),
                "clicks": float(rng.integers(0, 100)),
                "cost": float(rng.integers(0, 800)) / 8.0,
            }
        )
    _cycle_brick_states(storage)
    return storage, _build_lookups(rng)


def test_encoded_dimension_is_actually_encoded(loaded_encoded):
    storage, lookups = loaded_encoded
    query = Query.build(
        "facts_enc", [Aggregation(AggFunc.SUM, "cost")], group_by=["user"]
    )
    _assert_identical(storage, query, lookups)
    # The scan above must have materialised user dictionaries.
    stats = [b.stats() for b in storage.bricks()]
    assert any(s.encoded_columns > 0 for s in stats)
    assert any(s.dictionary_entries > 0 for s in stats)


def test_encoded_group_by_and_distinct_match_reference(loaded_encoded):
    storage, lookups = loaded_encoded
    queries = [
        Query.build(
            "facts_enc",
            [Aggregation(f, "cost") for f in AggFunc],
            group_by=["user", "day"],
        ),
        Query.build(
            "facts_enc",
            # COUNT_DISTINCT over the encoded column itself: distinct
            # codes are distinct values.
            [Aggregation(AggFunc.COUNT_DISTINCT, "user")],
            group_by=["day"],
        ),
        Query.build(
            "facts_enc",
            [Aggregation(AggFunc.COUNT_DISTINCT, "user")],
        ),
        Query.build(
            "facts_enc",
            [Aggregation(AggFunc.AVG, "clicks")],
            group_by=["user"],
            filters=[Filter.between("day", 5, 20)],
        ),
    ]
    for query in queries:
        _assert_identical(storage, query, lookups)


def test_encoded_randomized_queries_match_reference(loaded_encoded):
    storage, lookups = loaded_encoded
    rng = np.random.default_rng(99)
    for i in range(30):
        if i % 10 == 0:
            _cycle_brick_states(storage)
        query = _random_query(rng)
        query = Query.build(
            "facts_enc",
            list(query.aggregations),
            group_by=list(query.group_by),
            filters=list(query.filters),
            joins=list(query.joins),
        )
        _assert_identical(storage, query, lookups)


# ----------------------------------------------------------------------
# High-cardinality group-bys (>= 100k groups)
# ----------------------------------------------------------------------

HC_SCHEMA = TableSchema.build(
    "facts_hc",
    dimensions=[
        Dimension("day", 4),
        Dimension("entity", 150_000),  # auto dict-encoded (>= 1024)
    ],
    metrics=[Metric("cost")],
)


def test_high_cardinality_group_by_matches_reference():
    rows = 160_000
    rng = np.random.default_rng(31)
    storage = PartitionStorage(HC_SCHEMA, 0)
    storage.insert_columns({
        "day": rng.integers(4, size=rows),
        "entity": rng.integers(150_000, size=rows),
        "cost": rng.integers(0, 800, size=rows) / 8.0,
    })
    query = Query.build(
        "facts_hc",
        [
            Aggregation(AggFunc.SUM, "cost"),
            Aggregation(AggFunc.MIN, "cost"),
            Aggregation(AggFunc.COUNT_DISTINCT, "cost"),
        ],
        group_by=["entity", "day"],
    )
    engine = storage.execute(query, {}).finalize()
    assert len(engine.rows) >= 100_000, "fixture must exceed 100k groups"
    reference = reference_execute(storage, query, {}).finalize()
    assert engine.columns == reference.columns
    assert engine.rows == reference.rows


# ----------------------------------------------------------------------
# Empty / single-group edge cases
# ----------------------------------------------------------------------


def test_empty_result_matches_reference(loaded):
    storage, lookups, __ = loaded
    query = Query.build(
        "facts",
        [Aggregation(f, "cost") for f in AggFunc],
        group_by=["day", "country"],
        # day is bounded by 30; IN {29} ∧ BETWEEN [0, 5] is empty.
        filters=[Filter.isin("day", [29]), Filter.between("day", 0, 5)],
    )
    engine = storage.execute(query, lookups).finalize()
    assert engine.rows == []
    _assert_identical(storage, query, lookups)


def test_single_group_matches_reference(loaded):
    storage, lookups, __ = loaded
    query = Query.build(
        "facts",
        [Aggregation(f, "cost") for f in AggFunc],
        group_by=["day"],
        filters=[Filter.eq("day", 7)],
    )
    engine = storage.execute(query, lookups).finalize()
    assert len(engine.rows) == 1
    _assert_identical(storage, query, lookups)


def test_empty_storage_matches_reference():
    storage = PartitionStorage(SCHEMA, 0)
    for group_by in ([], ["day"]):
        query = Query.build(
            "facts",
            [Aggregation(f, "cost") for f in AggFunc],
            group_by=group_by,
        )
        _assert_identical(storage, query, {})
