"""Tests for the streaming loader and COUNT DISTINCT."""

import numpy as np
import pytest

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.partitioning import PartitioningPolicy
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.cubrick.storage import PartitionStorage
from repro.errors import ConfigurationError, QueryError
from repro.workloads.fanout_experiment import probe_schema
from tests.conftest import make_rows


def count_query(table):
    return Query.build(table, [Aggregation(AggFunc.COUNT, "value")])


@pytest.fixture
def deployment():
    # 16 hosts per region so a re-partition to 16 partitions still finds
    # collision-free placements.
    deployment = CubrickDeployment(
        DeploymentConfig(
            seed=66, regions=2, racks_per_region=4, hosts_per_rack=4,
            partitioning=PartitioningPolicy(
                max_rows_per_partition=300, min_rows_per_partition=10
            ),
        )
    )
    deployment.create_table(probe_schema("stream"))
    deployment.simulator.run_until(30.0)
    return deployment


def stream_rows(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        {"bucket": int(rng.integers(64)), "value": float(rng.integers(1, 10))}
        for __ in range(n)
    ]


class TestStreamingLoader:
    def test_append_buffers_until_batch(self, deployment):
        loader = deployment.loader("stream", batch_rows=100)
        for row in stream_rows(50):
            loader.append(row)
        assert loader.buffered_rows == 50
        assert loader.stats.rows_flushed == 0

    def test_full_batches_flush_automatically(self, deployment):
        loader = deployment.loader("stream", batch_rows=10)
        loader.append_many(stream_rows(500))
        assert loader.stats.batches_flushed > 0
        assert loader.stats.rows_flushed > 0

    def test_flush_writes_everything_to_all_regions(self, deployment):
        loader = deployment.loader("stream", batch_rows=10_000)
        loader.append_many(stream_rows(250))
        loader.flush()
        assert loader.buffered_rows == 0
        assert loader.stats.rows_flushed == 250
        for coordinator in deployment.coordinators.values():
            result = coordinator.execute(count_query("stream"))
            assert result.scalar() == 250.0

    def test_loaded_data_is_queryable(self, deployment):
        loader = deployment.loader("stream", batch_rows=64)
        rows = stream_rows(300, seed=3)
        loader.append_many(rows)
        loader.flush()
        result = deployment.query(
            Query.build("stream", [Aggregation(AggFunc.SUM, "value")])
        )
        assert result.scalar() == pytest.approx(sum(r["value"] for r in rows))

    def test_rebucket_after_midstream_repartition(self, deployment):
        loader = deployment.loader("stream", batch_rows=10_000)
        loader.append_many(stream_rows(3000, seed=4))
        loader.flush()
        # Grow the table while more rows sit in the loader's buffers.
        loader.append_many(stream_rows(100, seed=5))
        assert deployment.maybe_repartition("stream")
        deployment.simulator.run_until(deployment.simulator.now + 30.0)
        loader.flush()
        assert loader.stats.reroutes == 100
        result = deployment.query(count_query("stream"))
        assert result.scalar() == 3100.0

    def test_invalid_rows_rejected_before_buffering(self, deployment):
        loader = deployment.loader("stream")
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            loader.append({"bucket": 64, "value": 1.0})  # out of domain
        assert loader.buffered_rows == 0

    def test_replicated_table_rejected(self, deployment):
        dim = TableSchema.build("d", [Dimension("k", 5)], [])
        deployment.create_table(dim, replicated=True)
        with pytest.raises(ConfigurationError):
            deployment.loader("d")

    def test_invalid_batch_size_rejected(self, deployment):
        with pytest.raises(ConfigurationError):
            deployment.loader("stream", batch_rows=0)

    def test_flush_survives_owner_migration(self, deployment):
        loader = deployment.loader("stream", batch_rows=10_000)
        loader.append_many(stream_rows(100, seed=6))
        loader.flush()
        # Drain a host holding data: ownership moves.
        sm = deployment.sm_servers["region0"]
        victim = next(
            h for h in sm.registered_hosts() if sm.shards_on_host(h)
        )
        sm.drain_host(victim)
        loader.append_many(stream_rows(100, seed=7))
        loader.flush()  # re-resolves the authoritative owner
        deployment.simulator.run_until(deployment.simulator.now + 60.0)
        result = deployment.query(count_query("stream"))
        assert result.scalar() == 200.0


class TestCountDistinct:
    @pytest.fixture
    def storage(self, events_schema):
        part = PartitionStorage(events_schema, 0)
        part.insert_many(make_rows(events_schema, 500, seed=21))
        return part

    def test_distinct_dimension(self, storage, events_schema):
        rows = make_rows(events_schema, 500, seed=21)
        expected = len({r["country"] for r in rows})
        result = storage.execute(
            Query.build(
                "events", [Aggregation(AggFunc.COUNT_DISTINCT, "country")]
            )
        ).finalize()
        assert result.scalar() == expected

    def test_distinct_metric(self, storage, events_schema):
        rows = make_rows(events_schema, 500, seed=21)
        expected = len({r["clicks"] for r in rows})
        result = storage.execute(
            Query.build(
                "events", [Aggregation(AggFunc.COUNT_DISTINCT, "clicks")]
            )
        ).finalize()
        assert result.scalar() == expected

    def test_distinct_with_group_by(self, storage, events_schema):
        rows = make_rows(events_schema, 500, seed=21)
        expected = {}
        for row in rows:
            expected.setdefault(row["day"], set()).add(row["country"])
        result = storage.execute(
            Query.build(
                "events",
                [Aggregation(AggFunc.COUNT_DISTINCT, "country")],
                group_by=["day"],
            )
        ).finalize()
        got = {int(k): v for k, v in result.rows}
        assert got == {day: float(len(s)) for day, s in expected.items()}

    def test_distinct_merges_across_partitions(self, events_schema):
        """The crucial distinct property: overlap between partitions must
        not be double-counted."""
        rows = make_rows(events_schema, 400, seed=22)
        left = PartitionStorage(events_schema, 0)
        right = PartitionStorage(events_schema, 1)
        left.insert_many(rows[:250])
        right.insert_many(rows[150:])  # 100 rows overlap
        query = Query.build(
            "events", [Aggregation(AggFunc.COUNT_DISTINCT, "country")]
        )
        merged = left.execute(query).merge(right.execute(query)).finalize()
        expected = len({r["country"] for r in rows[:250]} |
                       {r["country"] for r in rows[150:]})
        assert merged.scalar() == expected

    def test_distinct_unknown_column_rejected(self, storage):
        with pytest.raises(QueryError):
            storage.execute(
                Query.build(
                    "events", [Aggregation(AggFunc.COUNT_DISTINCT, "nope")]
                )
            )

    def test_distinct_end_to_end(self, deployment):
        loader = deployment.loader("stream", batch_rows=100)
        rows = stream_rows(600, seed=9)
        loader.append_many(rows)
        loader.flush()
        result = deployment.query(
            Query.build(
                "stream", [Aggregation(AggFunc.COUNT_DISTINCT, "bucket")]
            )
        )
        assert result.scalar() == len({r["bucket"] for r in rows})
