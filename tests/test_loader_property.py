"""Property test: the streaming loader never loses or duplicates rows.

Under arbitrary interleavings of appends, flushes and mid-stream
re-partitions, the total row count visible to queries must equal the
number of rows accepted — the exactly-once ingestion invariant.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.partitioning import PartitioningPolicy
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.workloads.fanout_experiment import probe_schema

# Each action is (kind, amount): append N rows, flush, or try repartition.
action_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(1, 120)),
        st.tuples(st.just("flush"), st.just(0)),
        st.tuples(st.just("repartition"), st.just(0)),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=15, deadline=None)
@given(actions=action_strategy, seed=st.integers(0, 10_000))
def test_loader_exactly_once(actions, seed):
    deployment = CubrickDeployment(
        DeploymentConfig(
            seed=7, regions=1, racks_per_region=4, hosts_per_rack=4,
            partitioning=PartitioningPolicy(
                max_rows_per_partition=80, min_rows_per_partition=2
            ),
        )
    )
    schema = probe_schema("prop_stream")
    deployment.create_table(schema)
    deployment.simulator.run_until(30.0)
    loader = deployment.loader("prop_stream", batch_rows=50)
    rng = np.random.default_rng(seed)

    accepted = 0
    for kind, amount in actions:
        if kind == "append":
            loader.append_many([
                {"bucket": int(rng.integers(64)),
                 "value": float(rng.integers(1, 5))}
                for __ in range(amount)
            ])
            accepted += amount
        elif kind == "flush":
            loader.flush()
        else:
            deployment.maybe_repartition("prop_stream")
            deployment.simulator.run_until(deployment.simulator.now + 30.0)
    loader.flush()
    deployment.simulator.run_until(deployment.simulator.now + 30.0)

    assert loader.stats.rows_accepted == accepted
    assert loader.stats.rows_flushed == accepted
    assert loader.buffered_rows == 0
    result = deployment.query(
        Query.build("prop_stream", [Aggregation(AggFunc.COUNT, "value")])
    )
    count = result.scalar() if result.rows else 0.0
    assert count == accepted
