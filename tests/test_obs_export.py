"""Exporter tests: Prometheus text, span JSONL, seeded byte-determinism.

The determinism class is the acceptance criterion made executable: two
identically-seeded profiled overload runs must produce byte-identical
Prometheus text, flamegraph folds, burn-alert timelines and span dumps.
"""

import json

import pytest

from repro.obs import MetricsRegistry, Observability, Profiler
from repro.obs.export import (
    prometheus_name,
    prometheus_text,
    spans_jsonl,
    write_text,
)


class TestPrometheusNames:
    def test_dots_become_underscores(self):
        assert (
            prometheus_name("cubrick.proxy.latency_seconds")
            == "cubrick_proxy_latency_seconds"
        )

    def test_leading_digit_is_guarded(self):
        assert prometheus_name("9lives") == "_9lives"

    def test_colons_survive(self):
        assert prometheus_name("ns:sub.metric") == "ns:sub_metric"


class TestPrometheusText:
    def test_counters_and_gauges_render_with_type_headers(self):
        metrics = MetricsRegistry()
        metrics.counter("q.count", region="r0").inc(5)
        metrics.gauge("q.depth").set(2.5)
        text = prometheus_text(metrics)
        assert "# TYPE q_count counter" in text
        assert 'q_count{region="r0"} 5' in text
        assert "# TYPE q_depth gauge" in text
        assert "q_depth 2.5" in text

    def test_histogram_renders_cumulative_buckets(self):
        metrics = MetricsRegistry()
        histogram = metrics.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            histogram.observe(value)
        lines = prometheus_text(metrics).splitlines()
        assert lines == [
            "# TYPE lat histogram",
            'lat_bucket{le="0.1"} 1',
            'lat_bucket{le="1"} 2',
            'lat_bucket{le="+Inf"} 3',
            "lat_sum 2.55",
            "lat_count 3",
        ]

    def test_label_values_are_escaped(self):
        metrics = MetricsRegistry()
        metrics.counter("c", path='a"b\\c').inc()
        text = prometheus_text(metrics)
        assert 'path="a\\"b\\\\c"' in text

    def test_instruments_emit_in_sorted_order(self):
        metrics = MetricsRegistry()
        metrics.counter("b.count").inc()
        metrics.counter("a.count", z="2").inc()
        metrics.counter("a.count", z="1").inc()
        lines = prometheus_text(metrics).splitlines()
        assert lines.index("# TYPE a_count counter") < lines.index(
            "# TYPE b_count counter"
        )
        assert lines.index('a_count{z="1"} 1') < lines.index(
            'a_count{z="2"} 1'
        )

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestSpansJsonl:
    def test_tree_flattens_with_parent_links(self):
        obs = Observability()
        with obs.tracer.span("root", table="t") as root:
            with obs.tracer.span("child") as child:
                child.annotate(rows=3)
                child.set_duration(0.5)
            root.set_duration(1.0)
        records = [
            json.loads(line) for line in spans_jsonl(obs).splitlines()
        ]
        assert len(records) == 2
        parent, child = records
        assert parent["parentSpanId"] == 0
        assert child["parentSpanId"] == parent["spanId"]
        assert parent["attributes"] == {"table": "t"}
        assert child["attributes"] == {"rows": 3}
        assert child["endTime"] == pytest.approx(0.5)
        assert parent["kind"] == "SPAN_KIND_INTERNAL"

    def test_lines_are_sorted_key_json(self):
        obs = Observability()
        with obs.tracer.span("root"):
            pass
        (line,) = spans_jsonl(obs).splitlines()
        assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_write_text_round_trips_bytes(self, tmp_path):
        path = tmp_path / "out.txt"
        write_text(str(path), "alpha 1\nbeta 2\n")
        assert path.read_text() == "alpha 1\nbeta 2\n"


@pytest.fixture(scope="module")
def profiled_pair():
    """The same seeded profiled overload run, executed twice."""
    from repro.workloads.loadgen import run_profiled_overload

    return (
        run_profiled_overload(seed=7, duration=4.0),
        run_profiled_overload(seed=7, duration=4.0),
    )


class TestSeededDeterminism:
    def test_reports_are_identical(self, profiled_pair):
        (report_a, *_), (report_b, *_) = profiled_pair
        assert report_a.render() == report_b.render()

    def test_prometheus_text_is_byte_identical(self, profiled_pair):
        (_, deploy_a, __, ___), (_, deploy_b, __, ___) = profiled_pair
        text_a = prometheus_text(deploy_a.obs.metrics)
        assert text_a == prometheus_text(deploy_b.obs.metrics)
        assert text_a  # the run produced metrics

    def test_flamegraph_folds_are_byte_identical(self, profiled_pair):
        (_, deploy_a, __, ___), (_, deploy_b, __, ___) = profiled_pair
        folds_a = Profiler(deploy_a.obs).folded()
        assert folds_a == Profiler(deploy_b.obs).folded()
        assert folds_a

    def test_span_dumps_are_byte_identical(self, profiled_pair):
        (_, deploy_a, __, ___), (_, deploy_b, __, ___) = profiled_pair
        dump_a = spans_jsonl(deploy_a.obs)
        assert dump_a == spans_jsonl(deploy_b.obs)
        assert dump_a

    def test_alert_timelines_and_ledgers_are_identical(self, profiled_pair):
        (*_, engine_a), (*_, engine_b) = profiled_pair
        assert engine_a.alert_timeline() == engine_b.alert_timeline()
        assert engine_a.render_ledger() == engine_b.render_ledger()
        assert engine_a.ledger() == engine_b.ledger()


class TestProfileCli:
    def test_profile_command_runs_and_writes_exports(self, tmp_path, capsys):
        from repro.cli import main

        flame = tmp_path / "flame.folded"
        prom = tmp_path / "metrics.prom"
        spans = tmp_path / "spans.jsonl"
        code = main([
            "profile", "--seed", "0", "--duration", "2", "--top", "1",
            "--flame", str(flame), "--prom", str(prom),
            "--spans", str(spans),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "== query profiles:" in out
        assert "error-budget ledger" in out
        assert "stages sum to" in out
        assert flame.read_text()
        assert prom.read_text().startswith("# TYPE")
        assert spans.read_text()
