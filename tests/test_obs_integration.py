"""Integration tests for cluster-wide telemetry.

Covers the PR's acceptance criteria end to end: a seeded run populates
instruments across every subsystem, traces are complete from the proxy
root down to per-host scans with durations that agree with the query's
reported latency, and two identically-seeded runs export byte-identical
telemetry.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.workloads.fanout_experiment import probe_schema, run_fanout_experiment
from repro.workloads.queries import simple_probe_query
from repro.workloads.tables import default_schema, generate_rows


def small_deployment(seed: int = 7) -> CubrickDeployment:
    return CubrickDeployment(
        DeploymentConfig(seed=seed, regions=2, racks_per_region=2,
                         hosts_per_rack=4)
    )


def run_seeded_fanout(seed: int) -> CubrickDeployment:
    deployment = small_deployment(seed)
    run_fanout_experiment(deployment, [1, 4], queries_per_table=25)
    return deployment


class TestInstrumentCoverage:
    def test_seeded_fanout_populates_many_subsystems(self):
        deployment = run_seeded_fanout(seed=7)
        snapshot = deployment.obs.metrics.snapshot()
        names = {entry["name"] for entry in snapshot}
        # The acceptance bar: >= 20 distinct instruments across at least
        # four subsystem prefixes.
        assert len(names) >= 20, sorted(names)
        prefixes = {name.split(".", 1)[0] for name in names}
        assert {"cubrick", "shardmanager", "sim", "workloads"} <= prefixes
        assert any(name.startswith("smc.") for name in names), sorted(names)

    def test_core_instruments_carry_real_traffic(self):
        deployment = run_seeded_fanout(seed=7)
        metrics = deployment.obs.metrics
        ok = metrics.get("cubrick.proxy.queries", outcome="ok")
        assert ok is not None and ok.value >= 40  # two fan-outs x 25 probes
        latency = metrics.get("cubrick.proxy.latency_seconds")
        assert latency.count == ok.value
        scanned = metrics.get("cubrick.storage.bricks_scanned",
                              table="fanout_0004")
        assert scanned is not None and scanned.value > 0

    def test_events_emitted_with_virtual_timestamps(self):
        deployment = run_seeded_fanout(seed=7)
        events = deployment.obs.events
        assert events.emitted > 0
        kinds = {event["kind"] for event in events.tail()}
        assert any(kind.startswith("cubrick.deployment.") for kind in kinds)
        times = [event["time"] for event in events.tail()]
        assert times == sorted(times)


class TestTraceConsistency:
    def test_root_to_leaf_trace_durations_agree_with_latency(self):
        deployment = small_deployment(seed=21)
        schema = probe_schema("traced")
        deployment.create_table(schema, num_partitions=4)
        rng = np.random.default_rng(3)
        deployment.load("traced", [
            {"bucket": int(rng.integers(64)), "value": 1.0}
            for __ in range(256)
        ])
        deployment.simulator.run_until(deployment.simulator.now + 30.0)

        result = deployment.query(simple_probe_query(schema))
        root = deployment.obs.tracer.recent[-1]
        assert root.name == "cubrick.proxy.query"
        assert root.duration == pytest.approx(
            result.metadata["latency_total"]
        )

        coordinators = [
            span for span in root.children
            if span.name == "cubrick.coordinator.execute"
        ]
        assert coordinators, [span.name for span in root.children]
        final = coordinators[-1]
        assert final.duration == pytest.approx(result.metadata["latency"])

        scans = [
            span for span in final.children
            if span.name == "cubrick.node.scan"
        ]
        assert scans, [span.name for span in final.children]
        # Coordinator latency = slowest host + coordination overheads, so
        # it must dominate every per-host scan span.
        assert final.duration >= max(scan.duration for scan in scans)
        assert all(scan.trace_id == root.trace_id for scan in scans)
        assert sum(
            scan.annotations["rows_scanned"] for scan in scans
        ) > 0

    def test_background_traces_do_not_evict_query_traces(self):
        deployment = run_seeded_fanout(seed=7)
        slowest = deployment.obs.tracer.slowest()
        names = {span.name for span in slowest}
        # Second-scale create-shard traces (with their SMC propagation
        # children) coexist with millisecond query traces in the top-K.
        assert "cubrick.proxy.query" in names
        assert "shardmanager.server.create_shard" in names
        descendant_names = {
            span.name for root in slowest for span in root.walk()
        }
        assert "smc.registry.propagate" in descendant_names


class TestDeterminism:
    def test_identically_seeded_runs_export_identical_json(self):
        first = run_seeded_fanout(seed=42).obs.export_json()
        second = run_seeded_fanout(seed=42).obs.export_json()
        assert first == second

    def test_different_seeds_differ(self):
        first = run_seeded_fanout(seed=42).obs.export_json()
        other = run_seeded_fanout(seed=43).obs.export_json()
        assert first != other


class TestObsCli:
    def test_obs_command_prints_telemetry(self, capsys, tmp_path):
        path = tmp_path / "obs.json"
        assert main([
            "obs", "--fanouts", "1,4", "--queries", "10",
            "--events", "5", "--json", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "== metrics (" in out
        assert "cubrick.proxy.latency_seconds" in out
        assert "== slowest traces" in out
        assert "cubrick.proxy.query" in out
        assert "== events" in out
        export = json.loads(path.read_text())
        assert {"metrics", "traces", "events"} <= set(export)

    def test_fanout_experiment_obs_json_flag(self, capsys, tmp_path):
        path = tmp_path / "fanout-obs.json"
        assert main([
            "fanout-experiment", "--fanouts", "1", "--queries", "10",
            "--obs-json", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "p95ms" in out
        export = json.loads(path.read_text())
        names = {entry["name"] for entry in export["metrics"]}
        assert "workloads.fanout.latency_seconds" in names
