"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import MetricsRegistry, interpolated_percentile
from repro.obs.metrics import _canonical_labels, interpolated_percentiles


class TestPercentileMath:
    def test_single_sample(self):
        assert interpolated_percentile([7.0], 50) == 7.0
        assert interpolated_percentile([7.0], 99) == 7.0

    def test_median_interpolates_between_order_statistics(self):
        assert interpolated_percentile([1.0, 2.0], 50) == pytest.approx(1.5)

    def test_linear_definition(self):
        # rank = (n - 1) * q / 100; for [10, 20, 30, 40] and q=75 the rank
        # is 2.25 → 30 + 0.25 * (40 - 30) = 32.5.
        assert interpolated_percentile([10, 20, 30, 40], 75) == pytest.approx(32.5)

    def test_high_percentile_not_collapsed_to_max(self):
        samples = list(range(100))
        p99 = interpolated_percentile(samples, 99)
        assert p99 < max(samples)
        assert p99 == pytest.approx(98.01)

    def test_extremes(self):
        samples = [3.0, 1.0, 2.0]
        assert interpolated_percentile(samples, 0) == 1.0
        assert interpolated_percentile(samples, 100) == 3.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            interpolated_percentile([1.0], 101)
        with pytest.raises(ValueError):
            interpolated_percentiles([1.0], [-1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            interpolated_percentile([], 50)
        with pytest.raises(ValueError):
            interpolated_percentiles([], [50])

    def test_vector_form_matches_scalar(self):
        samples = [5.0, 1.0, 9.0, 3.0, 7.0]
        qs = [0, 25, 50, 95, 100]
        vector = interpolated_percentiles(samples, qs)
        assert vector == [interpolated_percentile(samples, q) for q in qs]


class TestLabels:
    def test_canonicalisation_sorts_and_stringifies(self):
        a = _canonical_labels({"b": 2, "a": "x"})
        b = _canonical_labels({"a": "x", "b": "2"})
        assert a == b == (("a", "x"), ("b", "2"))

    def test_lookup_is_label_order_and_type_insensitive(self):
        registry = MetricsRegistry()
        counter = registry.counter("q.count", fanout=4, region="r0")
        assert registry.get("q.count", region="r0", fanout="4") is counter


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("x.y.z")
        a.inc(3)
        assert registry.counter("x.y.z").value == 3
        assert len(registry) == 1

    def test_different_labels_are_different_instruments(self):
        registry = MetricsRegistry()
        registry.counter("x", host="h0").inc()
        registry.counter("x", host="h1").inc(2)
        assert registry.get("x", host="h0").value == 1
        assert registry.get("x", host="h1").value == 2

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_get_does_not_create(self):
        registry = MetricsRegistry()
        assert registry.get("missing") is None
        assert len(registry) == 0

    def test_find_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("cubrick.proxy.queries")
        registry.counter("cubrick.node.scans")
        registry.counter("shardmanager.server.collects")
        names = [i.name for i in registry.find("cubrick.")]
        assert names == ["cubrick.node.scans", "cubrick.proxy.queries"]

    def test_snapshot_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.gauge("a.first").set(5)
        snapshot = registry.snapshot()
        assert [entry["name"] for entry in snapshot] == ["a.first", "z.last"]
        assert snapshot[0] == {
            "name": "a.first", "labels": {}, "type": "gauge", "value": 5.0,
        }


class TestCounterGauge:
    def test_counter_rejects_negative_and_non_finite(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)
        with pytest.raises(ValueError):
            counter.inc(float("nan"))

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0
        with pytest.raises(ValueError):
            gauge.set(float("inf"))


class TestHistogram:
    def test_bucket_counts(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        # One per bucket plus one overflow observation.
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.count == 4
        assert histogram.min == 0.5
        assert histogram.max == 100.0

    def test_invalid_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h1", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("h2", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("h3", buckets=(1.0, 1.0))

    def test_non_finite_sample_rejected(self):
        histogram = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            histogram.observe(float("nan"))

    def test_tracked_samples_give_exact_percentiles(self):
        histogram = MetricsRegistry().histogram("h", track_samples=True)
        samples = [0.01 * i for i in range(1, 101)]
        for value in samples:
            histogram.observe(value)
        assert histogram.percentile(50) == pytest.approx(
            interpolated_percentile(samples, 50)
        )
        assert histogram.percentile(99) == pytest.approx(
            interpolated_percentile(samples, 99)
        )

    def test_bucket_percentile_is_bounded_by_observed_range(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for value in (2.0, 3.0, 4.0):
            histogram.observe(value)
        p50 = histogram.percentile(50)
        assert 2.0 <= p50 <= 4.0

    def test_empty_readout(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.readout() == {"count": 0, "sum": 0.0}
        with pytest.raises(ValueError):
            histogram.percentile(50)

    def test_readout_keys_spread_into_to_dict(self):
        histogram = MetricsRegistry().histogram("h", track_samples=True)
        histogram.observe(1.0)
        histogram.observe(3.0)
        as_dict = histogram.to_dict()
        assert as_dict["type"] == "histogram"
        assert as_dict["count"] == 2
        assert as_dict["sum"] == 4.0
        assert as_dict["mean"] == 2.0
        assert as_dict["p50"] == pytest.approx(2.0)


class TestPercentileReadoutUnification:
    """Every percentile readout shares one interpolation code path."""

    def samples(self):
        return [0.5 * i for i in range(1, 21)]  # 0.5 .. 10.0

    def tracked(self):
        histogram = MetricsRegistry().histogram("h", track_samples=True)
        for value in self.samples():
            histogram.observe(value)
        return histogram

    def test_q0_and_q100_are_min_and_max(self):
        histogram = self.tracked()
        assert histogram.percentile(0) == 0.5
        assert histogram.percentile(100) == 10.0

    def test_q1_interpolates_like_the_list_form(self):
        histogram = self.tracked()
        assert histogram.percentile(1) == pytest.approx(
            interpolated_percentile(self.samples(), 1)
        )

    def test_single_sample_answers_every_quantile(self):
        histogram = MetricsRegistry().histogram("h", track_samples=True)
        histogram.observe(3.5)
        for q in (0, 1, 50, 99, 100):
            assert histogram.percentile(q) == 3.5

    def test_empty_histogram_raises_on_both_paths(self):
        tracked = MetricsRegistry().histogram("h", track_samples=True)
        bucketed = MetricsRegistry().histogram("b", buckets=(1.0, 2.0))
        for histogram in (tracked, bucketed):
            with pytest.raises(ValueError):
                histogram.percentile(50)
            with pytest.raises(ValueError):
                histogram.percentiles((50,))

    def test_out_of_range_quantile_rejected_everywhere(self):
        histogram = self.tracked()
        with pytest.raises(ValueError):
            histogram.percentile(-1)
        with pytest.raises(ValueError):
            histogram.percentile(100.5)

    def test_vector_percentiles_match_scalar_calls(self):
        histogram = self.tracked()
        qs = (0.0, 1.0, 50.0, 95.0, 100.0)
        assert histogram.percentiles(qs) == [
            histogram.percentile(q) for q in qs
        ]

    def test_bucket_path_boundaries(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for value in (2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.percentile(0) <= histogram.percentile(100)
        assert 2.0 <= histogram.percentile(0)
        assert histogram.percentile(100) <= 4.0

    def test_readout_percentiles_match_percentile_calls(self):
        histogram = self.tracked()
        readout = histogram.readout()
        assert readout["p50"] == histogram.percentile(50)
        assert readout["p95"] == histogram.percentile(95)
        assert readout["p99"] == histogram.percentile(99)
