"""Profiler tests: stage attribution, the sum invariant, folded export.

The profiler's contract is exactness: stage self-times partition the
root span's interval, so they sum to its wall time — asserted here both
on hand-built span trees (where the right answer is computable by eye)
and on real traces from the seeded overload demo.
"""

import json

import pytest

from repro.obs import Observability, Profiler
from repro.obs.profiler import profile_trace, stage_of
from repro.obs.trace import Span, Tracer


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def build_query_trace(tracer: Tracer) -> Span:
    """proxy [0, 1.0] > coordinator [0, 0.6] > scan [0, 0.5]."""
    with tracer.span("cubrick.proxy.query", table="events") as root:
        with tracer.span("cubrick.coordinator.execute", region="r0") as coord:
            with tracer.span("cubrick.node.scan", host="h0") as scan:
                scan.set_duration(0.5)
                scan.annotate(rows_scanned=100, bricks_scanned=4)
            coord.set_duration(0.6)
        root.set_duration(1.0)
    return tracer.recent[-1]


class TestStageMapping:
    def test_known_span_names_map_to_stages(self):
        assert stage_of(Span("cubrick.proxy.query")) == "proxy"
        assert stage_of(Span("cubrick.node.scan")) == "scan"
        assert stage_of(Span("repro.sched.queue.wait")) == "queue_wait"
        assert stage_of(Span("cubrick.coordinator.merge")) == "merge"

    def test_kernel_spans_profile_per_family(self):
        span = Span("cubrick.node.kernel", labels={"family": "grouped:sum"})
        assert stage_of(span) == "kernel:grouped:sum"
        assert stage_of(Span("cubrick.node.kernel")) == "kernel:unknown"

    def test_unknown_names_profile_under_themselves(self):
        assert stage_of(Span("smc.propagate")) == "smc.propagate"


class TestSpanShift:
    def test_shift_translates_whole_subtree(self):
        tracer = Tracer(FakeClock())
        root = build_query_trace(tracer)
        child = root.children[0]
        child.shift(0.25)
        assert child.start == pytest.approx(0.25)
        assert child.end == pytest.approx(0.85)
        assert child.children[0].start == pytest.approx(0.25)

    def test_zero_shift_is_identity(self):
        span = Span("x", start=1.0)
        span.end = 2.0
        assert span.shift(0.0) is span
        assert (span.start, span.end) == (1.0, 2.0)


class TestProfileTrace:
    def test_self_times_partition_the_root_interval(self):
        tracer = Tracer(FakeClock())
        profile = profile_trace(build_query_trace(tracer))
        assert profile.wall_time == pytest.approx(1.0)
        assert profile.stages["scan"].self_time == pytest.approx(0.5)
        assert profile.stages["coordinator"].self_time == pytest.approx(0.1)
        assert profile.stages["proxy"].self_time == pytest.approx(0.4)
        assert profile.self_time_total == pytest.approx(profile.wall_time)

    def test_parallel_siblings_share_their_stage(self):
        tracer = Tracer(FakeClock())
        with tracer.span("cubrick.proxy.query", table="events") as root:
            with tracer.span("cubrick.coordinator.execute") as coord:
                with tracer.span("cubrick.node.scan", host="h0") as a:
                    a.set_duration(0.3)
                with tracer.span("cubrick.node.scan", host="h1") as b:
                    b.set_duration(0.4)
                coord.set_duration(0.5)
            root.set_duration(0.5)
        profile = profile_trace(tracer.recent[-1])
        # [0, 0.4] belongs to the scans, [0.4, 0.5] to the coordinator.
        assert profile.stages["scan"].self_time == pytest.approx(0.4)
        assert profile.stages["coordinator"].self_time == pytest.approx(0.1)
        assert profile.self_time_total == pytest.approx(0.5)

    def test_children_are_clamped_to_their_parent(self):
        tracer = Tracer(FakeClock())
        with tracer.span("cubrick.proxy.query") as root:
            with tracer.span("cubrick.node.scan") as scan:
                scan.set_duration(5.0)  # longer than the root
            root.set_duration(1.0)
        profile = profile_trace(tracer.recent[-1])
        assert profile.self_time_total == pytest.approx(1.0)
        assert profile.stages["scan"].self_time == pytest.approx(1.0)

    def test_scan_volumes_and_identity_fields(self):
        tracer = Tracer(FakeClock())
        profile = profile_trace(build_query_trace(tracer))
        assert profile.rows_scanned == 100
        assert profile.bricks_scanned == 4
        assert profile.table == "events"
        assert profile.root_name == "cubrick.proxy.query"

    def test_folded_paths_follow_the_stage_chain(self):
        tracer = Tracer(FakeClock())
        profile = profile_trace(build_query_trace(tracer))
        assert profile.folded["proxy;coordinator;scan"] == pytest.approx(0.5)
        assert profile.folded["proxy;coordinator"] == pytest.approx(0.1)
        assert profile.folded["proxy"] == pytest.approx(0.4)


class TestProfilerAggregation:
    def build(self, n: int = 3) -> Profiler:
        tracer = Tracer(FakeClock())
        for __ in range(n):
            build_query_trace(tracer)
        return Profiler(tracer)

    def test_accepts_observability_or_tracer(self):
        obs = Observability()
        assert Profiler(obs).tracer is obs.tracer
        assert Profiler(obs.tracer).tracer is obs.tracer

    def test_only_query_roots_are_profiled(self):
        tracer = Tracer(FakeClock())
        build_query_trace(tracer)
        with tracer.span("smc.propagate"):
            pass
        assert len(Profiler(tracer).profiles()) == 1

    def test_top_ranks_by_wall_time_then_trace_id(self):
        tracer = Tracer(FakeClock())
        with tracer.span("cubrick.proxy.query") as span:
            span.set_duration(0.2)
        with tracer.span("cubrick.proxy.query") as span:
            span.set_duration(0.9)
        top = Profiler(tracer).top(1)
        assert len(top) == 1
        assert top[0].wall_time == pytest.approx(0.9)

    def test_by_stage_sums_across_queries(self):
        profiler = self.build(3)
        totals = profiler.by_stage()
        assert totals["scan"].self_time == pytest.approx(1.5)
        assert totals["scan"].rows_scanned == 300
        assert list(totals) == sorted(totals)

    def test_folded_export_is_sorted_integer_microseconds(self):
        profiler = self.build(2)
        lines = profiler.folded().splitlines()
        assert lines == sorted(lines)
        assert "proxy;coordinator;scan 1000000" in lines
        for line in lines:
            path, value = line.rsplit(" ", 1)
            assert int(value) > 0


def rebuild_spans(jsonl: str) -> list[Span]:
    """Reconstruct span trees from a spans_jsonl export."""
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    for line in jsonl.splitlines():
        record = json.loads(line)
        span = Span(
            record["name"],
            trace_id=record["traceId"],
            span_id=record["spanId"],
            start=record["startTime"],
            labels={
                k: v for k, v in record["attributes"].items()
                if isinstance(v, str)
            },
            annotations=dict(record["attributes"]),
        )
        span.end = record["endTime"]
        by_id[span.span_id] = span
        parent = by_id.get(record["parentSpanId"])
        if parent is None:
            roots.append(span)
        else:
            parent.children.append(span)
    return roots


class TestOverloadRoundTrip:
    """Real traces from the seeded overload demo hold the invariant."""

    @pytest.fixture(scope="class")
    def profiled(self):
        from repro.workloads.loadgen import run_profiled_overload

        return run_profiled_overload(seed=3, duration=4.0)

    def test_every_profile_sums_to_its_wall_time(self, profiled):
        __, deployment, __, __ = profiled
        profiles = Profiler(deployment.obs).profiles()
        assert profiles
        for profile in profiles:
            assert profile.self_time_total == pytest.approx(
                profile.wall_time, abs=1e-9
            )

    def test_managed_queries_trace_from_the_scheduler(self, profiled):
        __, deployment, __, __ = profiled
        profiles = Profiler(deployment.obs).profiles()
        assert {p.root_name for p in profiles} == {"repro.sched.query"}
        assert all(p.tenant.startswith("tenant") for p in profiles)
        assert any("queue_wait" in p.stages for p in profiles)
        assert any(
            stage.startswith("kernel:")
            for p in profiles for stage in p.stages
        )

    def test_export_roundtrip_preserves_profiles(self, profiled):
        from repro.obs.export import spans_jsonl
        from repro.obs.profiler import QUERY_ROOTS

        __, deployment, __, __ = profiled
        profiler = Profiler(deployment.obs)
        live = profiler.profiles()
        rebuilt = rebuild_spans(spans_jsonl(deployment.obs))
        query_roots = [s for s in rebuilt if s.name in QUERY_ROOTS]
        round_tripped = profiler.profiles(query_roots)
        assert len(round_tripped) == len(live)
        for a, b in zip(live, round_tripped):
            assert a.trace_id == b.trace_id
            assert a.wall_time == pytest.approx(b.wall_time)
            assert set(a.stages) == set(b.stages)
            for stage in a.stages:
                assert a.stages[stage].self_time == pytest.approx(
                    b.stages[stage].self_time
                )
