"""Real-clock jitter tolerance of the observability exports.

The serving tier points the obs stack at a wall-anchored clock
(``repro.serve.clock.RealTimeClock``) whose readings, unlike the DES
virtual clock, can jitter between two related samples taken in
different clock domains (a span backdated onto queue-wait time, an
event emitted from a pump tick that raced a submission). The histogram,
trace and event exports must stay well-formed anyway: durations clamp
non-negative, span ``endTime`` never precedes ``startTime``, the event
log never appears to run backwards — and every clamp is a strict no-op
under a monotone clock, which is what keeps the seeded DES exports
byte-identical.
"""

from __future__ import annotations

import json

from repro.obs.events import EventLog
from repro.obs.export import spans_jsonl
from repro.obs.trace import Span, Tracer


class ScriptedClock:
    """Replays a fixed list of readings (then holds the last one)."""

    def __init__(self, readings):
        self.readings = list(readings)
        self.calls = 0

    def __call__(self) -> float:
        index = min(self.calls, len(self.readings) - 1)
        self.calls += 1
        return self.readings[index]


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


def test_span_close_clamps_backward_clock():
    # Open at t=5.0, clock jitters back to 4.2 at close: the span must
    # close at its own start, not before it.
    tracer = Tracer(clock=ScriptedClock([5.0, 4.2]))
    with tracer.span("serve.request") as span:
        pass
    assert span.end == span.start == 5.0
    assert span.duration == 0.0


def test_span_duration_clamped_nonnegative():
    span = Span("jittery", start=10.0)
    span.end = 9.5
    assert span.duration == 0.0
    # And an honest duration is untouched.
    span.end = 10.25
    assert span.duration == 0.25


def test_open_span_duration_is_zero():
    assert Span("open", start=3.0).duration == 0.0


def test_set_duration_still_rejects_negative():
    span = Span("explicit", start=1.0)
    try:
        span.set_duration(-0.1)
    except ValueError:
        pass
    else:  # pragma: no cover - failure path
        raise AssertionError("negative explicit duration must raise")


def test_export_clamps_end_time():
    span = Span("jittery", trace_id=1, span_id=1, start=10.0)
    span.end = 9.0
    record = json.loads(spans_jsonl(Tracer(), roots=[span]))
    assert record["endTime"] == record["startTime"] == 10.0


def test_export_open_span_end_time_is_start():
    span = Span("open", trace_id=1, span_id=1, start=4.0)
    record = json.loads(spans_jsonl(Tracer(), roots=[span]))
    assert record["endTime"] == 4.0


def test_span_clamp_noop_on_monotone_clock():
    tracer = Tracer(clock=ScriptedClock([1.0, 1.5]))
    with tracer.span("monotone") as span:
        pass
    assert (span.start, span.end) == (1.0, 1.5)
    assert span.duration == 0.5


# ----------------------------------------------------------------------
# Event log
# ----------------------------------------------------------------------


def test_event_log_never_runs_backwards():
    log = EventLog(clock=ScriptedClock([5.0, 3.0, 4.0, 6.0]))
    times = [log.emit("serve.tick")["time"] for __ in range(4)]
    assert times == [5.0, 5.0, 5.0, 6.0]
    assert times == sorted(times)


def test_event_log_clamp_noop_on_monotone_clock():
    readings = [0.5, 1.0, 2.25]
    log = EventLog(clock=ScriptedClock(readings))
    times = [log.emit("serve.tick")["time"] for __ in readings]
    assert times == readings


def test_event_log_dump_order_survives_jitter(tmp_path):
    log = EventLog(clock=ScriptedClock([2.0, 1.0, 3.0]))
    for __ in range(3):
        log.emit("serve.tick")
    path = tmp_path / "events.jsonl"
    assert log.dump(str(path)) == 3
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    stamps = [(row["time"], row["seq"]) for row in rows]
    assert stamps == sorted(stamps)
