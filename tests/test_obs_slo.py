"""SLO engine tests: burn math, multi-window alerts, budget ledger.

Objectives are driven with hand-incremented counters on a fake clock so
every burn rate has a by-hand right answer; the controller test closes
the loop the ISSUE asks for — burn rate in, overload actuation out.
"""

import pytest

from repro.autoscale.controller import ControllerSpec, WallBreachController
from repro.autoscale.fleet import FleetController, FleetSpec
from repro.autoscale.reshard import ReshardPlanner, ReshardSpec
from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.obs import Observability
from repro.obs.slo import DEFAULT_BURN_RULES, SLObjective, SloEngine


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def availability_setup(target: float = 0.9):
    clock = FakeClock()
    obs = Observability(clock)
    ok = obs.metrics.counter("repro.sched.sla", outcome="ok")
    miss = obs.metrics.counter("repro.sched.sla", outcome="miss")
    engine = SloEngine(obs)
    engine.register(SLObjective(name="sla", target=target))
    return clock, obs, ok, miss, engine


class TestObjectiveValidation:
    def test_target_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            SLObjective(name="x", target=1.0)
        with pytest.raises(ValueError):
            SLObjective(name="x", target=0.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SLObjective(name="x", target=0.9, kind="throughput")

    def test_latency_needs_threshold(self):
        with pytest.raises(ValueError):
            SLObjective(name="x", target=0.9, kind="latency", metric="m")

    def test_duplicate_registration_rejected(self):
        engine = SloEngine(Observability())
        engine.register(SLObjective(name="x", target=0.9))
        with pytest.raises(ValueError):
            engine.register(SLObjective(name="x", target=0.5))

    def test_budget_window_must_be_positive(self):
        with pytest.raises(ValueError):
            SloEngine(Observability(), budget_window=0.0)


class TestSampling:
    def test_availability_splits_family_by_outcome_label(self):
        __, obs, ok, miss, engine = availability_setup()
        ok.inc(8)
        miss.inc(2)
        good, total = engine.objectives["sla"].sample(obs.metrics)
        assert (good, total) == (8.0, 10.0)

    def test_availability_respects_label_restriction(self):
        obs = Observability()
        obs.metrics.counter("sla", outcome="ok", region="r0").inc(5)
        obs.metrics.counter("sla", outcome="ok", region="r1").inc(7)
        scoped = SLObjective(
            name="r0", target=0.9, metric="sla",
            labels=(("region", "r0"),),
        )
        assert scoped.sample(obs.metrics) == (5.0, 5.0)

    def test_latency_counts_observations_at_or_below_threshold(self):
        obs = Observability()
        histogram = obs.metrics.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.09, 0.5, 2.0):
            histogram.observe(value)
        objective = SLObjective(
            name="lat", target=0.9, kind="latency",
            metric="lat", threshold=0.1,
        )
        assert objective.sample(obs.metrics) == (2.0, 4.0)

    def test_latency_with_no_histogram_sees_no_traffic(self):
        obs = Observability()
        objective = SLObjective(
            name="lat", target=0.9, kind="latency",
            metric="missing", threshold=0.1,
        )
        assert objective.sample(obs.metrics) == (0.0, 0.0)


class TestBurnRates:
    def test_burn_is_bad_fraction_over_allowed_fraction(self):
        clock, __, ok, miss, engine = availability_setup(target=0.9)
        ok.inc(90)
        miss.inc(10)
        clock.now = 10.0
        engine.tick()
        # 10% bad with a 10% budget: burning exactly at the sustainable
        # rate.
        assert engine.burn_rate("sla", 60.0) == pytest.approx(1.0)

    def test_no_traffic_burns_nothing(self):
        clock, __, __, __, engine = availability_setup()
        clock.now = 10.0
        engine.tick()
        assert engine.burn_rate("sla", 60.0) == 0.0
        assert engine.burn_rate_signal() == 0.0

    def test_windowing_forgets_old_badness(self):
        clock, __, ok, miss, engine = availability_setup(target=0.9)
        miss.inc(50)
        ok.inc(50)
        clock.now = 10.0
        engine.tick()
        ok.inc(200)
        clock.now = 100.0
        engine.tick()
        # Over 20s only the second delta (all good) is visible; over the
        # full history the bad half-window still counts.
        assert engine.burn_rate("sla", 20.0) == pytest.approx(0.0)
        assert engine.burn_rate("sla", 1000.0) == pytest.approx(
            (50 / 300) / 0.1
        )

    def test_signal_is_worst_objective(self):
        clock = FakeClock()
        obs = Observability(clock)
        obs.metrics.counter("a", outcome="ok")
        obs.metrics.counter("b", outcome="ok")
        engine = SloEngine(obs, signal_window=60.0)
        engine.register(SLObjective(name="a", target=0.9, metric="a"))
        engine.register(SLObjective(name="b", target=0.9, metric="b"))
        obs.metrics.counter("a", outcome="ok").inc(100)
        obs.metrics.counter("b", outcome="miss").inc(10)
        obs.metrics.counter("b", outcome="ok").inc(10)
        clock.now = 10.0
        engine.tick()
        assert engine.burn_rate_signal() == pytest.approx((10 / 20) / 0.1)


class TestBurnAlerts:
    def build(self):
        clock = FakeClock()
        obs = Observability(clock)
        ok = obs.metrics.counter("repro.sched.sla", outcome="ok")
        miss = obs.metrics.counter("repro.sched.sla", outcome="miss")
        engine = SloEngine(
            obs, burn_rules=(("fast", 10.0, 20.0, 2.0),)
        )
        engine.register(SLObjective(name="sla", target=0.9))
        return clock, obs, ok, miss, engine

    def test_fires_on_both_windows_hot_and_resolves_on_cool(self):
        clock, obs, ok, miss, engine = self.build()
        ok.inc(50)
        miss.inc(50)
        clock.now = 5.0
        engine.tick()  # burn 5.0 on both windows -> fires
        ok.inc(100)
        clock.now = 10.0
        engine.tick()  # short window still sees the bad stretch
        ok.inc(100)
        clock.now = 20.0
        engine.tick()  # short window now clean -> resolves
        states = [(a.state, a.time) for a in engine.alerts]
        assert states == [("firing", 5.0), ("resolved", 20.0)]
        assert engine.alerts[0].burn_short == pytest.approx(5.0)

    def test_alert_transitions_emit_events(self):
        clock, obs, ok, miss, engine = self.build()
        miss.inc(100)
        clock.now = 5.0
        engine.tick()
        assert obs.events.of_kind("obs.slo.alert")

    def test_timeline_renders_deterministically(self):
        clock, __, ok, miss, engine = self.build()
        miss.inc(100)
        clock.now = 5.0
        engine.tick()
        timeline = engine.alert_timeline()
        assert "sla" in timeline and "firing" in timeline
        assert timeline.endswith("\n")

    def test_default_rules_are_the_sre_pair(self):
        assert DEFAULT_BURN_RULES[0][0] == "fast_burn"
        assert DEFAULT_BURN_RULES[0][3] == pytest.approx(14.4)
        assert DEFAULT_BURN_RULES[1][3] == pytest.approx(6.0)


class TestLedger:
    def test_ledger_accounts_budget_consumption(self):
        clock, __, ok, miss, engine = availability_setup(target=0.9)
        ok.inc(95)
        miss.inc(5)
        clock.now = 10.0
        engine.tick()
        (row,) = engine.ledger()
        assert row["objective"] == "sla"
        assert row["total"] == pytest.approx(100.0)
        assert row["bad"] == pytest.approx(5.0)
        assert row["compliance"] == pytest.approx(0.95)
        # 5 bad of 10 allowed: half the budget gone.
        assert row["budget_consumed"] == pytest.approx(0.5)
        assert row["budget_remaining"] == pytest.approx(0.5)
        assert row["met"] is True

    def test_busted_budget_is_flagged(self):
        clock, __, ok, miss, engine = availability_setup(target=0.99)
        ok.inc(90)
        miss.inc(10)
        clock.now = 10.0
        engine.tick()
        (row,) = engine.ledger()
        assert row["met"] is False
        assert row["budget_consumed"] > 1.0

    def test_render_ledger_is_text(self):
        clock, __, ok, __, engine = availability_setup()
        ok.inc(10)
        clock.now = 5.0
        engine.tick()
        text = engine.render_ledger()
        assert "objective" in text and "sla" in text and "yes" in text


class TestSimulatorAttachment:
    def test_attach_ticks_on_the_des_clock(self):
        deployment = CubrickDeployment(
            DeploymentConfig(seed=0, regions=1, racks_per_region=1,
                             hosts_per_rack=2)
        )
        engine = SloEngine(deployment.obs)
        engine.register(SLObjective(name="sla", target=0.9))
        cancel = engine.attach(deployment.simulator, interval=5.0)
        deployment.simulator.run_until(21.0)
        cancel()
        assert engine.ticks == 4


def build_controller_deployment():
    deployment = CubrickDeployment(
        DeploymentConfig(seed=0, regions=1, racks_per_region=2,
                         hosts_per_rack=3, max_shards=10_000)
    )
    schema = TableSchema.build(
        "events",
        dimensions=[Dimension("day", 30, range_size=7)],
        metrics=[Metric("clicks")],
    )
    deployment.create_table(schema, num_partitions=2)
    deployment.load(
        "events", [{"day": i % 30, "clicks": 1.0} for i in range(200)]
    )
    return deployment


class TestControllerBurnHook:
    def build(self, burn: float):
        deployment = build_controller_deployment()
        fleet = FleetController(deployment, FleetSpec())
        reshard = ReshardPlanner(deployment, ReshardSpec())
        spec = ControllerSpec(failure_probability=1e-3)
        return WallBreachController(
            deployment, fleet, reshard, spec,
            burn_rate_fn=lambda: burn,
        )

    def test_hot_burn_counts_as_overload_and_tightens(self):
        controller = self.build(burn=5.0)
        cap_before = controller.fanout_cap
        decision = controller.step()
        assert decision.burn_rate == pytest.approx(5.0)
        assert controller.fanout_cap == cap_before - 1
        assert any("provision" in a for a in decision.actions)

    def test_cool_burn_changes_nothing(self):
        controller = self.build(burn=0.5)
        cap_before = controller.fanout_cap
        decision = controller.step()
        assert decision.burn_rate == pytest.approx(0.5)
        assert controller.fanout_cap == cap_before
        assert not any("provision" in a for a in decision.actions)

    def test_default_controller_reads_zero_burn(self):
        deployment = build_controller_deployment()
        fleet = FleetController(deployment, FleetSpec())
        reshard = ReshardPlanner(deployment, ReshardSpec())
        controller = WallBreachController(
            deployment, fleet, reshard,
            ControllerSpec(failure_probability=1e-3),
        )
        assert controller.burn_rate() == 0.0
        assert controller.step().burn_rate == 0.0
