"""Unit tests for the tracer and structured event log (repro.obs)."""

import json

import pytest

from repro.obs import EventLog, Observability, Tracer


class FakeClock:
    """Manually advanced clock standing in for the DES virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


class TestSpans:
    def test_nesting_follows_call_stack(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child-a"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("child-b"):
                pass
        names = [span.name for span in root.walk()]
        assert names == ["root", "child-a", "leaf", "child-b"]
        assert all(span.trace_id == root.trace_id for span in root.walk())

    def test_sibling_roots_get_new_trace_ids(self):
        tracer = Tracer()
        with tracer.span("first") as first:
            pass
        with tracer.span("second") as second:
            pass
        assert first.trace_id != second.trace_id
        assert tracer.finished_traces == 2

    def test_explicit_duration_wins_over_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        with tracer.span("query") as span:
            span.set_duration(0.25)  # clock never advances in-query
        assert span.duration == pytest.approx(0.25)
        assert span.end == pytest.approx(span.start + 0.25)

    def test_unset_duration_closes_with_clock_delta(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        with tracer.span("watch") as span:
            clock.advance(1.5)
        assert span.duration == pytest.approx(1.5)

    def test_negative_duration_rejected(self):
        tracer = Tracer()
        with tracer.span("bad") as span:
            with pytest.raises(ValueError):
                span.set_duration(-0.1)

    def test_annotations_sorted_in_to_dict(self):
        tracer = Tracer()
        with tracer.span("q", region="r0") as span:
            span.annotate(zebra=1, apple=2)
        as_dict = span.to_dict()
        assert list(as_dict["annotations"]) == ["apple", "zebra"]
        assert as_dict["labels"] == {"region": "r0"}
        assert as_dict["children"] == []

    def test_span_closed_even_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("query failed")
        assert tracer.current is None
        assert tracer.finished_traces == 1


class TestSlowestTraces:
    def test_top_k_is_kept_per_root_name(self):
        tracer = Tracer(keep_slowest=2)
        # Second-scale background traces must not evict fast query traces.
        for duration in (10.0, 20.0, 30.0):
            with tracer.span("smc.registry.propagate") as span:
                span.set_duration(duration)
        with tracer.span("cubrick.proxy.query") as span:
            span.set_duration(0.005)
        query_roots = tracer.slowest(name="cubrick.proxy.query")
        assert [s.duration for s in query_roots] == [pytest.approx(0.005)]
        smc_roots = tracer.slowest(name="smc.registry.propagate")
        assert [s.duration for s in smc_roots] == [30.0, 20.0]

    def test_merged_slowest_grouped_by_sorted_name(self):
        tracer = Tracer()
        with tracer.span("b.trace") as span:
            span.set_duration(1.0)
        with tracer.span("a.trace") as span:
            span.set_duration(2.0)
        assert [s.name for s in tracer.slowest()] == ["a.trace", "b.trace"]

    def test_ties_break_toward_earlier_trace(self):
        tracer = Tracer(keep_slowest=1)
        with tracer.span("t") as first:
            first.set_duration(1.0)
        with tracer.span("t") as second:
            second.set_duration(1.0)
        assert tracer.slowest(name="t")[0].trace_id == first.trace_id

    def test_recent_deque_bounded(self):
        tracer = Tracer(keep_recent=3)
        for __ in range(10):
            with tracer.span("t"):
                pass
        assert len(tracer.recent) == 3
        assert tracer.finished_traces == 10


class TestEventLog:
    def test_emit_records_time_seq_kind(self):
        clock = FakeClock()
        log = EventLog(clock)
        clock.advance(5.0)
        event = log.emit("cubrick.node.bricks_evicted", host="h0", evicted=3)
        assert event["time"] == 5.0
        assert event["seq"] == 1
        assert event["kind"] == "cubrick.node.bricks_evicted"
        assert event["host"] == "h0"

    def test_reserved_keys_rejected(self):
        log = EventLog()
        for key in ("time", "seq"):
            with pytest.raises(ValueError):
                log.emit("x", **{key: 1})
        # "kind" already collides with the positional parameter itself.
        with pytest.raises(TypeError):
            log.emit("x", **{"kind": 1})

    def test_ring_buffer_drops_oldest(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.emit("tick", index=index)
        assert log.emitted == 5
        assert log.dropped == 2
        assert [e["index"] for e in log.tail()] == [2, 3, 4]
        assert [e["index"] for e in log.tail(2)] == [3, 4]

    def test_jsonl_is_valid_and_deterministic(self):
        log = EventLog()
        log.emit("a.b.c", zebra=1, apple="x")
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        assert parsed["kind"] == "a.b.c"
        # sort_keys=True makes the serialised form reproducible.
        assert lines[0].index('"apple"') < lines[0].index('"zebra"')

    def test_dump_writes_jsonl_file(self, tmp_path):
        log = EventLog()
        log.emit("x")
        log.emit("y")
        path = tmp_path / "events.jsonl"
        assert log.dump(str(path), 1) == 1
        assert json.loads(path.read_text())["kind"] == "y"


class TestObservabilityFacade:
    def test_shared_clock_across_components(self):
        clock = FakeClock()
        obs = Observability(clock=clock)
        clock.advance(2.0)
        with obs.tracer.span("t") as span:
            event = obs.events.emit("e")
        assert span.start == 2.0
        assert event["time"] == 2.0

    def test_export_shape(self):
        obs = Observability()
        obs.metrics.counter("c").inc()
        with obs.tracer.span("t"):
            pass
        obs.events.emit("e")
        export = obs.export()
        assert {"metrics", "traces", "events"} <= set(export)
        assert export["traces"]["finished"] == 1
        assert export["events"]["emitted"] == 1

    def test_export_json_round_trips_and_dump(self, tmp_path):
        obs = Observability()
        obs.metrics.histogram("h").observe(0.2)
        path = tmp_path / "obs.json"
        obs.dump(str(path))
        assert json.loads(path.read_text()) == json.loads(obs.export_json())
