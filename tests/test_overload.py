"""Overload traffic generation and the managed-vs-legacy SLA demo."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.sched import PriorityClass, SchedPolicy, WorkloadManager
from repro.workloads.loadgen import (
    SLA_DEADLINE,
    TrafficGenerator,
    _build_overload_deployment,
    overload_policy,
    run_overload_experiment,
)


@pytest.fixture(scope="module")
def managed_report():
    return run_overload_experiment(0, policy="managed")


@pytest.fixture(scope="module")
def legacy_report():
    return run_overload_experiment(0, policy="legacy")


# ----------------------------------------------------------------------
# TrafficGenerator
# ----------------------------------------------------------------------


def make_manager(seed=0, policy=None):
    deployment = _build_overload_deployment(seed)
    deployment.simulator.run_until(30.0)
    return WorkloadManager(
        deployment, policy=policy or SchedPolicy.legacy()
    )


def test_tenant_profiles_are_zipf_skewed_with_priority_ladder():
    traffic = TrafficGenerator(make_manager(), tenants=6, seed=0)
    weights = [p.weight for p in traffic.profiles]
    assert weights == sorted(weights, reverse=True)
    assert sum(weights) == pytest.approx(1.0)
    assert weights[0] > 2 * weights[-1]  # genuinely skewed
    # Hottest tenant carries the most sheddable class.
    assert traffic.profiles[0].priority is PriorityClass.BACKGROUND
    assert traffic.profiles[1].priority is PriorityClass.BATCH
    assert traffic.profiles[2].priority is PriorityClass.INTERACTIVE


def test_open_loop_arrivals_are_seeded_and_rate_shaped():
    manager = make_manager()
    traffic = TrafficGenerator(manager, tenants=3, seed=42)
    scheduled = traffic.run_open_loop(rate=50.0, duration=10.0)
    assert 350 < scheduled < 650  # ~500 expected
    manager.deployment.simulator.run_until(
        manager.deployment.simulator.now + 10.0
    )
    assert manager.drain()
    assert traffic.submitted == scheduled
    assert len(manager.records) == scheduled

    repeat_manager = make_manager()
    repeat = TrafficGenerator(repeat_manager, tenants=3, seed=42)
    assert repeat.run_open_loop(rate=50.0, duration=10.0) == scheduled


def test_closed_loop_concurrency_is_bounded_by_clients():
    manager = make_manager()
    traffic = TrafficGenerator(manager, tenants=3, seed=1)
    traffic.run_closed_loop(clients=4, duration=20.0, think_time=0.05)
    simulator = manager.deployment.simulator
    while simulator.now < 55.0:
        simulator.run_until(simulator.now + 1.0)
        assert manager.outstanding() <= 4
    assert manager.drain()
    assert traffic.submitted > 40  # the loop actually looped
    assert all(r.outcome == "ok" for r in manager.records)


def test_traffic_generator_validation():
    manager = make_manager()
    with pytest.raises(ConfigurationError):
        TrafficGenerator(manager, tenants=0)
    with pytest.raises(ConfigurationError):
        TrafficGenerator(manager, query_pool_size=0)
    traffic = TrafficGenerator(manager)
    with pytest.raises(ConfigurationError):
        traffic.run_open_loop(rate=0.0, duration=1.0)
    with pytest.raises(ConfigurationError):
        traffic.run_open_loop(rate=1.0, duration=0.0)
    with pytest.raises(ConfigurationError):
        traffic.run_closed_loop(clients=0, duration=1.0)
    with pytest.raises(ConfigurationError):
        traffic.run_closed_loop(clients=1, duration=1.0, think_time=-1.0)
    with pytest.raises(ConfigurationError):
        overload_policy("nonsense")
    with pytest.raises(ConfigurationError):
        run_overload_experiment(0, saturation=0.0)


# ----------------------------------------------------------------------
# The acceptance demo: managed defends the SLA, legacy collapses
# ----------------------------------------------------------------------


def test_managed_policy_defends_the_sla_at_5x_saturation(managed_report):
    report = managed_report
    assert report.drained
    assert report.sla_met
    assert report.success_ratio >= 0.99
    # Latency of served queries stays bounded by the deadline.
    assert report.latency_p99 < SLA_DEADLINE
    assert report.max_queue_depth <= 8
    # Defence was active: traffic was genuinely shed, and the cache
    # absorbed repeats.
    assert report.outcomes.get("shed", 0) > 100
    assert report.shed_level_max > 0.0
    assert report.cache_hits > 100


def test_legacy_policy_collapses_under_the_same_storm(legacy_report):
    report = legacy_report
    assert report.drained  # everything *eventually* completes...
    assert not report.sla_met  # ...far too late
    assert report.success_ratio < 0.5
    assert report.outcomes == {"ok": report.submitted}  # nothing shed
    # Unbounded queue growth and order-of-magnitude worse tail latency.
    assert report.max_queue_depth > 100
    assert report.latency_p99 > 5 * SLA_DEADLINE


def test_same_seed_reports_are_byte_identical(managed_report, legacy_report):
    assert (
        run_overload_experiment(0, policy="managed").render()
        == managed_report.render()
    )
    assert (
        run_overload_experiment(0, policy="legacy").render()
        == legacy_report.render()
    )


def test_storm_is_identical_across_policies(managed_report, legacy_report):
    # Same seed → the two policies face the exact same arrival process.
    assert managed_report.submitted == legacy_report.submitted
    assert managed_report.rate == legacy_report.rate


def test_overload_cli_prints_both_reports(capsys):
    assert main(["overload", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "policy=managed" in out
    assert "policy=legacy" in out
    assert "SLA MET" in out
    assert "SLA COLLAPSED" in out


def test_overload_cli_single_policy(capsys):
    assert main(["overload", "--policy", "legacy", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "policy=legacy" in out
    assert "policy=managed" not in out
