"""Serial-vs-parallel equivalence: ParallelScanner must be bit-identical.

The parallel scanner's whole contract is that fanning brick scans over a
process pool changes *nothing* observable: same finalized rows in the
same order, same ``rows_scanned`` / ``bricks_scanned`` counters, for any
worker count. These tests pin that contract with exact equality (no
tolerances — the fixture's metrics are multiples of 1/8, so every
summation order yields the same float) and also cover the serial
fallback paths.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.cubrick.parallel import ParallelScanner, _fork_available
from repro.cubrick.query import AggFunc, Aggregation, Filter, Query
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.cubrick.storage import PartitionStorage

SCHEMA = TableSchema.build(
    "facts",
    dimensions=[
        Dimension("day", 32, range_size=4),
        # Auto dict-encoded (cardinality >= 1024): parallel workers must
        # agree with the serial scan through the encoded path too.
        Dimension("entity", 10_000, range_size=2_500),
    ],
    metrics=[Metric("value")],
)

ROWS = 40_000

QUERIES = [
    Query.build(
        "facts",
        [Aggregation(f, "value") for f in AggFunc],
        group_by=["day", "entity"],
    ),
    Query.build(
        "facts",
        [
            Aggregation(AggFunc.SUM, "value"),
            Aggregation(AggFunc.COUNT_DISTINCT, "entity"),
        ],
        group_by=["day"],
    ),
    Query.build(
        "facts",
        [Aggregation(AggFunc.AVG, "value")],
        group_by=["entity"],
        filters=[Filter.between("day", 4, 19)],
    ),
    Query.build(
        "facts",
        [Aggregation(AggFunc.MIN, "value"), Aggregation(AggFunc.MAX, "value")],
    ),
]


@pytest.fixture(scope="module")
def storage():
    rng = np.random.default_rng(777)
    storage = PartitionStorage(SCHEMA, 0)
    storage.insert_columns({
        "day": rng.integers(32, size=ROWS),
        "entity": rng.integers(10_000, size=ROWS),
        "value": rng.integers(0, 800, size=ROWS) / 8.0,
    })
    assert len(list(storage.bricks())) > 1, "fixture must span bricks"
    return storage


def _run_serial(storage, query):
    return storage.execute(query, {})


def _assert_equivalent(serial, parallel):
    assert parallel.rows_scanned == serial.rows_scanned
    assert parallel.bricks_scanned == serial.bricks_scanned
    s, p = serial.finalize(), parallel.finalize()
    assert p.columns == s.columns
    assert p.rows == s.rows


@pytest.mark.skipif(not _fork_available(), reason="needs fork start method")
@pytest.mark.parametrize("workers", [2, 4])
@pytest.mark.parametrize("qi", range(len(QUERIES)))
def test_parallel_matches_serial(storage, workers, qi):
    query = QUERIES[qi]
    serial = _run_serial(storage, query)
    parallel = ParallelScanner(workers=workers).execute(storage, query, {})
    _assert_equivalent(serial, parallel)


def test_single_worker_takes_serial_path(storage):
    query = QUERIES[0]
    serial = _run_serial(storage, query)
    partial = ParallelScanner(workers=1).execute(storage, query, {})
    _assert_equivalent(serial, partial)


def test_single_brick_takes_serial_path():
    rng = np.random.default_rng(5)
    small = PartitionStorage(SCHEMA, 0)
    small.insert_columns({
        "day": np.zeros(100, dtype=np.int64),
        "entity": rng.integers(2_500, size=100),
        "value": rng.integers(0, 800, size=100) / 8.0,
    })
    assert len(list(small.bricks())) == 1
    query = QUERIES[1]
    serial = small.execute(query, {})
    partial = ParallelScanner(workers=4).execute(small, query, {})
    _assert_equivalent(serial, partial)


@pytest.mark.skipif(not _fork_available(), reason="needs fork start method")
def test_parallel_scan_counts_match_pruned_bricks(storage):
    """Partition pruning must behave identically under the pool: only
    candidate bricks are scanned, and the counters say so."""
    query = QUERIES[2]
    serial = _run_serial(storage, query)
    assert serial.bricks_scanned < len(list(storage.bricks()))
    parallel = ParallelScanner(workers=2).execute(storage, query, {})
    _assert_equivalent(serial, parallel)


@pytest.mark.skipif(not _fork_available(), reason="needs fork start method")
def test_parallel_preserves_mixed_brick_states(storage):
    """Compressed + evicted bricks are restored by the parent before the
    fork, and stay restored afterwards (worker-side work dies with the
    worker)."""
    bricks = list(storage.bricks())
    bricks[0].compress()
    bricks[1].compress()
    bricks[1].evict()
    query = QUERIES[0]
    parallel = ParallelScanner(workers=2).execute(storage, query, {})
    serial = _run_serial(storage, query)
    _assert_equivalent(serial, parallel)
    assert not bricks[0].is_compressed and not bricks[1].is_compressed


def test_scanner_defaults_to_cpu_count():
    assert ParallelScanner().workers >= 1
    assert ParallelScanner(workers=3).workers == 3


def test_fork_detection_matches_platform():
    expected = "fork" in multiprocessing.get_all_start_methods()
    if not expected:
        assert _fork_available() is False


class TestWorkerTelemetry:
    """Per-worker scan metrics merge into the parent's registry."""

    def test_serial_path_records_under_serial_label(self, storage):
        from repro.obs import Observability

        obs = Observability()
        scanner = ParallelScanner(workers=1, obs=obs)
        partial = scanner.execute(storage, QUERIES[0], {})
        rows = obs.metrics.get(
            "cubrick.parallel.rows_scanned", worker="serial"
        )
        bricks = obs.metrics.get(
            "cubrick.parallel.bricks_scanned", worker="serial"
        )
        timing = obs.metrics.get(
            "cubrick.parallel.brick_scan_seconds", worker="serial"
        )
        assert rows.value == partial.rows_scanned
        assert bricks.value == partial.bricks_scanned
        assert timing.count == 1

    @pytest.mark.skipif(not _fork_available(),
                        reason="needs fork start method")
    def test_pool_workers_record_dense_labels(self, storage):
        from repro.obs import Observability

        obs = Observability()
        scanner = ParallelScanner(workers=2, obs=obs)
        partial = scanner.execute(storage, QUERIES[0], {})
        instruments = obs.metrics.find("cubrick.parallel.rows_scanned")
        workers = sorted(dict(i.labels)["worker"] for i in instruments)
        assert workers and all(w.startswith("w") for w in workers)
        assert workers == [f"w{i}" for i in range(len(workers))]
        assert sum(i.value for i in instruments) == partial.rows_scanned
        timings = obs.metrics.find("cubrick.parallel.brick_scan_seconds")
        assert sum(t.count for t in timings) == partial.bricks_scanned

    def test_without_obs_no_metrics_are_recorded(self, storage):
        scanner = ParallelScanner(workers=1)
        scanner.execute(storage, QUERIES[0], {})
        assert scanner.obs is None
