"""Tests for the Scuba-style partial-results mode and consistent hashing."""

import numpy as np
import pytest

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.sharding import (
    ConsistentHashMapper,
    MonotonicHashMapper,
    jump_consistent_hash,
)
from repro.errors import ConfigurationError, QueryFailedError
from repro.sim.latency import HiccupModel, LogNormalTailLatency
from repro.workloads.fanout_experiment import probe_schema
from repro.workloads.queries import simple_probe_query


@pytest.fixture
def loaded(events_schema):
    deployment = CubrickDeployment(
        DeploymentConfig(seed=77, regions=2, racks_per_region=2,
                         hosts_per_rack=4)
    )
    schema = probe_schema("scuba")
    deployment.create_table(schema)
    rng = np.random.default_rng(1)
    deployment.load(
        "scuba",
        [{"bucket": int(rng.integers(64)), "value": 1.0} for __ in range(800)],
    )
    deployment.simulator.run_until(30.0)
    return deployment, simple_probe_query(schema)


class TestPartialResults:
    def test_full_coverage_when_healthy(self, loaded):
        deployment, probe = loaded
        result = deployment.query(probe)
        assert result.metadata["partial"] is False
        assert result.metadata["coverage"] == 1.0

    def test_dead_host_is_skipped_not_fatal(self, loaded):
        deployment, probe = loaded
        coordinator = deployment.coordinators["region0"]
        hosts = coordinator.partition_hosts("scuba")
        victim = sorted(hosts)[0]
        lost_partitions = len(hosts[victim])
        deployment.cluster.host(victim).fail(permanent=False)
        # Strict mode in region0 fails outright...
        with pytest.raises(QueryFailedError):
            coordinator.execute(probe)
        # ... Scuba mode answers with reduced coverage and fewer rows.
        result = coordinator.execute(probe, allow_partial=True)
        assert result.metadata["partial"] is True
        expected_coverage = 1.0 - lost_partitions / 8
        assert result.metadata["coverage"] == pytest.approx(expected_coverage)
        assert victim in result.metadata["skipped_hosts"]
        assert result.scalar() < 800.0
        deployment.cluster.host(victim).recover()

    def test_straggler_timeout_bounds_latency(self):
        deployment = CubrickDeployment(
            DeploymentConfig(seed=78, regions=1, racks_per_region=2,
                             hosts_per_rack=4),
            latency_model=LogNormalTailLatency(
                base=0.001, median=0.01, sigma=0.3,
                hiccups=HiccupModel(probability=0.2, min_delay=0.5,
                                    max_delay=2.0),
            ),
        )
        schema = probe_schema("slow")
        deployment.create_table(schema)
        rng = np.random.default_rng(2)
        deployment.load(
            "slow",
            [{"bucket": int(rng.integers(64)), "value": 1.0}
             for __ in range(400)],
        )
        deployment.simulator.run_until(30.0)
        probe = simple_probe_query(schema)
        timeout = 0.1
        dropped_any = False
        for __ in range(50):
            result = deployment.query(
                probe, allow_partial=True, straggler_timeout=timeout
            )
            assert result.metadata["latency"] <= timeout + 0.01
            if result.metadata["partial"]:
                dropped_any = True
                assert result.metadata["coverage"] < 1.0
        # With 20% hiccup probability and fan-out 8, stragglers are
        # certain to appear across 50 queries.
        assert dropped_any

    def test_proxy_passes_partial_mode_through(self, loaded):
        deployment, probe = loaded
        coordinator = deployment.coordinators["region0"]
        victim = sorted(coordinator.partition_hosts("scuba"))[0]
        deployment.cluster.host(victim).fail(permanent=False)
        result = deployment.proxy.submit(probe, allow_partial=True)
        # No cross-region retry needed: region0 answered partially.
        assert result.metadata["region"] == "region0"
        assert result.metadata["partial"] is True
        deployment.cluster.host(victim).recover()


class TestJumpConsistentHash:
    def test_range(self):
        for key in (0, 1, 2 ** 63, 2 ** 64 - 1):
            assert 0 <= jump_consistent_hash(key, 10) < 10

    def test_deterministic(self):
        assert jump_consistent_hash(12345, 100) == jump_consistent_hash(12345, 100)

    def test_single_bucket(self):
        assert jump_consistent_hash(999, 1) == 0

    def test_uniformity(self):
        counts = np.zeros(10, dtype=int)
        for key in range(20_000):
            counts[jump_consistent_hash(key * 2654435761, 10)] += 1
        assert counts.min() > 0.8 * counts.mean()

    def test_minimal_remapping(self):
        """Growing buckets n -> n+1 moves ~1/(n+1) of the keys."""
        n = 50
        moved = 0
        keys = [k * 0x9E3779B97F4A7C15 for k in range(10_000)]
        for key in keys:
            if jump_consistent_hash(key, n) != jump_consistent_hash(key, n + 1):
                moved += 1
        assert moved / len(keys) == pytest.approx(1 / (n + 1), rel=0.3)

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            jump_consistent_hash(1, 0)


class TestConsistentHashMapper:
    def test_monotonic_consecutive(self):
        mapper = ConsistentHashMapper(max_shards=10_000)
        shards = mapper.shards_of("t", 8)
        base = shards[0]
        assert shards == [(base + i) % 10_000 for i in range(8)]

    def test_no_same_table_collisions(self):
        mapper = ConsistentHashMapper(max_shards=1000)
        for t in range(200):
            shards = mapper.shards_of(f"t{t}", 32)
            assert len(set(shards)) == 32

    def test_growing_shard_space_moves_few_tables(self):
        """The paper's motivation for consistent hashing (§IV-A):
        changing maxShards should not reshuffle every table."""
        tables = [f"table_{i}" for i in range(2000)]
        small = ConsistentHashMapper(max_shards=100_000)
        grown = ConsistentHashMapper(max_shards=110_000)
        moved = sum(
            1 for t in tables if small.shard_of(t, 0) != grown.shard_of(t, 0)
        )
        # Jump hash moves ~10k/110k ≈ 9% of tables; the modulo-based
        # mapper would move essentially all of them.
        assert moved / len(tables) < 0.2

        naive_small = MonotonicHashMapper(max_shards=100_000)
        naive_grown = MonotonicHashMapper(max_shards=110_000)
        naive_moved = sum(
            1 for t in tables
            if naive_small.shard_of(t, 0) != naive_grown.shard_of(t, 0)
        )
        assert naive_moved / len(tables) > 0.9
        assert moved < naive_moved

    def test_invalid_max_shards(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashMapper(max_shards=0)
