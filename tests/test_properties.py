"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.wall import query_success_ratio, scalability_wall
from repro.cubrick.granular import GranularIndex
from repro.cubrick.partitioning import partition_of, plan_repartition
from repro.cubrick.query import (
    AggFunc,
    Aggregation,
    PartialResult,
    Query,
    finalize_state,
    initial_state,
    merge_states,
)
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.cubrick.sharding import MonotonicHashMapper, NaiveHashMapper
from repro.cubrick.storage import PartitionStorage

SCHEMA = TableSchema.build(
    "prop",
    dimensions=[Dimension("a", 64, range_size=16), Dimension("b", 16, range_size=4)],
    metrics=[Metric("m")],
)

row_strategy = st.fixed_dictionaries(
    {
        "a": st.integers(0, 63),
        "b": st.integers(0, 15),
        "m": st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
    }
)


class TestAggStateProperties:
    @given(
        func=st.sampled_from(list(AggFunc)),
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1, max_size=30,
        ),
        split=st.integers(0, 30),
    )
    def test_merge_is_split_invariant(self, func, values, split):
        """Aggregating a split in two halves == aggregating the whole."""
        split = min(split, len(values))

        def fold(chunk):
            state = initial_state(func)
            for v in chunk:
                state = merge_states(func, state, _leaf(func, v))
            return state

        whole = finalize_state(func, fold(values))
        merged = finalize_state(
            func,
            merge_states(func, fold(values[:split]), fold(values[split:])),
        )
        if whole is None or merged is None:
            assert whole == merged
        else:
            assert math.isclose(whole, merged, rel_tol=1e-9, abs_tol=1e-6)

    @given(func=st.sampled_from(list(AggFunc)))
    def test_initial_state_is_identity(self, func):
        leaf = _leaf(func, 5.0)
        merged = merge_states(func, initial_state(func), leaf)
        assert finalize_state(func, merged) == finalize_state(func, leaf)


def _leaf(func: AggFunc, value: float):
    """State representing a single observed value."""
    if func is AggFunc.COUNT:
        return 1.0
    if func is AggFunc.AVG:
        return (value, 1.0)
    if func is AggFunc.COUNT_DISTINCT:
        return frozenset({value})
    return value


class TestPartitioningProperties:
    @given(row=row_strategy, n=st.integers(1, 128))
    def test_partition_in_range_and_deterministic(self, row, n):
        p = partition_of(SCHEMA, row, n)
        assert 0 <= p < n
        assert partition_of(SCHEMA, row, n) == p

    @given(
        rows=st.lists(row_strategy, max_size=50),
        n=st.integers(1, 16),
    )
    def test_repartition_plan_is_a_partition(self, rows, n):
        plan = plan_repartition(SCHEMA, rows, n)
        assert sum(len(chunk) for chunk in plan.values()) == len(rows)
        for index, chunk in plan.items():
            for row in chunk:
                assert partition_of(SCHEMA, row, n) == index


class TestMapperProperties:
    @given(
        table=st.text(
            alphabet=st.characters(blacklist_characters="#", min_codepoint=33,
                                   max_codepoint=126),
            min_size=1, max_size=20,
        ),
        count=st.integers(1, 64),
        max_shards=st.integers(64, 100_000),
    )
    def test_monotonic_mapper_never_self_collides(self, table, count, max_shards):
        assume(count <= max_shards)
        mapper = MonotonicHashMapper(max_shards=max_shards)
        shards = mapper.shards_of(table, count)
        assert len(set(shards)) == count
        assert all(0 <= s < max_shards for s in shards)

    @given(
        table=st.text(
            alphabet=st.characters(blacklist_characters="#", min_codepoint=33,
                                   max_codepoint=126),
            min_size=1, max_size=20,
        ),
        count=st.integers(1, 32),
    )
    def test_naive_mapper_in_keyspace(self, table, count):
        mapper = NaiveHashMapper(max_shards=997)
        assert all(0 <= s < 997 for s in mapper.shards_of(table, count))


class TestWallProperties:
    @given(
        p=st.floats(min_value=1e-7, max_value=0.1),
        sla=st.floats(min_value=0.5, max_value=0.9999),
    )
    def test_wall_is_the_sla_boundary(self, p, sla):
        wall = scalability_wall(p, sla)
        assert query_success_ratio(wall, p) >= sla
        assert query_success_ratio(wall + 1, p) < sla

    @given(
        p=st.floats(min_value=1e-7, max_value=0.1),
        n1=st.integers(0, 1000),
        n2=st.integers(0, 1000),
    )
    def test_success_monotone_in_fanout(self, p, n1, n2):
        low, high = sorted((n1, n2))
        assert query_success_ratio(high, p) <= query_success_ratio(low, p)


class TestQueryEngineProperties:
    @settings(max_examples=30, deadline=None)
    @given(rows=st.lists(row_strategy, min_size=1, max_size=60))
    def test_sum_and_count_match_numpy(self, rows):
        storage = PartitionStorage(SCHEMA, 0)
        storage.insert_many(rows)
        query = Query.build(
            "prop",
            [Aggregation(AggFunc.SUM, "m"), Aggregation(AggFunc.COUNT, "m")],
        )
        result = storage.execute(query).finalize()
        values = np.array([r["m"] for r in rows])
        total, count = result.rows[0]
        assert count == len(rows)
        assert total == pytest.approx(values.sum(), rel=1e-9, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.lists(row_strategy, min_size=1, max_size=60),
        splits=st.integers(1, 4),
    )
    def test_partition_split_is_execution_invariant(self, rows, splits):
        """Any horizontal split of the data gives the same group-by answer
        after partial-result merging — the invariant that makes Cubrick's
        distributed execution correct regardless of shard layout."""
        query = Query.build(
            "prop", [Aggregation(AggFunc.SUM, "m")], group_by=["b"]
        )
        whole = PartitionStorage(SCHEMA, 0)
        whole.insert_many(rows)
        expected = whole.execute(query).finalize().rows

        merged = PartialResult(query=query)
        for i in range(splits):
            part = PartitionStorage(SCHEMA, i)
            part.insert_many(
                [r for j, r in enumerate(rows) if j % splits == i]
            )
            merged.merge(part.execute(query))
        got = merged.finalize().rows
        assert len(got) == len(expected)
        for (k1, v1), (k2, v2) in zip(got, expected):
            assert k1 == k2
            assert v1 == pytest.approx(v2, rel=1e-9, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(rows=st.lists(row_strategy, min_size=1, max_size=60))
    def test_granular_routing_is_consistent(self, rows):
        """Every row lands in the brick its coordinates demand."""
        storage = PartitionStorage(SCHEMA, 0)
        index = GranularIndex(SCHEMA)
        for row in rows:
            brick_id = storage.insert(row)
            assert brick_id == index.brick_of(row)

    @settings(max_examples=20, deadline=None)
    @given(rows=st.lists(row_strategy, min_size=1, max_size=60))
    def test_compression_does_not_change_results(self, rows):
        storage = PartitionStorage(SCHEMA, 0)
        storage.insert_many(rows)
        query = Query.build(
            "prop", [Aggregation(AggFunc.SUM, "m")], group_by=["a"]
        )
        before = storage.execute(query).finalize().rows
        for brick in storage.bricks():
            brick.compress()
        after = storage.execute(query).finalize().rows
        assert len(before) == len(after)
        for (k1, v1), (k2, v2) in zip(before, after):
            assert k1 == k2
            assert v1 == pytest.approx(v2, rel=1e-12)
