"""Tests for the regionfail experiment (consensus failover demo)."""

from __future__ import annotations

import pytest

from repro.consensus.demo import run_regionfail_experiment
from repro.errors import ConfigurationError

PARAMS = dict(duration=200.0, queries=100, partition_at=60.0,
              partition_duration=60.0)


@pytest.fixture(scope="module")
def report():
    return run_regionfail_experiment(seed=0, **PARAMS)


class TestRegionFailOutcome:
    def test_managed_arm_holds_sla(self, report):
        assert report.sla_met
        assert report.managed_min_window >= report.sla
        # The fault actually overlapped measured traffic.
        assert any(
            w.partitioned and w.queries for w in report.managed_windows
        )

    def test_baseline_arm_collapses(self, report):
        assert report.baseline_collapsed
        partitioned = [
            w for w in report.baseline_windows if w.partitioned and w.queries
        ]
        assert partitioned
        assert min(w.success_ratio for w in partitioned) < report.sla

    def test_invariants_hold_through_failover(self, report):
        assert report.invariants_ok
        assert report.invariant_lines

    def test_metadata_leader_moved(self, report):
        # The home region lost its leadership during the partition, so
        # the timeline spans at least two terms.
        assert len(report.leader_timeline) >= 2

    def test_failover_machinery_exercised(self, report):
        assert report.cross_region_served > 0
        assert report.elections_won >= 2
        assert report.log_commits > 0

    def test_overall_verdict(self, report):
        assert report.ok
        rendered = report.render()
        assert "verdict: managed SLA HELD" in rendered
        assert "baseline COLLAPSED" in rendered
        assert "invariants PASS" in rendered


class TestDeterminism:
    def test_reports_byte_identical_across_runs(self, report):
        again = run_regionfail_experiment(seed=0, **PARAMS)
        assert again.render() == report.render()

    def test_seed_changes_report(self, report):
        other = run_regionfail_experiment(seed=7, **PARAMS)
        assert other.render() != report.render()
        assert other.ok  # the demo holds across seeds


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            run_regionfail_experiment(duration=0.0)
        with pytest.raises(ConfigurationError):
            run_regionfail_experiment(queries=0)
        with pytest.raises(ConfigurationError):
            run_regionfail_experiment(duration=100.0, partition_at=150.0)
        with pytest.raises(ConfigurationError):
            run_regionfail_experiment(
                duration=100.0, partition_at=50.0, partition_duration=60.0
            )
