"""Replicated-table recovery: joins survive host loss and scale-out."""

import numpy as np
import pytest

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.query import AggFunc, Aggregation, Join, Query
from repro.cubrick.schema import Dimension, Metric, TableSchema


@pytest.fixture
def star(events_schema):
    deployment = CubrickDeployment(
        DeploymentConfig(seed=144, regions=2, racks_per_region=3,
                         hosts_per_rack=4)
    )
    fact = TableSchema.build(
        "facts",
        dimensions=[Dimension("key", 20), Dimension("day", 10)],
        metrics=[Metric("v")],
    )
    dim = TableSchema.build(
        "dims", [Dimension("key", 20), Dimension("label", 4)], []
    )
    deployment.create_table(fact)
    deployment.create_table(dim, replicated=True)
    deployment.load(
        "dims", [{"key": k, "label": k % 4} for k in range(20)]
    )
    rng = np.random.default_rng(9)
    deployment.load(
        "facts",
        [{"key": int(rng.integers(20)), "day": int(rng.integers(10)),
          "v": 1.0} for __ in range(400)],
    )
    deployment.simulator.run_until(30.0)
    join = Join(table="dims", fact_key="key", dim_key="key")
    query = Query.build(
        "facts",
        [Aggregation(AggFunc.COUNT, "v")],
        group_by=["dims.label"],
        joins=[join],
    )
    return deployment, query


def total_count(result):
    return sum(v for __, v in result.rows)


class TestReplicaRecovery:
    def test_join_correct_after_host_failure_and_recovery(self, star):
        deployment, query = star
        baseline = deployment.query(query)
        assert total_count(baseline) == 400.0

        sm = deployment.sm_servers["region0"]
        victim = next(
            h for h in sm.registered_hosts() if sm.shards_on_host(h)
        )
        deployment.automation.handle_host_failure(victim, permanent=False)
        deployment.simulator.run_until(deployment.simulator.now + 120.0)
        deployment.automation.handle_host_recovery(victim)
        deployment.simulator.run_until(deployment.simulator.now + 60.0)

        # The recovered (reimaged) host has a fresh dims replica...
        assert "dims" in deployment.nodes[victim].replicated_tables()
        assert deployment.nodes[victim].store_replicated("dims").rows == 20
        # ... and even if shards land back on it, joins stay correct.
        sm.collect_metrics()
        sm.run_load_balance()
        deployment.simulator.run_until(deployment.simulator.now + 60.0)
        assert total_count(deployment.query(query)) == 400.0

    def test_new_hosts_receive_replica_data(self, star):
        deployment, query = star
        added = deployment.add_hosts("region0", 2)
        for host_id in added:
            node = deployment.nodes[host_id]
            assert "dims" in node.replicated_tables()
            assert node.store_replicated("dims").rows == 20

    def test_join_correct_when_shard_moves_to_new_host(self, star):
        deployment, query = star
        added = deployment.add_hosts("region0", 2)
        sm = deployment.sm_servers["region0"]
        donor = next(
            h for h in sm.registered_hosts() if sm.shards_on_host(h)
        )
        moved = sm.drain_host(donor)
        assert moved > 0
        deployment.simulator.run_until(deployment.simulator.now + 60.0)
        assert total_count(deployment.query(query)) == 400.0
