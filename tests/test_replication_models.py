"""Integration tests for SM replication models and spread domains.

The paper (§III-A1) describes SM's three replication models and the
spread configuration (host/rack/region failure domains). These tests
exercise the fault-tolerance behaviour they exist for: losing a whole
failure domain must never lose every replica of a shard.
"""

import pytest

from repro.cluster.topology import Cluster
from repro.shardmanager.app_server import InMemoryApplicationServer
from repro.shardmanager.server import ReplicaRole, SMServer
from repro.shardmanager.spec import ReplicationModel, ServiceSpec, SpreadDomain
from repro.sim.engine import Simulator


def make_service(spec, *, racks=4, hosts_per_rack=3):
    simulator = Simulator()
    cluster = Cluster.build(
        regions=1, racks_per_region=racks, hosts_per_rack=hosts_per_rack
    )
    server = SMServer(spec, simulator, cluster, region="region0")
    apps = {}
    for host in cluster.hosts():
        app = InMemoryApplicationServer(host.host_id, capacity=1000.0)
        apps[host.host_id] = app
        server.register_host(app)
    return simulator, cluster, server, apps


class TestRackSpread:
    SPEC = ServiceSpec(
        name="rackspread",
        max_shards=1000,
        replication_model=ReplicationModel.SECONDARY_ONLY,
        replication_factor=1,
        spread=SpreadDomain.RACK,
    )

    def test_replicas_land_in_distinct_racks(self):
        __, cluster, server, __a = make_service(self.SPEC)
        for shard in range(10):
            entry = server.create_shard(shard, size_hint=1.0)
            racks = {
                cluster.host(r.host_id).failure_domain("rack")
                for r in entry.replicas
            }
            assert len(racks) == 2

    def test_rack_loss_leaves_a_live_replica(self):
        simulator, cluster, server, __a = make_service(self.SPEC)
        for shard in range(10):
            server.create_shard(shard, size_hint=1.0)
        # Take a whole rack down.
        doomed = [h.host_id for h in cluster.hosts_in_rack("region0", "rack000")]
        for host_id in doomed:
            cluster.host(host_id).fail(permanent=False)
        simulator.run_until(120.0)  # sessions expire, failovers run
        for shard in range(10):
            entry = server.shard_entry(shard)
            live = [
                r for r in entry.replicas
                if cluster.host(r.host_id).is_available
            ]
            assert live, f"shard {shard} lost every replica to one rack"

    def test_failover_restores_spread(self):
        simulator, cluster, server, __a = make_service(self.SPEC)
        entry = server.create_shard(1, size_hint=1.0)
        victim = entry.replicas[0].host_id
        cluster.host(victim).fail(permanent=False)
        simulator.run_until(120.0)
        refreshed = server.shard_entry(1)
        racks = {
            cluster.host(r.host_id).failure_domain("rack")
            for r in refreshed.replicas
        }
        assert len(racks) == 2
        assert all(
            cluster.host(r.host_id).is_available for r in refreshed.replicas
        )


class TestPrimarySecondaryTraffic:
    SPEC = ServiceSpec(
        name="ps",
        max_shards=1000,
        replication_model=ReplicationModel.PRIMARY_SECONDARY,
        replication_factor=2,
    )

    def test_discovery_always_points_at_primary(self):
        simulator, __, server, __a = make_service(self.SPEC)
        entry = server.create_shard(1, size_hint=1.0)
        primary = entry.primary()
        assert primary is not None
        assert server.discovery.resolve_authoritative(1) == primary.host_id

    def test_chain_of_primary_failures(self):
        """Kill primaries twice in a row: promotion keeps one primary
        alive and discovery always follows it."""
        simulator, cluster, server, __a = make_service(self.SPEC)
        server.create_shard(1, size_hint=1.0)
        for __round in range(2):
            entry = server.shard_entry(1)
            primary = entry.primary()
            cluster.host(primary.host_id).fail(permanent=False)
            simulator.run_until(simulator.now + 120.0)
            refreshed = server.shard_entry(1)
            new_primary = refreshed.primary()
            assert new_primary is not None
            assert new_primary.host_id != primary.host_id
            assert cluster.host(new_primary.host_id).is_available
            assert (
                server.discovery.resolve_authoritative(1)
                == new_primary.host_id
            )
            # Replica count is restored to 3 after each failover.
            assert len(refreshed.replicas) == 3
            roles = sorted(r.role.value for r in refreshed.replicas)
            assert roles == ["primary", "secondary", "secondary"]

    def test_secondary_failure_does_not_move_primary(self):
        simulator, cluster, server, __a = make_service(self.SPEC)
        entry = server.create_shard(1, size_hint=1.0)
        primary_host = entry.primary().host_id
        secondary = next(
            r for r in entry.replicas if r.role is ReplicaRole.SECONDARY
        )
        cluster.host(secondary.host_id).fail(permanent=False)
        simulator.run_until(120.0)
        assert server.discovery.resolve_authoritative(1) == primary_host
        refreshed = server.shard_entry(1)
        assert refreshed.primary().host_id == primary_host
