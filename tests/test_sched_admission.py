"""Admission control: sliding window, token buckets, adaptive shedding."""

from __future__ import annotations

import pytest

from repro.cubrick.proxy import AdmissionController
from repro.errors import ConfigurationError
from repro.obs import Observability
from repro.sched.admission import (
    REASON_OK,
    REASON_QUOTA,
    REASON_SHED,
    REASON_TENANT_QUOTA,
    AdaptiveShedder,
    AdmissionControllerV2,
    SlidingWindowAdmission,
    TokenBucket,
)
from repro.sched.queue import PriorityClass


# ----------------------------------------------------------------------
# Sliding window (and the proxy compat shim)
# ----------------------------------------------------------------------


def test_sliding_window_enforces_global_qps():
    admission = SlidingWindowAdmission(max_qps=3.0, window=1.0)
    assert all(admission.admit(0.0) for __ in range(3))
    assert not admission.admit(0.5)
    # Window slides: the t=0 arrivals age out.
    assert admission.admit(1.0)


def test_sliding_window_table_quota_is_independent():
    admission = SlidingWindowAdmission(max_qps=100.0)
    admission.set_table_quota("hot", 2.0)
    assert admission.admit(0.0, "hot")
    assert admission.admit(0.0, "hot")
    assert not admission.admit(0.0, "hot")
    assert admission.admit(0.0, "cold")  # other tables unaffected
    with pytest.raises(ValueError):
        admission.set_table_quota("hot", 0.0)


def test_fast_path_regression_arrivals_recorded_without_limit():
    """Tightening max_qps mid-run must see the true recent rate.

    The old fast path skipped recording while ``max_qps`` was infinite,
    so an operator clamping the limit during an incident started from an
    empty window and over-admitted a full window's worth of traffic.
    """
    admission = SlidingWindowAdmission()  # max_qps=inf
    for i in range(10):
        assert admission.admit(i * 0.05)  # 10 arrivals inside one window
    admission.max_qps = 5.0
    # The window already holds 10 recent arrivals — well over the new
    # limit — so the very next arrival is rejected.
    assert not admission.admit(0.5)


def test_proxy_admission_controller_shim_shares_the_fix():
    controller = AdmissionController()
    assert isinstance(controller, SlidingWindowAdmission)
    for i in range(10):
        assert controller.admit(i * 0.05)
    controller.max_qps = 5.0
    assert not controller.admit(0.5)


# ----------------------------------------------------------------------
# Token buckets
# ----------------------------------------------------------------------


def test_token_bucket_starts_full_then_rate_limits():
    bucket = TokenBucket(rate=2.0, burst=4.0)
    assert all(bucket.take(0.0) for __ in range(4))
    assert not bucket.take(0.0)
    # 1 virtual second at 2 tokens/s refills two.
    assert bucket.take(1.0)
    assert bucket.take(1.0)
    assert not bucket.take(1.0)


def test_token_bucket_peek_does_not_consume():
    bucket = TokenBucket(rate=1.0, burst=1.0)
    assert bucket.peek(0.0)
    assert bucket.peek(0.0)
    assert bucket.take(0.0)
    assert not bucket.peek(0.0)


def test_token_bucket_refill_caps_at_burst():
    bucket = TokenBucket(rate=10.0, burst=2.0)
    assert bucket.take(0.0)
    bucket.peek(100.0)  # long idle: refill must clamp to burst
    assert bucket.tokens == pytest.approx(2.0)


def test_token_bucket_validation():
    with pytest.raises(ConfigurationError):
        TokenBucket(rate=0.0)
    with pytest.raises(ConfigurationError):
        TokenBucket(rate=1.0, burst=0.0)


# ----------------------------------------------------------------------
# Adaptive shedding
# ----------------------------------------------------------------------


def make_shedder(**kwargs):
    obs = Observability()
    kwargs.setdefault("min_samples", 4)
    shedder = AdaptiveShedder(obs.metrics, **kwargs)
    return obs, shedder


def test_shedder_needs_min_samples_before_reacting():
    __, shedder = make_shedder(min_samples=10)
    assert shedder.update(0.0) == 0.0  # baseline snapshot
    shedder._miss.inc(5)  # 0% success, but below min_samples
    assert shedder.observed_success_ratio(0.1) is None
    assert shedder.update(0.2) == 0.0


def test_shedder_escalates_on_sla_breach_and_recovers():
    __, shedder = make_shedder(
        window=1.0, step_up=0.25, recovery_per_second=0.1
    )
    assert shedder.update(0.0) == 0.0  # baseline snapshot, no outcomes yet
    shedder._miss.inc(10)
    assert shedder.update(0.1) == pytest.approx(0.25)
    assert shedder.update(0.2) == pytest.approx(0.5)
    # The bad outcomes age out of the 1s window; with a healthy window
    # the level decays linearly in virtual time (and never below zero).
    assert shedder.update(1.5) == pytest.approx(0.5 - 1.3 * 0.1)
    assert shedder.update(20.0) == 0.0
    assert shedder.max_level == pytest.approx(0.5)  # high-water mark kept


def test_shedder_sheds_lowest_priority_first():
    __, shedder = make_shedder()
    shedder.level = 0.3
    shedder._last_update = 0.0
    assert shedder.should_shed(0.0, PriorityClass.BACKGROUND)
    assert not shedder.should_shed(0.0, PriorityClass.BATCH)
    shedder.level = 0.6
    assert shedder.should_shed(0.0, PriorityClass.BATCH)
    # INTERACTIVE is the class the SLA defends: never shed, even at 1.0.
    shedder.level = 1.0
    assert not shedder.should_shed(0.0, PriorityClass.INTERACTIVE)


def test_shedder_reacts_to_queue_pressure_without_sla_data():
    __, shedder = make_shedder(pressure_fn=lambda: 0.9, pressure_trigger=0.8)
    assert shedder.update(0.0) == pytest.approx(0.25)


def test_shedder_validation():
    obs = Observability()
    with pytest.raises(ConfigurationError):
        AdaptiveShedder(obs.metrics, sla_target=0.0)
    with pytest.raises(ConfigurationError):
        AdaptiveShedder(obs.metrics, window=0.0)


# ----------------------------------------------------------------------
# AdmissionControllerV2
# ----------------------------------------------------------------------


def test_v2_global_bucket_rejects_with_quota_reason():
    controller = AdmissionControllerV2(global_rate=1.0, global_burst=2.0)
    assert controller.decide(0.0).reason == REASON_OK
    assert controller.decide(0.0).reason == REASON_OK
    decision = controller.decide(0.0)
    assert not decision.admitted
    assert decision.reason == REASON_QUOTA


def test_v2_tenant_buckets_isolate_tenants():
    controller = AdmissionControllerV2(default_tenant_rate=1.0)
    assert controller.decide(0.0, tenant="a").admitted
    rejected = controller.decide(0.0, tenant="a")
    assert rejected.reason == REASON_TENANT_QUOTA
    # Tenant b has its own untouched bucket.
    assert controller.decide(0.0, tenant="b").admitted


def test_v2_rejection_never_burns_global_tokens():
    controller = AdmissionControllerV2(
        global_rate=10.0, global_burst=5.0, default_tenant_rate=1.0
    )
    assert controller.decide(0.0, tenant="a").admitted  # burns both tokens
    # Tenant a is now out of quota; the *tenant* rejection must not
    # consume a global token.
    before = controller.global_bucket.tokens
    assert controller.decide(0.0, tenant="a").reason == REASON_TENANT_QUOTA
    assert controller.global_bucket.tokens == pytest.approx(before)


def test_v2_shed_check_runs_first():
    obs = Observability()
    shedder = AdaptiveShedder(obs.metrics, min_samples=1)
    shedder.level = 1.0
    shedder._last_update = 0.0
    controller = AdmissionControllerV2(global_rate=100.0, shedder=shedder)
    decision = controller.decide(0.0, priority=PriorityClass.BACKGROUND)
    assert decision.reason == REASON_SHED
    # INTERACTIVE passes the shedder and the bucket.
    assert controller.decide(0.0, priority=PriorityClass.INTERACTIVE).admitted


def test_v2_explicit_tenant_rate_overrides_default():
    controller = AdmissionControllerV2(
        tenant_rates={"vip": 100.0}, default_tenant_rate=1.0
    )
    for __ in range(10):
        assert controller.decide(0.0, tenant="vip").admitted
    controller.set_tenant_rate("vip", 1.0)
    assert controller.decide(0.0, tenant="vip").admitted
    assert not controller.decide(0.0, tenant="vip").admitted


def test_v2_no_config_admits_everything():
    controller = AdmissionControllerV2()
    for i in range(100):
        assert controller.decide(float(i)).admitted
