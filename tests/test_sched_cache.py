"""Query result cache: versioned keys, LRU, proxy/loader integration."""

from __future__ import annotations

import pytest

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.loader import StreamingLoader
from repro.cubrick.query import AggFunc, Aggregation, Query, QueryResult
from repro.errors import ConfigurationError
from repro.sched.cache import CACHE_HIT_LATENCY, QueryResultCache, plan_key

from tests.conftest import make_rows


def make_query(table="events", metric="clicks"):
    return Query.build(table, [Aggregation(AggFunc.SUM, metric)])


def make_result(value=42.0, **metadata):
    return QueryResult(
        columns=("sum(clicks)",),
        rows=[(value,)],
        rows_scanned=100,
        bricks_scanned=3,
        metadata=metadata,
    )


def test_round_trip_and_stats():
    cache = QueryResultCache(capacity=4)
    query = make_query()
    assert cache.get(query, generation=0, ingest_generation=0) is None
    cache.put(query, make_result(), generation=0, ingest_generation=0)
    hit = cache.get(query, generation=0, ingest_generation=0)
    assert hit is not None
    assert hit.rows == [(42.0,)]
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_ratio() == pytest.approx(0.5)


def test_version_bump_makes_old_entries_unreachable():
    cache = QueryResultCache(capacity=4)
    query = make_query()
    cache.put(query, make_result(), generation=0, ingest_generation=0)
    # Any write bumps a generation; the old key never matches again.
    assert cache.get(query, generation=0, ingest_generation=1) is None
    assert cache.get(query, generation=1, ingest_generation=0) is None
    assert cache.get(query, generation=0, ingest_generation=0) is not None


def test_returned_copy_is_independent_of_the_snapshot():
    cache = QueryResultCache(capacity=4)
    query = make_query()
    cache.put(query, make_result(latency=0.5), generation=0, ingest_generation=0)
    first = cache.get(query, generation=0, ingest_generation=0)
    first.rows.append(("corruption",))
    first.metadata["latency"] = 99.0
    second = cache.get(query, generation=0, ingest_generation=0)
    assert second.rows == [(42.0,)]
    assert second.metadata["latency"] == 0.5


def test_partial_and_degraded_results_are_refused():
    cache = QueryResultCache(capacity=4)
    query = make_query()
    cache.put(query, make_result(partial=True), generation=0, ingest_generation=0)
    cache.put(query, make_result(degraded=True), generation=0, ingest_generation=0)
    assert cache.get(query, generation=0, ingest_generation=0) is None
    assert len(cache) == 0


def test_lru_eviction_prefers_recently_used():
    cache = QueryResultCache(capacity=2)
    a = make_query(metric="clicks")
    b = Query.build("events", [Aggregation(AggFunc.MAX, "clicks")])
    c = Query.build("events", [Aggregation(AggFunc.COUNT, "clicks")])
    cache.put(a, make_result(), generation=0, ingest_generation=0)
    cache.put(b, make_result(), generation=0, ingest_generation=0)
    cache.get(a, generation=0, ingest_generation=0)  # a is now most recent
    cache.put(c, make_result(), generation=0, ingest_generation=0)  # evicts b
    assert cache.stats.evictions == 1
    assert cache.get(a, generation=0, ingest_generation=0) is not None
    assert cache.get(b, generation=0, ingest_generation=0) is None


def test_invalidate_table_drops_only_that_table():
    cache = QueryResultCache(capacity=8)
    events = make_query("events")
    cache.put(events, make_result(), generation=0, ingest_generation=0)
    assert cache.invalidate_table("events") == 1
    assert cache.invalidate_table("events") == 0
    assert cache.stats.invalidations == 1
    assert cache.get(events, generation=0, ingest_generation=0) is None


def test_plan_key_is_structural():
    # Two structurally identical queries built separately share a key.
    assert plan_key(make_query()) == plan_key(make_query())
    with pytest.raises(ConfigurationError):
        QueryResultCache(capacity=0)


# ----------------------------------------------------------------------
# Integration: proxy serving from cache, writes invalidating it
# ----------------------------------------------------------------------


@pytest.fixture
def cached_deployment(events_schema):
    deployment = CubrickDeployment(
        DeploymentConfig(
            seed=11, regions=2, racks_per_region=2, hosts_per_rack=3,
            result_cache_capacity=32,
        )
    )
    deployment.create_table(events_schema, num_partitions=4)
    deployment.load("events", make_rows(events_schema, 400, seed=3))
    deployment.simulator.run_until(30.0)
    return deployment


def test_proxy_serves_repeats_from_cache(cached_deployment):
    query = make_query()
    first = cached_deployment.proxy.submit(query)
    second = cached_deployment.proxy.submit(query)
    assert second.rows == first.rows
    assert "cached" not in first.metadata
    assert second.metadata["cached"] is True
    assert second.metadata["latency_total"] == CACHE_HIT_LATENCY
    assert cached_deployment.proxy.result_cache.stats.hits == 1
    # The query log records the hit without any node attempts.
    assert cached_deployment.proxy.query_log[-1].cached
    assert cached_deployment.proxy.query_log[-1].attempts == 0


def test_bulk_load_invalidates_cached_answers(cached_deployment, events_schema):
    query = make_query()
    stale = cached_deployment.proxy.submit(query)
    cached_deployment.load("events", make_rows(events_schema, 50, seed=4))
    fresh = cached_deployment.proxy.submit(query)
    # The load bumped the ingestion generation: the answer was recomputed
    # and reflects the new rows.
    assert "cached" not in fresh.metadata
    assert fresh.rows[0][0] > stale.rows[0][0]


def test_streaming_flush_invalidates_cached_answers(
    cached_deployment, events_schema
):
    query = make_query()
    stale = cached_deployment.proxy.submit(query)
    info = cached_deployment.catalog.get("events")
    generation_before = info.ingest_generation
    loader = StreamingLoader(cached_deployment, "events", batch_rows=10_000)
    loader.append_many(make_rows(events_schema, 30, seed=5))
    loader.flush()
    assert info.ingest_generation > generation_before
    fresh = cached_deployment.proxy.submit(query)
    assert "cached" not in fresh.metadata
    assert fresh.rows[0][0] > stale.rows[0][0]
    # The flush announced itself as a structured event.
    kinds = [e["kind"] for e in cached_deployment.obs.events.tail()]
    assert "cubrick.loader.flush" in kinds
