"""WorkloadManager: admission, caching, queues and SLA accounting."""

from __future__ import annotations

import pytest

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.errors import ConfigurationError
from repro.sched import PriorityClass, SchedPolicy, WorkloadManager

from tests.conftest import make_rows


@pytest.fixture
def deployment(events_schema):
    d = CubrickDeployment(
        DeploymentConfig(seed=21, regions=2, racks_per_region=2, hosts_per_rack=3)
    )
    d.create_table(events_schema, num_partitions=4)
    d.load("events", make_rows(events_schema, 300, seed=2))
    d.simulator.run_until(30.0)
    return d


def make_query(metric="clicks"):
    return Query.build("events", [Aggregation(AggFunc.SUM, metric)])


def test_managed_submit_resolves_with_sla_accounting(deployment):
    manager = WorkloadManager(deployment, policy=SchedPolicy.managed())
    record = manager.submit(make_query(), tenant="acme")
    assert record.outcome == "pending"
    assert manager.outstanding() == 1
    assert manager.drain()
    assert record.outcome == "ok"
    assert record.admitted
    assert record.sla_ok
    assert record.latency > 0.0
    assert record.node in manager.queues
    assert manager.admitted_success_ratio() == 1.0
    assert manager.obs.metrics.counter("repro.sched.sla", outcome="ok").value == 1


def test_repeat_queries_hit_the_cache_and_skip_the_queue(deployment):
    manager = WorkloadManager(deployment, policy=SchedPolicy.managed())
    first = manager.submit(make_query(), tenant="acme")
    manager.drain()
    done = []
    second = manager.submit(make_query(), tenant="acme", on_done=done.append)
    # Cache hits resolve synchronously — no queueing, no drain needed.
    assert done == [second]
    assert second.outcome == "cache_hit"
    assert second.admitted
    assert second.sla_ok
    assert second.latency < first.latency
    hits = manager.obs.metrics.counter("repro.sched.cache", outcome="hit")
    assert hits.value == 1


def test_round_robin_spreads_jobs_across_region_queues(deployment):
    manager = WorkloadManager(
        deployment, policy=SchedPolicy.managed(cache_capacity=0)
    )
    records = [manager.submit(make_query(), tenant="acme") for __ in range(4)]
    assert manager.drain()
    nodes = [r.node for r in records]
    assert nodes == ["region0", "region1", "region0", "region1"]


def test_quota_rejections_count_and_emit_events(deployment):
    manager = WorkloadManager(
        deployment,
        policy=SchedPolicy.managed(
            global_rate=1.0, adaptive_shedding=False, cache_capacity=0
        ),
    )
    outcomes = [
        manager.submit(make_query(), tenant="acme").outcome for __ in range(3)
    ]
    # The global bucket starts with one token: the rest bounce synchronously.
    assert outcomes.count("quota") == 2
    counter = manager.obs.metrics.counter("repro.sched.admission", reason="quota")
    assert counter.value == 2
    rejected = [
        e for e in manager.obs.events.tail()
        if e["kind"] == "repro.sched.rejected"
    ]
    assert len(rejected) == 2
    assert rejected[0]["reason"] == "quota"
    assert rejected[0]["tenant"] == "acme"
    assert rejected[0]["table"] == "events"
    assert manager.drain()
    # Rejected queries are not admitted and never count against the SLA.
    assert manager.admitted_success_ratio() == 1.0


def test_tenant_quota_isolates_tenants(deployment):
    manager = WorkloadManager(
        deployment,
        policy=SchedPolicy.managed(
            tenant_rate=1.0, adaptive_shedding=False, cache_capacity=0
        ),
    )
    assert manager.submit(make_query(), tenant="hog").outcome == "pending"
    assert manager.submit(make_query(), tenant="hog").outcome == "tenant_quota"
    assert manager.submit(make_query(), tenant="quiet").outcome == "pending"
    assert manager.drain()


def test_queue_full_overflow_is_counted(deployment):
    manager = WorkloadManager(
        deployment,
        policy=SchedPolicy.managed(
            slots_per_node=1,
            max_queue_depth=1,
            adaptive_shedding=False,
            cache_capacity=0,
        ),
    )
    # Per region: 1 running + 1 waiting; the rest bounce as queue_full.
    records = [manager.submit(make_query(), tenant="acme") for __ in range(8)]
    full = [r for r in records if r.outcome == "queue_full"]
    assert len(full) == 4
    assert all(not r.sla_ok for r in full)
    counter = manager.obs.metrics.counter(
        "repro.sched.admission", reason="queue_full"
    )
    assert counter.value == 4
    assert manager.drain()


def test_legacy_policy_admits_everything_and_queues_forever(deployment):
    manager = WorkloadManager(deployment, policy=SchedPolicy.legacy())
    assert manager.admission is None
    assert manager.cache is None
    assert manager.shedder is None
    records = [manager.submit(make_query(), tenant="acme") for __ in range(20)]
    assert all(r.outcome == "pending" for r in records)
    assert manager.drain()
    assert all(r.outcome == "ok" for r in records)
    # Deadlines are accounted (sla_ok may be False) but never enforced:
    # nothing was dropped.
    assert all(r.admitted for r in records)


def test_background_priority_waits_behind_interactive(deployment):
    manager = WorkloadManager(
        deployment,
        policy=SchedPolicy.managed(
            slots_per_node=1, adaptive_shedding=False, cache_capacity=0,
            deadline=60.0,
        ),
    )
    order = []
    manager.submit(make_query(), tenant="seed")  # occupies region0's slot
    # Pin the round-robin so both contenders land on busy region0.
    manager._next_queue = 0
    manager.submit(
        make_query(), tenant="bg", priority=PriorityClass.BACKGROUND,
        on_done=lambda r: order.append("bg"),
    )
    manager._next_queue = 0
    manager.submit(
        make_query(), tenant="fg", priority=PriorityClass.INTERACTIVE,
        on_done=lambda r: order.append("fg"),
    )
    assert manager.drain()
    assert order == ["fg", "bg"]


def test_drain_gives_up_at_the_horizon(deployment):
    manager = WorkloadManager(deployment, policy=SchedPolicy.legacy())
    for __ in range(5):
        manager.submit(make_query(), tenant="acme")
    assert not manager.drain(max_time=1e-9, step=1e-9)
    assert manager.outstanding() > 0
    with pytest.raises(ConfigurationError):
        manager.drain(step=0.0)
    assert manager.drain()
