"""ExecutorQueue and NodeSlots: slots, EDF dispatch, bounded depth."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs import Observability
from repro.sched.queue import (
    OUTCOME_EXPIRED,
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_QUEUE_FULL,
    ExecutorQueue,
    NodeSlots,
    PriorityClass,
    ScheduledJob,
)
from repro.sim.engine import Simulator


def make_job(label, *, priority=PriorityClass.INTERACTIVE, service=1.0,
             deadline=None, on_complete=None):
    return ScheduledJob(
        label=label,
        priority=priority,
        execute=lambda: service,
        deadline=deadline,
        on_complete=on_complete,
    )


def test_jobs_occupy_slots_and_wait_in_virtual_time():
    simulator = Simulator()
    queue = ExecutorQueue(simulator, slots=1)
    done = []
    first = make_job("first", service=2.0, on_complete=lambda j: done.append(j))
    second = make_job("second", service=1.0, on_complete=lambda j: done.append(j))
    queue.submit(first)
    queue.submit(second)
    assert queue.running == 1
    assert queue.waiting == 1

    simulator.run_until(10.0)
    assert [j.label for j in done] == ["first", "second"]
    assert first.queue_delay == 0.0
    assert second.queue_delay == pytest.approx(2.0)  # waited for first's slot
    assert second.total_latency == pytest.approx(3.0)
    assert second.completed == pytest.approx(3.0)
    assert queue.stats.completed == 2
    assert queue.stats.total_wait == pytest.approx(2.0)


def test_dispatch_order_is_priority_class_then_edf():
    simulator = Simulator()
    queue = ExecutorQueue(simulator, slots=1)
    order = []
    queue.submit(make_job("running", service=1.0))
    # Submitted in deliberately shuffled order; dispatch must sort by
    # priority class first, then earliest deadline within a class.
    for label, priority, deadline in [
        ("batch-late", PriorityClass.BATCH, 90.0),
        ("interactive-late", PriorityClass.INTERACTIVE, 80.0),
        ("batch-early", PriorityClass.BATCH, 50.0),
        ("interactive-early", PriorityClass.INTERACTIVE, 60.0),
        ("background", PriorityClass.BACKGROUND, 10.0),
    ]:
        queue.submit(make_job(
            label, priority=priority, service=1.0, deadline=deadline,
            on_complete=lambda j: order.append(j.label),
        ))
    simulator.run_until(100.0)
    assert order == [
        "interactive-early", "interactive-late",
        "batch-early", "batch-late",
        "background",
    ]


def test_missing_deadline_sorts_after_deadlined_jobs():
    simulator = Simulator()
    queue = ExecutorQueue(simulator, slots=1)
    order = []
    queue.submit(make_job("running", service=1.0))
    queue.submit(make_job("no-deadline", service=1.0,
                          on_complete=lambda j: order.append(j.label)))
    queue.submit(make_job("deadlined", service=1.0, deadline=50.0,
                          on_complete=lambda j: order.append(j.label)))
    simulator.run_until(10.0)
    assert order == ["deadlined", "no-deadline"]


def test_full_queue_rejects_immediately():
    simulator = Simulator()
    queue = ExecutorQueue(simulator, slots=1, max_depth=1)
    outcomes = {}
    for label in ("a", "b", "c"):
        queue.submit(make_job(
            label, service=1.0,
            on_complete=lambda j: outcomes.setdefault(j.label, j.outcome),
        ))
    # "c" found the single waiting slot taken by "b" and was bounced
    # synchronously, before any virtual time passed.
    assert outcomes == {"c": OUTCOME_QUEUE_FULL}
    assert queue.stats.rejected_full == 1
    simulator.run_until(10.0)
    assert outcomes["a"] == OUTCOME_OK
    assert outcomes["b"] == OUTCOME_OK


def test_lapsed_deadline_drops_without_executing():
    simulator = Simulator()
    queue = ExecutorQueue(simulator, slots=1)
    executed = []

    def expiring_job():
        job = ScheduledJob(
            label="expiring",
            priority=PriorityClass.INTERACTIVE,
            execute=lambda: executed.append("expiring") or 1.0,
            deadline=2.0,  # lapses while the 5s job holds the slot
        )
        return job

    queue.submit(make_job("slow", service=5.0))
    dropped = expiring_job()
    queue.submit(dropped)
    simulator.run_until(10.0)
    assert dropped.outcome == OUTCOME_EXPIRED
    assert executed == []  # never ran: the slot went to no one
    assert dropped.queue_delay == pytest.approx(5.0)
    assert queue.stats.expired == 1
    assert not dropped.sla_ok


def test_failed_execution_frees_the_slot_immediately():
    simulator = Simulator()
    queue = ExecutorQueue(simulator, slots=1)

    def boom():
        raise RuntimeError("scan exploded")

    failed = ScheduledJob(
        label="failing", priority=PriorityClass.INTERACTIVE, execute=boom
    )
    queue.submit(make_job("slow", service=3.0))
    queue.submit(failed)
    ok = make_job("after", service=1.0)
    queue.submit(ok)
    simulator.run_until(10.0)
    assert failed.outcome == OUTCOME_FAILED
    assert failed.error == "RuntimeError: scan exploded"
    assert queue.stats.failed == 1
    assert ok.outcome == OUTCOME_OK


def test_closed_loop_resubmit_queues_behind_earlier_arrivals():
    simulator = Simulator()
    queue = ExecutorQueue(simulator, slots=1)
    order = []

    def resubmit(job):
        order.append(job.label)
        if job.label == "looper":
            queue.submit(make_job("looper-2", service=1.0,
                                  on_complete=lambda j: order.append(j.label)))

    queue.submit(make_job("looper", service=1.0, on_complete=resubmit))
    queue.submit(make_job("waiter", service=1.0,
                          on_complete=lambda j: order.append(j.label)))
    simulator.run_until(10.0)
    # The synchronous resubmission from looper's completion callback must
    # not jump ahead of "waiter", which arrived first.
    assert order == ["looper", "waiter", "looper-2"]


def test_pressure_bounded_and_unbounded():
    simulator = Simulator()
    bounded = ExecutorQueue(simulator, slots=1, max_depth=4)
    assert bounded.pressure == 0.0
    bounded.submit(make_job("run", service=1.0))
    for i in range(2):
        bounded.submit(make_job(f"w{i}", service=1.0))
    assert bounded.pressure == pytest.approx(0.5)

    unbounded = ExecutorQueue(simulator, slots=1, max_depth=None)
    unbounded.submit(make_job("run", service=1.0))
    for i in range(2):
        unbounded.submit(make_job(f"w{i}", service=1.0))
    assert 0.0 < unbounded.pressure <= 1.0


def test_queue_emits_obs_counters_and_wait_histogram():
    simulator = Simulator()
    obs = Observability(clock=lambda: simulator.now)
    queue = ExecutorQueue(simulator, name="region0", slots=1, max_depth=1, obs=obs)
    for label in ("a", "b", "c"):
        queue.submit(make_job(label, service=1.0))
    simulator.run_until(10.0)
    counters = {
        (entry["labels"]["outcome"]): entry["value"]
        for entry in obs.metrics.snapshot()
        if entry["name"] == "repro.sched.queue.jobs"
    }
    assert counters == {OUTCOME_OK: 2, OUTCOME_QUEUE_FULL: 1}
    wait = obs.metrics.histogram("repro.sched.queue.wait_seconds", node="region0")
    assert wait.readout()["count"] == 2


def test_queue_validation():
    simulator = Simulator()
    with pytest.raises(ConfigurationError):
        ExecutorQueue(simulator, slots=0)
    with pytest.raises(ConfigurationError):
        ExecutorQueue(simulator, slots=1, max_depth=-1)


def test_node_slots_shape_waits_across_arrivals():
    slots = NodeSlots(2)
    # Two lanes free: both scans start instantly.
    assert slots.occupy(0.0, 1.0) == pytest.approx(1.0)
    assert slots.occupy(0.0, 2.0) == pytest.approx(2.0)
    # Third scan at t=0 waits for the earliest lane (free at t=1).
    assert slots.wait_for_lane(0.0) == pytest.approx(1.0)
    assert slots.occupy(0.0, 1.0) == pytest.approx(2.0)  # 1s wait + 1s service
    # A late arrival finds a lane free and pays no wait.
    assert slots.occupy(5.0, 1.0) == pytest.approx(1.0)
    assert slots.scans == 4
    assert slots.total_wait == pytest.approx(1.0)


def test_node_slots_saturation_flag():
    slots = NodeSlots(1, max_wait=0.5)
    assert not slots.saturated(0.0)
    slots.occupy(0.0, 2.0)
    assert slots.saturated(0.0)
    assert not slots.saturated(1.6)
    with pytest.raises(ConfigurationError):
        NodeSlots(0)
    with pytest.raises(ConfigurationError):
        NodeSlots(1, max_wait=-1.0)
