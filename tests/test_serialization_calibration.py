"""Tests for schema serialization and latency-model calibration."""

import json

import numpy as np
import pytest

from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.errors import SchemaError
from repro.sim.latency import (
    HiccupModel,
    LogNormalTailLatency,
    fit_lognormal_tail,
)


class TestSchemaSerialization:
    def test_roundtrip(self, events_schema):
        payload = events_schema.to_dict()
        restored = TableSchema.from_dict(payload)
        assert restored == events_schema

    def test_json_safe(self, events_schema):
        text = json.dumps(events_schema.to_dict())
        assert TableSchema.from_dict(json.loads(text)) == events_schema

    def test_metricless_dimension_table(self):
        schema = TableSchema.build(
            "dim", [Dimension("k", 10), Dimension("a", 3)], []
        )
        assert TableSchema.from_dict(schema.to_dict()) == schema

    def test_range_size_preserved(self):
        schema = TableSchema.build(
            "t", [Dimension("x", 100, range_size=25)], [Metric("m")]
        )
        restored = TableSchema.from_dict(schema.to_dict())
        assert restored.dimension("x").range_size == 25
        assert restored.dimension("x").bucket_count == 4

    def test_malformed_payload_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema.from_dict({"name": "t", "dimensions": [{}],
                                   "metrics": []})
        with pytest.raises(SchemaError):
            TableSchema.from_dict({"name": "t"})


class TestLatencyCalibration:
    def test_fit_recovers_parameters(self, rng):
        truth = LogNormalTailLatency(
            base=0.0, median=0.02, sigma=0.6,
            hiccups=HiccupModel(probability=0.0),
        )
        samples = truth.sample_many(rng, 100_000)
        fitted = fit_lognormal_tail(samples)
        assert np.exp(fitted.mu) == pytest.approx(0.02, rel=0.05)
        assert fitted.sigma == pytest.approx(0.6, rel=0.05)

    def test_fitted_model_reproduces_quantiles(self, rng):
        truth = LogNormalTailLatency(
            base=0.005, median=0.01, sigma=0.4,
            hiccups=HiccupModel(probability=0.0),
        )
        samples = truth.sample_many(rng, 50_000)
        fitted = fit_lognormal_tail(samples, base=0.005)
        refit_samples = fitted.sample_many(rng, 50_000)
        for q in (50, 90, 99):
            assert np.percentile(refit_samples, q) == pytest.approx(
                np.percentile(samples, q), rel=0.1
            )

    def test_base_subtracted(self, rng):
        samples = np.full(100, 0.010)
        fitted = fit_lognormal_tail(samples, base=0.002)
        assert np.exp(fitted.mu) == pytest.approx(0.008)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_lognormal_tail(np.array([0.01]))

    def test_non_positive_samples_dropped(self, rng):
        samples = np.concatenate([
            np.full(50, -1.0),
            rng.lognormal(np.log(0.01), 0.3, size=500),
        ])
        fitted = fit_lognormal_tail(samples)
        assert np.exp(fitted.mu) == pytest.approx(0.01, rel=0.1)

    def test_constant_samples_get_tiny_sigma(self):
        fitted = fit_lognormal_tail(np.full(10, 0.02))
        assert fitted.sigma <= 1e-6
        assert np.exp(fitted.mu) == pytest.approx(0.02)
