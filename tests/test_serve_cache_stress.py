"""Result-cache freshness under concurrent serving traffic.

The DES never had concurrency: one query ran start-to-finish before
anything else moved. The serving tier breaks that assumption — loads
and queries interleave on the event loop — so the result cache's
generation keying carries the whole freshness contract. These tests pin
it down from both ends:

* a deterministic regression for the mid-flight store race: a load
  landing between a query's execution and its cache store must make the
  stored entry unreachable, never a stale hit (the store is keyed by
  the *pre-execution* version snapshot);
* an asyncio stress test against a live gateway: concurrent closed-loop
  readers racing a writer, asserting that no response ever reflects
  less data than had been acknowledged as loaded before the query was
  submitted.
"""

from __future__ import annotations

import asyncio

from repro.serve import (
    ServeClient,
    ServeError,
    ServeGateway,
    build_serving_deployment,
)


def _total(result_rows) -> float:
    return float(result_rows[0][0])


def test_cache_store_keyed_by_preexecution_versions():
    """A load landing mid-query must not poison the cache (stale read)."""
    serving = build_serving_deployment(0)
    deployment = serving.deployment
    proxy = deployment.proxy
    query = deployment.compile_sql("SELECT sum(clicks) FROM events")

    real_submit = proxy._submit

    def load_lands_mid_flight(q, **kwargs):
        result = real_submit(q, **kwargs)
        # Executed against the old data; the bump happens before the
        # proxy gets a chance to store the answer.
        deployment.load("events", [{"day": 1, "clicks": 50.0}])
        return result

    proxy._submit = load_lands_mid_flight
    stale = proxy.submit(query)
    proxy._submit = real_submit

    fresh = proxy.submit(query)
    assert not fresh.metadata.get("cached"), (
        "post-load lookup hit a cache entry stored for pre-load data"
    )
    assert _total(fresh.rows) == _total(stale.rows) + 50.0
    # And the fresh answer is itself cacheable under the new versions.
    again = proxy.submit(query)
    assert again.metadata.get("cached") is True
    assert _total(again.rows) == _total(fresh.rows)


def test_no_stale_reads_under_concurrent_load_and_query():
    """Readers racing a writer never observe acknowledged data missing."""

    async def stress() -> None:
        serving = build_serving_deployment(0)
        gateway = ServeGateway(serving)
        host, port = await gateway.start()
        statement = "SELECT sum(clicks) FROM events"
        violations: list[tuple[float, float]] = []
        unexpected: list[str] = []
        stop = asyncio.Event()
        # Sum of clicks acknowledged by a load response so far. Updated
        # only *after* the gateway confirms the load, so any query
        # submitted later must see at least this much extra data.
        committed = 0.0
        reads = 0

        async with ServeClient(host, port) as probe:
            baseline = _total((await probe.sql(statement))["rows"])

        async def writer() -> None:
            nonlocal committed
            async with ServeClient(host, port) as client:
                while not stop.is_set():
                    await client.load(
                        "events", [{"day": 3, "clicks": 1000.0}]
                    )
                    committed += 1000.0
                    await asyncio.sleep(0.02)

        async def reader(index: int) -> None:
            nonlocal reads
            async with ServeClient(host, port) as client:
                while not stop.is_set():
                    floor = baseline + committed
                    try:
                        result = await client.sql(
                            statement, tenant=f"reader{index}"
                        )
                    except ServeError as exc:
                        if exc.code != "rejected":
                            unexpected.append(exc.code)
                        continue
                    reads += 1
                    total = _total(result["rows"])
                    if total < floor - 1e-6:
                        violations.append((total, floor))

        tasks = [asyncio.ensure_future(writer())]
        tasks += [asyncio.ensure_future(reader(i)) for i in range(6)]
        await asyncio.sleep(2.0)
        stop.set()
        await asyncio.gather(*tasks)
        await gateway.drain(timeout=30.0)

        assert not unexpected, f"unexpected error codes: {unexpected}"
        assert reads >= 10, f"stress produced too few reads: {reads}"
        assert committed >= 1000.0, "writer never landed a load"
        assert not violations, (
            f"stale reads observed (total, required floor): {violations[:5]}"
        )
        assert gateway.stats.dropped_responses == 0

    asyncio.run(stress())


def test_coalesced_followers_share_fresh_generation_only():
    """A request arriving after a load never attaches to a pre-load run."""

    async def check() -> None:
        serving = build_serving_deployment(0)
        gateway = ServeGateway(serving)
        host, port = await gateway.start()
        statement = "SELECT sum(clicks) FROM events GROUP BY day"
        async with ServeClient(host, port) as client:
            leader = asyncio.ensure_future(client.sql(statement))
            # Give the leader's submission a tick to register in the
            # coalescing map, then invalidate its generation via a load.
            while not gateway._inflight_queries:
                await asyncio.sleep(0.001)
            await client.load("events", [{"day": 3, "clicks": 77.0}])
            follower = await client.sql(statement)
            leader_result = await leader
        await gateway.drain(timeout=30.0)
        # The follower ran against the post-load generation: it must not
        # have coalesced onto the pre-load leader, and its day-3 bucket
        # carries the extra clicks.
        assert not follower.get("coalesced")
        by_day_leader = dict(
            (row[0], row[1]) for row in leader_result["rows"]
        )
        by_day_follower = dict(
            (row[0], row[1]) for row in follower["rows"]
        )
        assert by_day_follower[3] == by_day_leader[3] + 77.0

    asyncio.run(check())
