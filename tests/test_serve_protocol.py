"""Wire-protocol and gateway behaviour of the serving tier.

Covers the hostile-client matrix the protocol docstring promises:
malformed frames get a typed error and the connection survives;
oversized frames get a typed error and the connection dies (the stream
cannot be trusted); a mid-request disconnect never takes the server
down; SQL and spec errors come back as typed responses; admission
rejections carry their reason; and a graceful drain answers every
accepted in-flight request before stopping (the zero-loss invariant).

All tests run a real gateway on an ephemeral loopback port inside
``asyncio.run`` — no event-loop plugin needed.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal

import pytest

from repro.errors import ConfigurationError, QueryError
from repro.serve import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    FrameTooLargeError,
    MalformedFrameError,
    RealTimeClock,
    ServeClient,
    ServeError,
    ServeGateway,
    build_serving_deployment,
    encode_frame,
    query_from_spec,
    read_frame,
    serve_policy,
)
from repro.serve.gateway import parse_priority
from repro.serve.protocol import (
    HEADER,
    error_response,
    jsonable,
    ok_response,
)


def run(coro):
    return asyncio.run(coro)


async def started_gateway(**kwargs) -> ServeGateway:
    serving = build_serving_deployment(
        kwargs.pop("seed", 0), policy=kwargs.pop("policy", None)
    )
    gateway = ServeGateway(serving, **kwargs)
    await gateway.start()
    return gateway


def _feed(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def test_frame_roundtrip():
    async def check():
        message = {"op": "ping", "id": 7, "nested": {"a": [1, 2.5, None]}}
        reader = _feed(encode_frame(message) + encode_frame({"op": "stats"}))
        assert await read_frame(reader) == message
        assert await read_frame(reader) == {"op": "stats"}

    run(check())


def test_read_frame_eof_between_frames():
    async def check():
        with pytest.raises(ConnectionClosed):
            await read_frame(_feed(b""))

    run(check())


def test_read_frame_eof_mid_frame():
    async def check():
        truncated = encode_frame({"op": "ping"})[:-3]
        with pytest.raises(ConnectionClosed):
            await read_frame(_feed(truncated))

    run(check())


def test_read_frame_oversized_declared_length():
    async def check():
        with pytest.raises(FrameTooLargeError):
            await read_frame(_feed(HEADER.pack(2**31)), max_bytes=1024)

    run(check())


def test_read_frame_undecodable_payload():
    async def check():
        payload = b"\xffnot json"
        with pytest.raises(MalformedFrameError):
            await read_frame(_feed(HEADER.pack(len(payload)) + payload))

    run(check())


def test_read_frame_rejects_non_object():
    async def check():
        payload = json.dumps([1, 2, 3]).encode()
        with pytest.raises(MalformedFrameError):
            await read_frame(_feed(HEADER.pack(len(payload)) + payload))

    run(check())


def test_response_shapes():
    ok = ok_response(3, {"x": 1})
    assert ok == {"id": 3, "ok": True, "result": {"x": 1}}
    err = error_response(None, "rejected", "no", reason="shed")
    assert err["ok"] is False
    assert err["error"] == {"code": "rejected", "message": "no", "reason": "shed"}


def test_jsonable_coercions():
    import numpy as np

    coerced = jsonable(
        {
            "rows": [(np.float64(1.5), np.int64(2))],
            "flag": True,
            "none": None,
            "other": object(),
        }
    )
    assert coerced["rows"] == [[1.5, 2]]
    assert coerced["flag"] is True
    assert coerced["none"] is None
    assert isinstance(coerced["other"], str)
    # Round-trips through the stdlib encoder.
    json.dumps(coerced)


def test_real_time_clock_is_anchored_and_monotone():
    clock = RealTimeClock(start=1000.0)
    first = clock.now()
    assert first >= 1000.0
    assert clock() >= first


# ----------------------------------------------------------------------
# Request parsing helpers
# ----------------------------------------------------------------------


def test_parse_priority():
    from repro.sched.queue import PriorityClass

    assert parse_priority(None) is PriorityClass.INTERACTIVE
    assert parse_priority("batch") is PriorityClass.BATCH
    assert parse_priority("BACKGROUND") is PriorityClass.BACKGROUND
    with pytest.raises(QueryError):
        parse_priority("urgent")


def test_query_from_spec_full():
    query = query_from_spec(
        {
            "table": "events",
            "aggregations": [{"func": "sum", "metric": "clicks"}],
            "filters": [
                {"op": "between", "dimension": "day", "values": [0, 6]}
            ],
            "group_by": ["day"],
            "order_by": "day",
            "descending": False,
            "limit": 5,
        }
    )
    assert query.table == "events"
    assert query.limit == 5
    assert query.filters[0].values == (0, 6)


@pytest.mark.parametrize(
    "spec",
    [
        {},
        {"table": "events"},
        {"table": "events", "aggregations": ["sum"]},
        {"table": "events", "aggregations": [{"func": "median", "metric": "x"}]},
        {"table": "events", "aggregations": [{"func": "sum"}]},
        {
            "table": "events",
            "aggregations": [{"func": "sum", "metric": "clicks"}],
            "filters": ["day"],
        },
        {
            "table": "events",
            "aggregations": [{"func": "sum", "metric": "clicks"}],
            "filters": [{"op": "near", "dimension": "day", "values": [1]}],
        },
        {
            "table": "events",
            "aggregations": [{"func": "sum", "metric": "clicks"}],
            "filters": [{"op": "eq", "values": [1]}],
        },
        {
            "table": "events",
            "aggregations": [{"func": "sum", "metric": "clicks"}],
            "filters": [{"op": "eq", "dimension": "day", "values": "one"}],
        },
        {
            "table": "events",
            "aggregations": [{"func": "sum", "metric": "clicks"}],
            "filters": [{"op": "eq", "dimension": "day", "values": ["x"]}],
        },
        {
            "table": "events",
            "aggregations": [{"func": "sum", "metric": "clicks"}],
            "group_by": [1],
        },
        {
            "table": "events",
            "aggregations": [{"func": "sum", "metric": "clicks"}],
            "limit": "ten",
        },
        {
            "table": "events",
            "aggregations": [{"func": "sum", "metric": "clicks"}],
            "order_by": 3,
        },
    ],
)
def test_query_from_spec_rejects_malformed(spec):
    with pytest.raises(QueryError):
        query_from_spec(spec)


def test_gateway_config_validation():
    serving = build_serving_deployment(0)
    with pytest.raises(ConfigurationError):
        ServeGateway(serving, max_inflight=0)
    with pytest.raises(ConfigurationError):
        ServeGateway(serving, pump_interval=0.0)
    with pytest.raises(ConfigurationError):
        ServeGateway(serving).address  # not started


def test_serve_policy_overrides():
    policy = serve_policy(cache_capacity=7)
    assert policy.cache_capacity == 7
    assert policy.adaptive_shedding is True


# ----------------------------------------------------------------------
# Gateway: happy paths
# ----------------------------------------------------------------------


def test_ping_stats_and_virtual_time():
    async def check():
        gateway = await started_gateway()
        try:
            host, port = gateway.address
            async with ServeClient(host, port) as client:
                pong = await client.ping()
                assert pong["pong"] is True
                stats = await client.stats()
                assert stats["connections_open"] == 1
                assert stats["virtual_time"] >= pong["time"]
                assert stats["draining"] is False
        finally:
            await gateway.close()

    run(check())


def test_sql_executes_then_caches():
    async def check():
        gateway = await started_gateway()
        try:
            host, port = gateway.address
            async with ServeClient(host, port) as client:
                first = await client.sql(
                    "SELECT sum(clicks) FROM events", tenant="t0"
                )
                assert first["columns"] == ["sum(clicks)"]
                assert first["rows_scanned"] > 0
                assert not first.get("cached")
                second = await client.sql(
                    "SELECT sum(clicks) FROM events", tenant="t0"
                )
                assert second["cached"] is True
                assert second["rows"] == first["rows"]
        finally:
            await gateway.close()

    run(check())


def test_programmatic_query_op():
    async def check():
        gateway = await started_gateway()
        try:
            host, port = gateway.address
            async with ServeClient(host, port) as client:
                result = await client.query(
                    {
                        "table": "events",
                        "aggregations": [{"func": "sum", "metric": "clicks"}],
                        "group_by": ["day"],
                        "limit": 3,
                    }
                )
                assert result["columns"] == ["day", "sum(clicks)"]
                assert len(result["rows"]) == 3
        finally:
            await gateway.close()

    run(check())


def test_load_bumps_generation_and_invalidate_counts():
    async def check():
        gateway = await started_gateway()
        try:
            host, port = gateway.address
            async with ServeClient(host, port) as client:
                before = await client.sql("SELECT sum(clicks) FROM events")
                loaded = await client.load(
                    "events", [{"day": 1, "clicks": 50.0}]
                )
                assert loaded["rows_loaded"] == 1
                assert loaded["ingest_generation"] >= 2
                after = await client.sql("SELECT sum(clicks) FROM events")
                assert not after.get("cached")
                assert after["rows"][0][0] == before["rows"][0][0] + 50.0
                dropped = await client.invalidate("events")
                assert dropped["invalidated"] >= 0
        finally:
            await gateway.close()

    run(check())


def test_identical_inflight_queries_coalesce():
    async def check():
        gateway = await started_gateway()
        try:
            host, port = gateway.address
            async with ServeClient(host, port) as client:
                statement = "SELECT sum(clicks) FROM events GROUP BY day"
                results = await asyncio.gather(
                    *(client.sql(statement, tenant="t1") for __ in range(4))
                )
            assert gateway.stats.coalesced >= 1
            assert sum(1 for r in results if r.get("coalesced")) >= 1
            rows = {json.dumps(r["rows"]) for r in results}
            assert len(rows) == 1
        finally:
            await gateway.close()

    run(check())


def test_backpressure_window_still_answers_everything():
    async def check():
        gateway = await started_gateway(max_inflight=1)
        try:
            host, port = gateway.address
            async with ServeClient(host, port) as client:
                statements = [
                    f"SELECT sum(clicks) FROM events GROUP BY day LIMIT {i}"
                    for i in range(1, 6)
                ]
                results = await asyncio.gather(
                    *(client.sql(s) for s in statements)
                )
            assert len(results) == 5
            assert gateway.stats.responses_total == 5
        finally:
            await gateway.close()

    run(check())


# ----------------------------------------------------------------------
# Gateway: typed errors, hostile clients
# ----------------------------------------------------------------------


def test_sql_error_is_typed_and_connection_survives():
    async def check():
        gateway = await started_gateway()
        try:
            host, port = gateway.address
            async with ServeClient(host, port) as client:
                with pytest.raises(ServeError) as excinfo:
                    await client.sql("SELEKT sum(clicks) FROM events")
                assert excinfo.value.code == "sql"
                assert "context" in excinfo.value.error
                pong = await client.ping()
                assert pong["pong"] is True
        finally:
            await gateway.close()

    run(check())


@pytest.mark.parametrize(
    "message, code",
    [
        ({"op": "sql", "sql": "SELECT sum(clicks) FROM ghosts"}, "table_not_found"),
        ({"op": "load", "table": "ghosts", "rows": []}, "table_not_found"),
        ({"op": "invalidate", "table": "ghosts"}, "table_not_found"),
        ({"op": "sql"}, "bad_request"),
        ({"op": "sql", "sql": "SELECT sum(clicks) FROM events",
          "priority": "urgent"}, "bad_request"),
        ({"op": "query", "table": "events"}, "bad_request"),
        ({"op": "load", "table": "events"}, "bad_request"),
        ({"op": "load", "table": "events", "rows": [{"day": "x"}]},
         "bad_request"),
        ({"op": "invalidate"}, "bad_request"),
        ({"op": "compact"}, "unknown_op"),
        ({"op": "query", "table": "ghosts",
          "aggregations": [{"func": "sum", "metric": "clicks"}]},
         "table_not_found"),
    ],
)
def test_typed_request_errors(message, code):
    async def check():
        gateway = await started_gateway()
        try:
            host, port = gateway.address
            async with ServeClient(host, port) as client:
                with pytest.raises(ServeError) as excinfo:
                    await client.call(message)
                assert excinfo.value.code == code
                assert (await client.ping())["pong"] is True
        finally:
            await gateway.close()

    run(check())


def test_malformed_frame_gets_error_and_connection_survives():
    async def check():
        gateway = await started_gateway()
        try:
            host, port = gateway.address
            reader, writer = await asyncio.open_connection(host, port)
            garbage = b"\xff\xfe not json"
            writer.write(HEADER.pack(len(garbage)) + garbage)
            await writer.drain()
            response = await read_frame(reader)
            assert response["error"]["code"] == "malformed"
            # Framing was intact, so the connection still works.
            writer.write(encode_frame({"op": "ping", "id": 1}))
            await writer.drain()
            response = await read_frame(reader)
            assert response["ok"] is True
            writer.close()
            await writer.wait_closed()
            assert gateway.stats.protocol_errors == 1
        finally:
            await gateway.close()

    run(check())


def test_oversized_frame_gets_error_then_disconnect():
    async def check():
        gateway = await started_gateway(max_frame_bytes=1024)
        try:
            host, port = gateway.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(HEADER.pack(MAX_FRAME_BYTES + 1))
            await writer.drain()
            response = await read_frame(reader)
            assert response["error"]["code"] == "oversized"
            # The stream is untrusted: the server hangs up on us.
            with pytest.raises(ConnectionClosed):
                await read_frame(reader)
            writer.close()
            await writer.wait_closed()
        finally:
            await gateway.close()

    run(check())


def test_mid_request_disconnect_leaves_server_healthy():
    async def check():
        gateway = await started_gateway()
        try:
            host, port = gateway.address
            __, writer = await asyncio.open_connection(host, port)
            # Promise 64 bytes, deliver 8, vanish.
            writer.write(HEADER.pack(64) + b"\x00" * 8)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            for __ in range(100):
                if gateway.stats.connections_open == 0:
                    break
                await asyncio.sleep(0.01)
            assert gateway.stats.connections_open == 0
            async with ServeClient(host, port) as client:
                assert (await client.ping())["pong"] is True
            assert gateway.pending == 0
        finally:
            await gateway.close()

    run(check())


def test_internal_error_is_contained():
    async def check():
        gateway = await started_gateway()
        try:
            host, port = gateway.address

            def explode(*args, **kwargs):
                raise RuntimeError("wiring fault")

            gateway.manager.submit = explode
            async with ServeClient(host, port) as client:
                with pytest.raises(ServeError) as excinfo:
                    await client.sql("SELECT sum(clicks) FROM events")
                assert excinfo.value.code == "internal"
                assert "wiring fault" in str(excinfo.value)
                assert (await client.ping())["pong"] is True
            assert gateway.stats.internal_errors == 1
        finally:
            await gateway.close()

    run(check())


def test_client_request_requires_connection():
    async def check():
        client = ServeClient("127.0.0.1", 1)
        with pytest.raises(ConnectionClosed):
            await client.request({"op": "ping"})

    run(check())


def test_admission_rejects_are_typed_with_reason():
    async def check():
        # One slot, depth-1 queues, hair-trigger deadline: a burst of
        # distinct (uncacheable, uncoalesceable) queries must overflow.
        gateway = await started_gateway(
            policy=serve_policy(
                slots_per_node=1, max_queue_depth=1, deadline=0.3
            )
        )
        try:
            host, port = gateway.address
            async with ServeClient(host, port) as client:
                statements = [
                    f"SELECT sum(clicks) FROM events GROUP BY day LIMIT {i}"
                    for i in range(1, 25)
                ]
                results = await asyncio.gather(
                    *(client.sql(s) for s in statements),
                    return_exceptions=True,
                )
            rejected = [
                r
                for r in results
                if isinstance(r, ServeError) and r.code == "rejected"
            ]
            assert rejected, "burst never tripped admission control"
            for error in rejected:
                assert error.error["reason"] in (
                    "shed", "quota", "tenant_quota", "queue_full", "deadline",
                )
            assert sum(gateway.stats.rejected.values()) == len(rejected)
        finally:
            await gateway.close()

    run(check())


def test_record_response_error_and_degraded_payloads():
    from repro.sched.manager import JobRecord
    from repro.sched.queue import PriorityClass

    async def check():
        gateway = await started_gateway()
        try:
            def record(outcome, **kwargs):
                return JobRecord(
                    index=0,
                    tenant=None,
                    priority=PriorityClass.INTERACTIVE,
                    table="events",
                    submitted=0.0,
                    outcome=outcome,
                    **kwargs,
                )

            shed = gateway._record_response(1, record("shed"), False)
            assert shed["error"]["code"] == "rejected"
            assert shed["error"]["reason"] == "shed"

            failed = gateway._record_response(
                2, record("failed", error="all regions down"), False
            )
            assert failed["error"]["code"] == "query_failed"
            assert "all regions down" in failed["error"]["message"]

            from repro.cubrick.query import QueryResult

            degraded = QueryResult(
                columns=["sum(clicks)"],
                rows=[(1.0,)],
                rows_scanned=10,
                metadata={"degraded": True, "completeness": 0.5},
            )
            ok = gateway._record_response(
                3, record("ok", result=degraded), True
            )
            payload = ok["result"]
            assert payload["degraded"] is True
            assert payload["completeness"] == 0.5
            assert payload["coalesced"] is True
        finally:
            await gateway.close()

    run(check())


def test_coalescing_can_be_disabled():
    async def check():
        gateway = await started_gateway(coalesce=False)
        try:
            host, port = gateway.address
            async with ServeClient(host, port) as client:
                statement = "SELECT sum(clicks) FROM events GROUP BY day"
                await asyncio.gather(
                    *(client.sql(statement, tenant="t2") for __ in range(3))
                )
            assert gateway.stats.coalesced == 0
        finally:
            await gateway.close()

    run(check())


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------


def test_drain_answers_every_accepted_request():
    async def check():
        gateway = await started_gateway()
        host, port = gateway.address
        statements = [
            f"SELECT sum(clicks) FROM events GROUP BY day LIMIT {i}"
            for i in range(1, 9)
        ]
        async with ServeClient(host, port) as client:
            tasks = [
                asyncio.ensure_future(client.sql(s)) for s in statements
            ]
            while gateway.pending == 0:
                await asyncio.sleep(0.001)
            accepted = gateway.pending
            assert accepted > 0
            drained = await gateway.drain(timeout=30.0)
            results = await asyncio.gather(*tasks, return_exceptions=True)
        assert drained is True
        assert gateway.pending == 0
        # Zero loss: every accepted in-flight request got a response —
        # a real answer, never a hang or a dropped write.
        assert gateway.stats.dropped_responses == 0
        assert gateway.stats.responses_total == len(statements)
        for outcome in results:
            assert isinstance(outcome, dict), outcome
            assert outcome["columns"]
        # The listener is gone: new connections are refused.
        with pytest.raises((ConnectionError, OSError)):
            await asyncio.open_connection(host, port)

    run(check())


def test_new_requests_during_drain_get_shutting_down():
    async def check():
        gateway = await started_gateway()
        host, port = gateway.address
        async with ServeClient(host, port) as busy, ServeClient(
            host, port
        ) as bystander:
            inflight = asyncio.ensure_future(
                busy.sql("SELECT sum(clicks) FROM events GROUP BY day")
            )
            while gateway.pending == 0:
                await asyncio.sleep(0.001)
            drain_task = asyncio.ensure_future(gateway.drain(timeout=30.0))
            while not gateway.draining:
                await asyncio.sleep(0.001)
            with pytest.raises(ServeError) as excinfo:
                await bystander.ping()
            assert excinfo.value.code == "shutting_down"
            result = await inflight
            assert result["columns"]
            assert await drain_task is True

    run(check())


def test_drain_flushes_metrics_and_unblocks_serve_forever(tmp_path):
    async def check():
        metrics_path = tmp_path / "serve_metrics.prom"
        gateway = await started_gateway(metrics_path=str(metrics_path))
        host, port = gateway.address
        forever = asyncio.ensure_future(gateway.serve_forever())
        async with ServeClient(host, port) as client:
            await client.sql("SELECT sum(clicks) FROM events")
        assert await gateway.drain() is True
        await asyncio.wait_for(forever, timeout=5.0)
        text = metrics_path.read_text()
        assert "# TYPE" in text
        events = gateway.obs.events
        assert events.of_kind("repro.serve.draining")
        assert events.of_kind("repro.serve.drained")
        # Drain is idempotent once stopped.
        assert await gateway.drain() is True

    run(check())


def test_sigterm_triggers_graceful_drain():
    async def check():
        gateway = await started_gateway()
        gateway.install_signal_handlers()
        loop = asyncio.get_event_loop()
        try:
            host, port = gateway.address
            async with ServeClient(host, port) as client:
                assert (await client.ping())["pong"] is True
            os.kill(os.getpid(), signal.SIGTERM)
            await asyncio.wait_for(gateway.serve_forever(), timeout=10.0)
            assert gateway.pending == 0
        finally:
            loop.remove_signal_handler(signal.SIGTERM)
            loop.remove_signal_handler(signal.SIGINT)

    run(check())


# ----------------------------------------------------------------------
# Bench harness smoke
# ----------------------------------------------------------------------


def test_bench_serve_smoke(tmp_path):
    from repro.serve import render_report, run_bench_async, write_report

    report = run(
        run_bench_async(clients=16, duration=1.0, seed=0, tenants=4)
    )
    assert report["ok"] > 0
    assert report["qps"] > 0
    assert report["protocol_errors"] == 0
    assert report["latency_seconds"]["samples"] == report["ok"]
    assert report["latency_seconds"]["p50"] <= report["latency_seconds"]["p99"]
    assert report["cache"]["hits"] + report["cache"]["misses"] > 0
    text = render_report(report)
    assert "bench-serve: 16 closed-loop clients" in text
    path = tmp_path / "BENCH_serve.json"
    write_report(report, str(path))
    assert json.loads(path.read_text())["benchmark"] == "serve"


def test_bench_serve_against_supplied_gateway():
    from repro.serve import run_bench_async

    async def check():
        gateway = await started_gateway()
        try:
            report = await run_bench_async(
                clients=4,
                duration=0.5,
                seed=1,
                tenants=2,
                query_pool_size=2,
                think_time=0.005,
                gateway=gateway,
            )
            assert report["ok"] > 0
            # The supplied gateway is left running for its owner.
            assert not gateway.draining
            host, port = gateway.address
            async with ServeClient(host, port) as client:
                assert (await client.ping())["pong"] is True
        finally:
            await gateway.close()

    run(check())


def test_bench_serve_validates_config():
    from repro.serve import run_bench_async

    with pytest.raises(ConfigurationError):
        run(run_bench_async(clients=0))
    with pytest.raises(ConfigurationError):
        run(run_bench_async(duration=0.0))
