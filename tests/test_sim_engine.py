"""Tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import DAY, HOUR, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self, simulator):
        order = []
        simulator.schedule(3.0, lambda: order.append("c"))
        simulator.schedule(1.0, lambda: order.append("a"))
        simulator.schedule(2.0, lambda: order.append("b"))
        simulator.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_schedule_order(self, simulator):
        order = []
        for label in "abcde":
            simulator.schedule(5.0, lambda lab=label: order.append(lab))
        simulator.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self, simulator):
        seen = []
        simulator.schedule(7.5, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [7.5]

    def test_call_later_is_relative(self, simulator):
        simulator.schedule(10.0, lambda: None)
        simulator.run()
        seen = []
        simulator.call_later(2.5, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [12.5]

    def test_scheduling_in_the_past_raises(self, simulator):
        simulator.schedule(5.0, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule(1.0, lambda: None)

    def test_negative_delay_raises(self, simulator):
        with pytest.raises(SimulationError):
            simulator.call_later(-1.0, lambda: None)

    def test_events_can_schedule_more_events(self, simulator):
        seen = []

        def first():
            simulator.call_later(1.0, lambda: seen.append(simulator.now))

        simulator.schedule(1.0, first)
        simulator.run()
        assert seen == [2.0]

    def test_cancelled_event_does_not_run(self, simulator):
        seen = []
        event = simulator.schedule(1.0, lambda: seen.append("ran"))
        event.cancel()
        simulator.run()
        assert seen == []

    def test_events_processed_counter(self, simulator):
        for t in range(5):
            simulator.schedule(float(t), lambda: None)
        simulator.run()
        assert simulator.events_processed == 5


class TestRunUntil:
    def test_run_until_executes_only_due_events(self, simulator):
        seen = []
        simulator.schedule(1.0, lambda: seen.append(1))
        simulator.schedule(5.0, lambda: seen.append(5))
        simulator.run_until(3.0)
        assert seen == [1]
        assert simulator.now == 3.0

    def test_run_until_boundary_is_inclusive(self, simulator):
        seen = []
        simulator.schedule(3.0, lambda: seen.append(3))
        simulator.run_until(3.0)
        assert seen == [3]

    def test_run_until_advances_clock_even_without_events(self, simulator):
        simulator.run_until(100.0)
        assert simulator.now == 100.0

    def test_run_until_backwards_raises(self, simulator):
        simulator.run_until(10.0)
        with pytest.raises(SimulationError):
            simulator.run_until(5.0)

    def test_run_with_max_events(self, simulator):
        seen = []
        for t in range(10):
            simulator.schedule(float(t), lambda t=t: seen.append(t))
        simulator.run(max_events=3)
        assert seen == [0, 1, 2]


class TestPeriodic:
    def test_periodic_fires_at_interval(self, simulator):
        ticks = []
        simulator.schedule_periodic(10.0, lambda: ticks.append(simulator.now))
        simulator.run_until(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_periodic_start_delay(self, simulator):
        ticks = []
        simulator.schedule_periodic(
            10.0, lambda: ticks.append(simulator.now), start_delay=0.0
        )
        simulator.run_until(25.0)
        assert ticks == [0.0, 10.0, 20.0]

    def test_periodic_until_bound(self, simulator):
        ticks = []
        simulator.schedule_periodic(
            10.0, lambda: ticks.append(simulator.now), until=30.0
        )
        simulator.run_until(100.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_periodic_cancel(self, simulator):
        ticks = []
        cancel = simulator.schedule_periodic(
            10.0, lambda: ticks.append(simulator.now)
        )
        simulator.run_until(25.0)
        cancel()
        simulator.run_until(100.0)
        assert ticks == [10.0, 20.0]

    def test_non_positive_interval_raises(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule_periodic(0.0, lambda: None)

    def test_time_constants(self):
        assert HOUR == 3600.0
        assert DAY == 24 * HOUR


class TestDeterminism:
    def test_two_runs_are_identical(self):
        def run_once():
            sim = Simulator()
            log = []
            sim.schedule_periodic(7.0, lambda: log.append(("tick", sim.now)))
            sim.schedule(15.0, lambda: log.append(("once", sim.now)))
            sim.run_until(50.0)
            return log

        assert run_once() == run_once()
