"""Tests for the failure models and the failure injector."""

import numpy as np
import pytest

from repro.sim.engine import DAY, Simulator
from repro.sim.failures import (
    BernoulliFailureModel,
    FailureInjector,
    MtbfFailureModel,
)


class TestBernoulliModel:
    def test_success_ratio_formula(self):
        model = BernoulliFailureModel(probability=0.01)
        assert model.query_success_ratio(1) == pytest.approx(0.99)
        assert model.query_success_ratio(2) == pytest.approx(0.99 ** 2)

    def test_zero_fanout_always_succeeds(self):
        model = BernoulliFailureModel(probability=0.5)
        assert model.query_success_ratio(0) == 1.0

    def test_paper_headline_numbers(self):
        """p=0.01%: ~99% success at 100 servers (Figure 1's wall)."""
        model = BernoulliFailureModel(probability=1e-4)
        assert model.query_success_ratio(100) == pytest.approx(0.99, abs=0.001)

    def test_sampling_matches_expectation(self, rng):
        model = BernoulliFailureModel(probability=0.05)
        failures = [model.sample_visit_failures(rng, 100) for __ in range(2000)]
        assert np.mean(failures) == pytest.approx(5.0, rel=0.1)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            BernoulliFailureModel(probability=-0.1)

    def test_negative_fanout_rejected(self):
        with pytest.raises(ValueError):
            BernoulliFailureModel().query_success_ratio(-1)


class TestMtbfModel:
    def test_time_to_failure_has_configured_mean(self, rng):
        model = MtbfFailureModel(mtbf=100.0)
        samples = [model.sample_time_to_failure(rng) for __ in range(5000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.1)

    def test_permanent_fraction(self, rng):
        model = MtbfFailureModel(permanent_fraction=0.25)
        outcomes = [model.sample_is_permanent(rng) for __ in range(5000)]
        assert np.mean(outcomes) == pytest.approx(0.25, abs=0.03)

    def test_downtime_depends_on_permanence(self, rng):
        model = MtbfFailureModel(mttr=60.0, repair_time=6000.0)
        transient = np.mean([model.sample_downtime(rng, False) for __ in range(3000)])
        permanent = np.mean([model.sample_downtime(rng, True) for __ in range(3000)])
        assert permanent > 10 * transient

    def test_instantaneous_unavailability(self):
        model = MtbfFailureModel(
            mtbf=1000.0, mttr=10.0, permanent_fraction=0.0, repair_time=100.0
        )
        assert model.instantaneous_unavailability() == pytest.approx(
            10.0 / 1010.0
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MtbfFailureModel(mtbf=0.0)
        with pytest.raises(ValueError):
            MtbfFailureModel(permanent_fraction=2.0)


class TestBoundaries:
    """Boundary semantics of the failure-model math."""

    def test_success_ratio_fanout_zero_is_exactly_one(self):
        # No hosts visited: success regardless of how unreliable they are.
        assert BernoulliFailureModel(probability=1.0).query_success_ratio(0) == 1.0

    def test_success_ratio_fanout_one_is_exactly_one_minus_p(self):
        model = BernoulliFailureModel(probability=0.125)
        assert model.query_success_ratio(1) == 1.0 - 0.125

    def test_success_ratio_certain_failure(self):
        model = BernoulliFailureModel(probability=1.0)
        assert model.query_success_ratio(1) == 0.0

    def test_downtime_is_strictly_positive(self, rng):
        model = MtbfFailureModel(mttr=60.0, repair_time=6000.0)
        for permanent in (False, True):
            for __ in range(500):
                assert model.sample_downtime(rng, permanent) > 0.0

    def test_downtime_clamps_degenerate_zero_draw_to_mean(self):
        class ZeroExponentialRng:
            def exponential(self, mean):
                return 0.0

        model = MtbfFailureModel(mttr=60.0, repair_time=6000.0)
        assert model.sample_downtime(ZeroExponentialRng(), False) == 60.0
        assert model.sample_downtime(ZeroExponentialRng(), True) == 6000.0

    def test_downtime_rejects_non_positive_mean(self, rng):
        # The frozen dataclass rejects bad means at construction; a
        # corrupted instance must still be refused at sample time.
        model = MtbfFailureModel()
        object.__setattr__(model, "mttr", 0.0)
        with pytest.raises(ValueError, match="non-positive mean"):
            model.sample_downtime(rng, False)
        object.__setattr__(model, "repair_time", -1.0)
        with pytest.raises(ValueError, match="non-positive mean"):
            model.sample_downtime(rng, True)


class TestFailureInjector:
    def _make(self, mtbf=2 * DAY, horizon=None):
        simulator = Simulator()
        events = {"fail": [], "recover": []}
        model = MtbfFailureModel(
            mtbf=mtbf, mttr=600.0, permanent_fraction=0.2, repair_time=DAY
        )
        injector = FailureInjector(
            simulator,
            model,
            np.random.default_rng(42),
            on_fail=lambda h, p: events["fail"].append((h, p)),
            on_recover=lambda h: events["recover"].append(h),
        )
        return simulator, injector, events

    def test_failures_occur_and_recover(self):
        simulator, injector, events = self._make()
        for i in range(20):
            injector.track(f"host{i}", until=30 * DAY)
        simulator.run_until(30 * DAY)
        assert len(events["fail"]) > 0
        # every recorded event eventually recovered (or is still down at end)
        assert len(events["recover"]) <= len(events["fail"])
        assert len(events["recover"]) >= len(events["fail"]) - 20

    def test_untracked_host_stops_failing(self):
        simulator, injector, events = self._make(mtbf=DAY / 4)
        injector.track("h1", until=10 * DAY)
        simulator.run_until(2 * DAY)
        count = len(events["fail"])
        injector.untrack("h1")
        simulator.run_until(10 * DAY)
        assert len(events["fail"]) == count

    def test_track_is_idempotent(self):
        simulator, injector, __ = self._make()
        injector.track("h1", until=DAY)
        injector.track("h1", until=DAY)
        # only one failure chain scheduled; just ensure no crash on run
        simulator.run_until(DAY)

    def test_permanent_failures_per_day(self):
        simulator, injector, __ = self._make(mtbf=DAY)
        for i in range(50):
            injector.track(f"host{i}", until=20 * DAY)
        simulator.run_until(20 * DAY)
        rate = injector.permanent_failures_per_day(20)
        permanent = sum(1 for e in injector.events if e.permanent)
        assert rate == pytest.approx(permanent / 20)
        assert rate > 0

    def test_events_are_recorded_with_times(self):
        simulator, injector, __ = self._make(mtbf=DAY)
        injector.track("h1", until=30 * DAY)
        simulator.run_until(30 * DAY)
        times = [e.time for e in injector.events]
        assert times == sorted(times)
        assert all(e.host_id == "h1" for e in injector.events)

    def test_horizon_validation(self):
        __, injector, __events = self._make()
        with pytest.raises(ValueError):
            injector.permanent_failures_per_day(0)
