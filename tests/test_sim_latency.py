"""Tests for the tail-latency models."""

import numpy as np
import pytest

from repro.sim.latency import (
    HiccupModel,
    LogNormalTailLatency,
    fanout_latency,
)


class TestHiccupModel:
    def test_zero_probability_never_fires(self, rng):
        model = HiccupModel(probability=0.0)
        assert all(model.sample(rng) == 0.0 for __ in range(100))

    def test_certain_probability_always_fires(self, rng):
        model = HiccupModel(probability=1.0, min_delay=0.1, max_delay=0.2)
        samples = [model.sample(rng) for __ in range(50)]
        assert all(0.1 <= s <= 0.2 for s in samples)

    def test_sample_many_matches_rate(self, rng):
        model = HiccupModel(probability=0.1, min_delay=1.0, max_delay=1.0)
        delays = model.sample_many(rng, 50_000)
        rate = (delays > 0).mean()
        assert 0.08 < rate < 0.12

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            HiccupModel(probability=1.5)

    def test_invalid_delay_range_rejected(self):
        with pytest.raises(ValueError):
            HiccupModel(min_delay=2.0, max_delay=1.0)


class TestLogNormalTailLatency:
    def test_sample_components_sum(self, rng):
        model = LogNormalTailLatency(base=0.002, median=0.01, sigma=0.5)
        sample = model.sample(rng)
        assert sample.total == pytest.approx(
            sample.base + sample.tail + sample.hiccup
        )

    def test_median_is_approximately_configured(self, rng):
        model = LogNormalTailLatency(
            base=0.0, median=0.01, sigma=0.5, hiccups=HiccupModel(probability=0.0)
        )
        samples = model.sample_many(rng, 100_000)
        assert np.median(samples) == pytest.approx(0.01, rel=0.05)

    def test_tail_is_heavy(self, rng):
        model = LogNormalTailLatency(
            base=0.0, median=0.01, sigma=1.0, hiccups=HiccupModel(probability=0.0)
        )
        samples = model.sample_many(rng, 100_000)
        p50 = np.percentile(samples, 50)
        p999 = np.percentile(samples, 99.9)
        assert p999 > 10 * p50

    def test_base_is_floor(self, rng):
        model = LogNormalTailLatency(base=0.005, median=0.001, sigma=0.1)
        samples = model.sample_many(rng, 1000)
        assert samples.min() > 0.005

    def test_analytic_quantile_matches_simulation(self, rng):
        model = LogNormalTailLatency(
            base=0.001, median=0.02, sigma=0.8,
            hiccups=HiccupModel(probability=0.0),
        )
        samples = model.sample_many(rng, 200_000)
        for q in (0.5, 0.9, 0.99):
            empirical = np.quantile(samples, q)
            analytic = model.quantile_no_hiccup(q)
            assert empirical == pytest.approx(analytic, rel=0.05)

    def test_quantile_domain_validated(self):
        model = LogNormalTailLatency()
        with pytest.raises(ValueError):
            model.quantile_no_hiccup(0.0)
        with pytest.raises(ValueError):
            model.quantile_no_hiccup(1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LogNormalTailLatency(median=0.0)
        with pytest.raises(ValueError):
            LogNormalTailLatency(sigma=-1.0)
        with pytest.raises(ValueError):
            LogNormalTailLatency(base=-0.1)


class TestFanoutLatency:
    def test_max_of_hosts(self):
        assert fanout_latency(np.array([0.1, 0.5, 0.3])) == 0.5

    def test_single_host(self):
        assert fanout_latency(np.array([0.2])) == pytest.approx(0.2)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fanout_latency(np.array([]))

    def test_fanout_amplifies_tail(self, rng):
        """The core Figure 5 mechanic: p99 grows with fan-out."""
        model = LogNormalTailLatency(base=0.0, median=0.01, sigma=1.0,
                                     hiccups=HiccupModel(probability=0.0))
        n = 20_000
        lone = model.sample_many(rng, n)
        wide = model.sample_many(rng, n * 32).reshape(n, 32).max(axis=1)
        assert np.percentile(wide, 50) > np.percentile(lone, 50)
        assert np.percentile(wide, 99) > 3 * np.percentile(lone, 99) / 2
