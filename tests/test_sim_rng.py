"""Tests for named RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "failures") == derive_seed(42, "failures")

    def test_different_names_differ(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_different_roots_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(123456789, "stream") < 2 ** 64


class TestRegistry:
    def test_same_name_returns_same_stream(self):
        registry = RngRegistry(seed=1)
        assert registry.stream("x") is registry.stream("x")

    def test_streams_are_reproducible_across_registries(self):
        a = RngRegistry(seed=5).stream("latency").random(10)
        b = RngRegistry(seed=5).stream("latency").random(10)
        assert (a == b).all()

    def test_streams_are_independent(self):
        registry = RngRegistry(seed=5)
        # Draining one stream must not affect another.
        before = RngRegistry(seed=5).stream("b").random(5)
        registry.stream("a").random(1000)
        after = registry.stream("b").random(5)
        assert (before == after).all()

    def test_fork_gives_independent_registry(self):
        parent = RngRegistry(seed=9)
        child = parent.fork("worker-1")
        assert child.seed != parent.seed
        assert parent.fork("worker-1").seed == child.seed

    def test_repr_lists_streams(self):
        registry = RngRegistry(seed=3)
        registry.stream("alpha")
        assert "alpha" in repr(registry)
