"""Tests for the SM client routing and the migration engine."""

import pytest

from repro.cluster.topology import Cluster
from repro.errors import (
    HostUnavailableError,
    MigrationError,
    ShardMappingUnknownError,
)
from repro.shardmanager.app_server import InMemoryApplicationServer
from repro.shardmanager.client import SMClient
from repro.shardmanager.migration import MigrationEngine
from repro.shardmanager.server import SMServer
from repro.shardmanager.spec import ServiceSpec
from repro.sim.engine import DAY, Simulator
from repro.smc.registry import ServiceDiscovery


def make_service():
    simulator = Simulator()
    cluster = Cluster.build(regions=1, racks_per_region=2, hosts_per_rack=5)
    server = SMServer(
        ServiceSpec(name="t", max_shards=1000), simulator, cluster,
        region="region0",
    )
    apps = {}
    for host in cluster.hosts():
        app = InMemoryApplicationServer(host.host_id, capacity=1000.0)
        apps[host.host_id] = app
        server.register_host(app)
    return simulator, cluster, server, apps


class TestSMClient:
    def test_resolve_after_propagation(self):
        simulator, __, server, __a = make_service()
        entry = server.create_shard(1, size_hint=1.0)
        simulator.run_until(60.0)
        client = SMClient(server)
        assert client.resolve(1) == entry.replicas[0].host_id

    def test_resolve_before_propagation_raises(self):
        simulator, __, server, __a = make_service()
        server.create_shard(1, size_hint=1.0)
        client = SMClient(server)
        with pytest.raises(ShardMappingUnknownError):
            client.resolve(1)

    def test_request_reaches_owner(self):
        simulator, __, server, __a = make_service()
        entry = server.create_shard(1, size_hint=1.0)
        simulator.run_until(60.0)
        client = SMClient(server)
        result, routed = client.request(1, lambda host: host)
        assert result == entry.replicas[0].host_id
        assert not routed.was_stale
        assert not routed.forwarded

    def test_stale_mapping_forwards_during_migration(self):
        simulator, __, server, apps = make_service()
        entry = server.create_shard(1, size_hint=1.0)
        simulator.run_until(60.0)
        source = entry.replicas[0].host_id
        target = next(h for h in apps if h != source)
        from repro.shardmanager.balancer import MigrationProposal

        server._execute_move(
            MigrationProposal(
                shard_id=1, from_host=source, to_host=target, shard_load=1.0
            )
        )
        client = SMClient(server)
        # Immediately after the move the cache still points at source;
        # source no longer "owns" the shard in SM, so we forward.
        result, routed = client.request(1, lambda host: host)
        assert routed.was_stale
        assert routed.forwarded
        assert result == target

    def test_down_host_raises(self):
        simulator, cluster, server, __a = make_service()
        entry = server.create_shard(1, size_hint=1.0)
        simulator.run_until(60.0)
        victim = entry.replicas[0].host_id
        cluster.host(victim).fail(permanent=False)
        client = SMClient(server)
        with pytest.raises(HostUnavailableError):
            client.request(1, lambda host: host)


class TestMigrationEngine:
    def _engine(self):
        simulator = Simulator()
        discovery = ServiceDiscovery()
        engine = MigrationEngine(simulator, discovery)
        return simulator, discovery, engine

    def test_live_migrate_runs_graceful_protocol(self):
        simulator, discovery, engine = self._engine()
        source = InMemoryApplicationServer("a")
        target = InMemoryApplicationServer("b")
        source.add_shard(1, None)
        source.set_shard_size(1, 42.0)
        record = engine.live_migrate(1, source, target)
        assert record.graceful
        assert target.shard_metrics()[1] == 42.0  # data copied
        assert source.is_forwarding(1)
        assert discovery.resolve_authoritative(1) == "b"
        # Source still holds data until the grace period elapses.
        assert 1 in source.hosted_shards()
        simulator.run_until(engine.drop_grace_period + 1.0)
        assert 1 not in source.hosted_shards()

    def test_live_migrate_to_self_rejected(self):
        __, __d, engine = self._engine()
        app = InMemoryApplicationServer("a")
        app.add_shard(1, None)
        with pytest.raises(MigrationError):
            engine.live_migrate(1, app, app)

    def test_failover_is_single_add(self):
        __, discovery, engine = self._engine()
        target = InMemoryApplicationServer("b")
        record = engine.failover(1, target, failed_host="a")
        assert not record.graceful
        assert record.reason == "failover"
        assert 1 in target.hosted_shards()
        assert discovery.resolve_authoritative(1) == "b"

    def test_failover_with_recovery_source_copies_data(self):
        __, __d, engine = self._engine()
        healthy = InMemoryApplicationServer("c")
        healthy.add_shard(1, None)
        healthy.set_shard_size(1, 7.0)
        target = InMemoryApplicationServer("b")
        engine.failover(1, target, failed_host="a", recovery_source=healthy)
        assert target.shard_metrics()[1] == 7.0

    def test_migrations_per_day_buckets(self):
        simulator, __, engine = self._engine()
        target = InMemoryApplicationServer("b")
        engine.failover(1, target, failed_host="a")
        simulator.run_until(DAY + 10)
        target2 = InMemoryApplicationServer("c")
        engine.failover(2, target2, failed_host="a")
        assert engine.migrations_per_day(2) == [1, 1]

    def test_count_by_reason(self):
        __, __d, engine = self._engine()
        engine.failover(1, InMemoryApplicationServer("b"), failed_host="a")
        counts = engine.count_by_reason()
        assert counts == {"failover": 1}

    def test_invalid_horizon_rejected(self):
        __, __d, engine = self._engine()
        with pytest.raises(ValueError):
            engine.migrations_per_day(0)
