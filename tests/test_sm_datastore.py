"""Tests for the Zookeeper-like datastore: sessions, heartbeats, watches."""

import pytest

from repro.errors import SimulationError
from repro.shardmanager.datastore import Datastore
from repro.sim.engine import Simulator


@pytest.fixture
def store():
    simulator = Simulator()
    return simulator, Datastore(
        simulator, session_timeout=30.0, check_interval=5.0
    )


class TestKeyValue:
    def test_set_get_delete(self, store):
        __, datastore = store
        datastore.set("a/b", 42)
        assert datastore.get("a/b") == 42
        datastore.delete("a/b")
        assert datastore.get("a/b") is None

    def test_get_default(self, store):
        __, datastore = store
        assert datastore.get("missing", "dflt") == "dflt"

    def test_prefix_listing(self, store):
        __, datastore = store
        datastore.set("shards/2", "x")
        datastore.set("shards/1", "y")
        datastore.set("hosts/1", "z")
        assert datastore.keys_with_prefix("shards/") == ["shards/1", "shards/2"]


class TestSessions:
    def test_heartbeats_keep_session_alive(self, store):
        simulator, datastore = store
        session = datastore.create_session("hostA")
        simulator.schedule_periodic(10.0, lambda: datastore.heartbeat(session))
        simulator.run_until(120.0)
        assert not session.expired
        assert len(datastore.live_sessions()) == 1

    def test_missing_heartbeats_expire_session(self, store):
        simulator, datastore = store
        expired = []
        datastore.watch_sessions(expired.append)
        datastore.create_session("hostA")
        simulator.run_until(60.0)
        assert expired == ["hostA"]
        assert datastore.live_sessions() == []

    def test_expiry_happens_after_timeout(self, store):
        simulator, datastore = store
        expired = []
        datastore.watch_sessions(lambda owner: expired.append(simulator.now))
        datastore.create_session("hostA")
        simulator.run_until(200.0)
        assert len(expired) == 1
        assert 30.0 < expired[0] <= 40.0  # timeout + sweep granularity

    def test_heartbeat_on_expired_session_raises(self, store):
        simulator, datastore = store
        session = datastore.create_session("hostA")
        simulator.run_until(60.0)
        with pytest.raises(SimulationError):
            datastore.heartbeat(session)

    def test_ephemeral_keys_vanish_on_expiry(self, store):
        simulator, datastore = store
        session = datastore.create_session("hostA")
        datastore.create_ephemeral(session, "live/hostA", True)
        assert datastore.get("live/hostA") is True
        simulator.run_until(60.0)
        assert datastore.get("live/hostA") is None

    def test_close_session_removes_ephemerals_without_alarm(self, store):
        simulator, datastore = store
        expired = []
        datastore.watch_sessions(expired.append)
        session = datastore.create_session("hostA")
        datastore.create_ephemeral(session, "live/hostA", True)
        datastore.close_session(session)
        simulator.run_until(120.0)
        assert expired == []
        assert datastore.get("live/hostA") is None

    def test_ephemeral_on_expired_session_raises(self, store):
        simulator, datastore = store
        session = datastore.create_session("hostA")
        simulator.run_until(60.0)
        with pytest.raises(SimulationError):
            datastore.create_ephemeral(session, "k", 1)

    def test_multiple_watchers_all_notified(self, store):
        simulator, datastore = store
        a, b = [], []
        datastore.watch_sessions(a.append)
        datastore.watch_sessions(b.append)
        datastore.create_session("hostA")
        simulator.run_until(60.0)
        assert a == ["hostA"] and b == ["hostA"]

    def test_shutdown_stops_sweeps(self, store):
        simulator, datastore = store
        expired = []
        datastore.watch_sessions(expired.append)
        datastore.create_session("hostA")
        datastore.shutdown()
        simulator.run_until(200.0)
        assert expired == []

    def test_invalid_config_rejected(self):
        with pytest.raises(SimulationError):
            Datastore(Simulator(), session_timeout=0.0)
