"""Tests for shard placement and the load balancer."""

import pytest

from repro.cluster.topology import Cluster
from repro.errors import CapacityExceededError
from repro.shardmanager.balancer import LoadBalancer
from repro.shardmanager.metrics import MetricsStore
from repro.shardmanager.placement import PlacementPolicy
from repro.shardmanager.spec import ReplicationModel, ServiceSpec, SpreadDomain


def make_env(spec=None, *, racks=2, hosts_per_rack=5, capacity=100.0):
    cluster = Cluster.build(
        regions=1, racks_per_region=racks, hosts_per_rack=hosts_per_rack
    )
    spec = spec or ServiceSpec(name="t", max_shards=1000)
    metrics = MetricsStore()
    for host in cluster.hosts():
        metrics.report_capacity(host.host_id, capacity)
    return cluster, spec, metrics


class TestPlacement:
    def test_picks_least_utilized(self):
        cluster, spec, metrics = make_env()
        hosts = cluster.host_ids()
        for i, host in enumerate(hosts):
            metrics.report_shard(i, host, float(i * 10), now=0.0)
        policy = PlacementPolicy(spec, cluster, metrics)
        decision = policy.choose_host(99, size_hint=5.0)
        assert decision.host_id == hosts[0]

    def test_respects_capacity(self):
        cluster, spec, metrics = make_env(capacity=10.0)
        policy = PlacementPolicy(spec, cluster, metrics)
        with pytest.raises(CapacityExceededError):
            policy.choose_host(1, size_hint=50.0)

    def test_respects_exclusions(self):
        cluster, spec, metrics = make_env()
        policy = PlacementPolicy(spec, cluster, metrics)
        all_but_one = set(cluster.host_ids()[:-1])
        decision = policy.choose_host(1, exclude_hosts=all_but_one)
        assert decision.host_id == cluster.host_ids()[-1]

    def test_skips_unavailable_hosts(self):
        cluster, spec, metrics = make_env()
        victim = cluster.host_ids()[0]
        cluster.host(victim).fail(permanent=False)
        policy = PlacementPolicy(spec, cluster, metrics)
        for shard in range(20):
            assert policy.choose_host(shard).host_id != victim

    def test_skips_hosts_without_capacity_report(self):
        cluster = Cluster.build(regions=1, racks_per_region=1, hosts_per_rack=3)
        metrics = MetricsStore()
        known = cluster.host_ids()[1]
        metrics.report_capacity(known, 50.0)
        policy = PlacementPolicy(ServiceSpec(name="t"), cluster, metrics)
        assert policy.choose_host(1).host_id == known

    def test_pending_load_is_counted(self):
        cluster, spec, metrics = make_env()
        policy = PlacementPolicy(spec, cluster, metrics)
        first = cluster.host_ids()[0]
        decision = policy.choose_host(
            1, size_hint=5.0, pending_load={first: 50.0}
        )
        assert decision.host_id != first

    def test_replica_set_spreads_across_racks(self):
        spec = ServiceSpec(
            name="t",
            replication_model=ReplicationModel.SECONDARY_ONLY,
            replication_factor=1,
            spread=SpreadDomain.RACK,
        )
        cluster, __, metrics = make_env(spec)
        policy = PlacementPolicy(spec, cluster, metrics)
        decisions = policy.choose_replica_set(1, size_hint=1.0)
        assert len(decisions) == 2
        racks = {
            cluster.host(d.host_id).failure_domain("rack") for d in decisions
        }
        assert len(racks) == 2

    def test_replica_set_fails_when_domains_exhausted(self):
        spec = ServiceSpec(
            name="t",
            replication_model=ReplicationModel.SECONDARY_ONLY,
            replication_factor=2,  # 3 replicas, but only 2 racks exist
            spread=SpreadDomain.RACK,
        )
        cluster, __, metrics = make_env(spec, racks=2)
        policy = PlacementPolicy(spec, cluster, metrics)
        with pytest.raises(CapacityExceededError):
            policy.choose_replica_set(1, size_hint=1.0)

    def test_region_filter(self):
        cluster = Cluster.build(regions=2, racks_per_region=1, hosts_per_rack=3)
        metrics = MetricsStore()
        for host in cluster.hosts():
            metrics.report_capacity(host.host_id, 100.0)
        policy = PlacementPolicy(ServiceSpec(name="t"), cluster, metrics)
        decision = policy.choose_host(1, region="region1")
        assert cluster.host(decision.host_id).region == "region1"


class TestBalancer:
    def _balanced_env(self):
        cluster, spec, metrics = make_env(
            spec=ServiceSpec(name="t", load_imbalance_tolerance=0.1)
        )
        return cluster, spec, metrics

    def test_no_moves_when_balanced(self):
        cluster, spec, metrics = self._balanced_env()
        hosted = {}
        for i, host in enumerate(cluster.host_ids()):
            metrics.report_shard(i, host, 10.0, now=0.0)
            hosted[host] = {i}
        balancer = LoadBalancer(spec, cluster, metrics)
        assert balancer.propose(hosted) == []

    def test_hotspot_is_levelled(self):
        cluster, spec, metrics = self._balanced_env()
        hosts = cluster.host_ids()
        hot = hosts[0]
        hosted = {hot: set()}
        for shard in range(10):
            metrics.report_shard(shard, hot, 10.0, now=0.0)
            hosted[hot].add(shard)
        balancer = LoadBalancer(spec, cluster, metrics)
        proposals = balancer.propose(hosted)
        assert proposals
        assert all(p.from_host == hot for p in proposals)
        assert all(p.to_host != hot for p in proposals)

    def test_throttle_limits_moves(self):
        spec = ServiceSpec(name="t", max_migrations_per_run=2,
                           load_imbalance_tolerance=0.0)
        cluster, __, metrics = make_env(spec)
        hot = cluster.host_ids()[0]
        hosted = {hot: set(range(20))}
        for shard in range(20):
            metrics.report_shard(shard, hot, 10.0, now=0.0)
        balancer = LoadBalancer(spec, cluster, metrics)
        assert len(balancer.propose(hosted)) == 2

    def test_zero_throttle_disables_balancing(self):
        spec = ServiceSpec(name="t", max_migrations_per_run=0)
        cluster, __, metrics = make_env(spec)
        hot = cluster.host_ids()[0]
        metrics.report_shard(1, hot, 100.0, now=0.0)
        balancer = LoadBalancer(spec, cluster, metrics)
        assert balancer.propose({hot: {1}}) == []

    def test_forbidden_targets_respected(self):
        cluster, spec, metrics = self._balanced_env()
        hosts = cluster.host_ids()
        hot = hosts[0]
        hosted = {hot: {1}}
        metrics.report_shard(1, hot, 100.0, now=0.0)
        forbidden = {1: set(hosts[1:-1])}
        balancer = LoadBalancer(spec, cluster, metrics)
        proposals = balancer.propose(hosted, forbidden_targets=forbidden)
        assert all(p.to_host == hosts[-1] for p in proposals)

    def test_moves_do_not_create_worse_hotspot(self):
        cluster, spec, metrics = self._balanced_env()
        hosts = cluster.host_ids()
        # One giant shard: moving it anywhere just relocates the hotspot,
        # so the balancer must decline.
        metrics.report_shard(1, hosts[0], 90.0, now=0.0)
        for i, host in enumerate(hosts[1:], start=2):
            metrics.report_shard(i, host, 10.0, now=0.0)
        hosted = {hosts[0]: {1}}
        for i, host in enumerate(hosts[1:], start=2):
            hosted[host] = {i}
        balancer = LoadBalancer(spec, cluster, metrics)
        proposals = balancer.propose(hosted)
        assert proposals == []

    def test_in_flight_drop_not_double_counted(self):
        # Regression: during a graceful drop the departing replica keeps
        # reporting its metric for a grace window while the new owner
        # already reports provisional load. Raw host_load then counts the
        # migrating shard on *both* hosts, making the old host look
        # overloaded and triggering spurious follow-up moves.
        cluster, spec, metrics = self._balanced_env()
        hosts = cluster.host_ids()
        hosted = {}
        for i, host in enumerate(hosts):
            metrics.report_shard(i, host, 20.0, now=0.0)
            hosted[host] = {i}
        # Shard 99 migrated away from hosts[0] but its metric lingers
        # there through the drop grace period; SM's assignment table
        # (hosted) no longer lists it on hosts[0].
        metrics.report_shard(99, hosts[0], 100.0, now=0.0)
        metrics.report_shard(99, hosts[1], 100.0, now=0.0)
        hosted[hosts[1]].add(99)
        balancer = LoadBalancer(spec, cluster, metrics)
        proposals = balancer.propose(hosted)
        # hosts[0] owns only its balanced 20-load shard; nothing should
        # be proposed away from it on account of the phantom 100.
        assert all(p.from_host != hosts[0] for p in proposals)

    def test_replicas_do_not_pile_onto_one_destination(self):
        # Two replicas of shard 7 live on two small overloaded hosts; a
        # large empty host is the obvious receiver. Only one replica may
        # move there in a single run — the second proposal targeting the
        # same destination slot would co-locate both replicas.
        cluster = Cluster.build(regions=1, racks_per_region=1, hosts_per_rack=3)
        spec = ServiceSpec(name="t", load_imbalance_tolerance=0.0)
        metrics = MetricsStore()
        h0, h1, h2 = cluster.host_ids()
        metrics.report_capacity(h0, 100.0)
        metrics.report_capacity(h1, 100.0)
        metrics.report_capacity(h2, 1000.0)
        metrics.report_shard(7, h0, 40.0, now=0.0)
        metrics.report_shard(7, h1, 40.0, now=0.0)
        hosted = {h0: {7}, h1: {7}}
        balancer = LoadBalancer(spec, cluster, metrics)
        proposals = balancer.propose(hosted)
        assert [p.shard_id for p in proposals] == [7]

    def test_proposed_shard_does_not_chain_within_run(self):
        # A shard proposed A→B must not be re-proposed B→C later in the
        # same run: each shard moves at most once per balancing pass.
        cluster = Cluster.build(regions=1, racks_per_region=1, hosts_per_rack=4)
        spec = ServiceSpec(name="t", load_imbalance_tolerance=0.0)
        metrics = MetricsStore()
        hosts = cluster.host_ids()
        for host in hosts[:2]:
            metrics.report_capacity(host, 100.0)
        for host in hosts[2:]:
            metrics.report_capacity(host, 1000.0)
        hosted = {}
        for i, host in enumerate(hosts[:2]):
            metrics.report_shard(i, host, 60.0, now=0.0)
            hosted[host] = {i}
        balancer = LoadBalancer(spec, cluster, metrics)
        proposals = balancer.propose(hosted)
        seen = [p.shard_id for p in proposals]
        assert len(seen) == len(set(seen))
        for p in proposals:
            assert p.from_host in hosts[:2]

    def test_imbalance_metric(self):
        cluster, spec, metrics = self._balanced_env()
        hosts = cluster.host_ids()
        metrics.report_shard(1, hosts[0], 100.0, now=0.0)
        balancer = LoadBalancer(spec, cluster, metrics)
        assert balancer.imbalance() == pytest.approx(len(hosts))

    def test_imbalance_of_empty_fleet_is_one(self):
        cluster, spec, metrics = make_env()
        balancer = LoadBalancer(spec, cluster, metrics)
        assert balancer.imbalance() == 1.0
