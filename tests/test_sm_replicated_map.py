"""Shard-map journaling through the replicated metadata store.

On a ``replicated_metadata`` deployment every shard-map mutation is
journaled into the consensus-backed datastore, so the assignment table
survives total SM amnesia (process loss, full region partition): a
replacement instance rebuilds from the journal instead of starting
blind.
"""

from __future__ import annotations

from repro.chaos.scenarios import build_chaos_deployment
from repro.shardmanager.client import SMClient


def _deployment():
    deployment, __ = build_chaos_deployment(0, replicated=True)
    deployment.simulator.run_until(30.0)
    return deployment


class TestJournaledShardMap:
    def test_every_shard_is_journaled(self):
        deployment = _deployment()
        for region, sm in deployment.sm_servers.items():
            keys = sm.datastore.keys_with_prefix(sm._shardmap_prefix)
            assert len(keys) == len(sm.shard_ids())
            for shard_id in sm.shard_ids():
                assert (
                    f"{sm._shardmap_prefix}{shard_id:06d}" in keys
                ), (region, shard_id)

    def test_client_shard_map_matches_server(self):
        deployment = _deployment()
        sm = deployment.sm_servers["region0"]
        shard_map = SMClient(sm).shard_map()
        assert sorted(shard_map) == sm.shard_ids()
        for shard_id, replicas in shard_map.items():
            entry = sm.shard_entry(shard_id)
            assert replicas == [
                (r.host_id, r.role.value) for r in entry.replicas
            ]

    def test_drop_shard_removes_journal_entry(self):
        deployment = _deployment()
        sm = deployment.sm_servers["region0"]
        shard_id = sm.shard_ids()[0]
        key = f"{sm._shardmap_prefix}{shard_id:06d}"
        assert sm.datastore.get(key) is not None
        sm.drop_shard(shard_id)
        # The journal delete is a replicated write: let the commit land.
        deployment.simulator.run_until(deployment.simulator.now + 10.0)
        assert sm.datastore.get(key) is None
        assert shard_id not in sm.shard_ids()


class TestAmnesiaRecovery:
    def test_rebuild_restores_wiped_assignment_table(self):
        deployment = _deployment()
        sm = deployment.sm_servers["region0"]
        before = {
            shard_id: [
                (r.host_id, r.role) for r in sm.shard_entry(shard_id).replicas
            ]
            for shard_id in sm.shard_ids()
        }
        assert before
        # Total amnesia: the in-memory table vanishes, the journal stays.
        sm._shards.clear()
        sm._host_shards.clear()
        assert sm.shard_ids() == []
        restored = sm.rebuild_shard_map()
        assert restored == len(before)
        after = {
            shard_id: [
                (r.host_id, r.role) for r in sm.shard_entry(shard_id).replicas
            ]
            for shard_id in sm.shard_ids()
        }
        assert after == before
        events = deployment.obs.events.of_kind(
            "shardmanager.server.shard_map_rebuilt"
        )
        assert events and events[-1]["restored"] == len(before)

    def test_rebuild_is_noop_when_memory_matches(self):
        deployment = _deployment()
        sm = deployment.sm_servers["region0"]
        assert sm.rebuild_shard_map() == 0
        assert not deployment.obs.events.of_kind(
            "shardmanager.server.shard_map_rebuilt"
        )
