"""Tests for the SM server: lifecycle, migration, failover, drains."""

import pytest

from repro.cluster.topology import Cluster
from repro.errors import (
    ConfigurationError,
    MigrationError,
    ShardNotFoundError,
)
from repro.shardmanager.app_server import InMemoryApplicationServer
from repro.shardmanager.balancer import MigrationProposal
from repro.shardmanager.server import ReplicaRole, SMServer
from repro.shardmanager.spec import ReplicationModel, ServiceSpec, SpreadDomain
from repro.sim.engine import Simulator


def make_service(spec=None, regions=1, racks=2, hosts_per_rack=5):
    simulator = Simulator()
    cluster = Cluster.build(
        regions=regions, racks_per_region=racks, hosts_per_rack=hosts_per_rack
    )
    spec = spec or ServiceSpec(name="t", max_shards=10_000)
    server = SMServer(spec, simulator, cluster, region="region0")
    apps = {}
    for host in cluster.hosts_in_region("region0"):
        app = InMemoryApplicationServer(host.host_id, capacity=1000.0)
        apps[host.host_id] = app
        server.register_host(app)
    return simulator, cluster, server, apps


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        __, cluster, server, apps = make_service()
        first = next(iter(apps.values()))
        with pytest.raises(ConfigurationError):
            server.register_host(first)

    def test_unknown_host_rejected(self):
        simulator, cluster, server, __ = make_service()
        with pytest.raises(ConfigurationError):
            server.register_host(InMemoryApplicationServer("ghost"))

    def test_out_of_region_host_rejected(self):
        simulator = Simulator()
        cluster = Cluster.build(regions=2, racks_per_region=1, hosts_per_rack=2)
        server = SMServer(
            ServiceSpec(name="t"), simulator, cluster, region="region0"
        )
        outsider = cluster.hosts_in_region("region1")[0]
        with pytest.raises(ConfigurationError):
            server.register_host(InMemoryApplicationServer(outsider.host_id))


class TestShardLifecycle:
    def test_create_assigns_and_publishes(self):
        simulator, __, server, apps = make_service()
        entry = server.create_shard(7, size_hint=5.0)
        host = entry.replicas[0].host_id
        assert 7 in apps[host].hosted_shards()
        assert server.discovery.resolve_authoritative(7) == host
        assert server.shards_on_host(host) == {7}

    def test_create_spreads_shards(self):
        __, __c, server, apps = make_service()
        for shard in range(10):
            server.create_shard(shard, size_hint=5.0)
        counts = [len(app.hosted_shards()) for app in apps.values()]
        assert max(counts) == 1  # 10 shards, 10 hosts, even sizes

    def test_duplicate_create_rejected(self):
        __, __c, server, __a = make_service()
        server.create_shard(1)
        with pytest.raises(MigrationError):
            server.create_shard(1)

    def test_out_of_keyspace_rejected(self):
        __, __c, server, __a = make_service()
        with pytest.raises(ShardNotFoundError):
            server.create_shard(10_000)

    def test_drop_removes_everywhere(self):
        __, __c, server, apps = make_service()
        entry = server.create_shard(3, size_hint=5.0)
        host = entry.replicas[0].host_id
        server.drop_shard(3)
        assert 3 not in apps[host].hosted_shards()
        assert not server.has_shard(3)
        assert server.discovery.resolve_authoritative(3) is None

    def test_replicated_create_uses_distinct_hosts(self):
        spec = ServiceSpec(
            name="t",
            max_shards=1000,
            replication_model=ReplicationModel.SECONDARY_ONLY,
            replication_factor=2,
            spread=SpreadDomain.HOST,
        )
        __, __c, server, __a = make_service(spec)
        entry = server.create_shard(1, size_hint=1.0)
        hosts = [r.host_id for r in entry.replicas]
        assert len(set(hosts)) == 3
        assert all(r.role is ReplicaRole.SECONDARY for r in entry.replicas)

    def test_primary_secondary_roles(self):
        spec = ServiceSpec(
            name="t",
            max_shards=1000,
            replication_model=ReplicationModel.PRIMARY_SECONDARY,
            replication_factor=1,
        )
        __, __c, server, __a = make_service(spec)
        entry = server.create_shard(1, size_hint=1.0)
        roles = sorted(r.role.value for r in entry.replicas)
        assert roles == ["primary", "secondary"]
        assert entry.primary() is not None


class TestMetricsAndBalance:
    def test_collect_metrics_pulls_from_apps(self):
        __, __c, server, apps = make_service()
        entry = server.create_shard(1, size_hint=0.0)
        host = entry.replicas[0].host_id
        apps[host].set_shard_size(1, 123.0)
        server.collect_metrics()
        assert server.metrics.shard_load(1, host) == 123.0

    def test_load_balance_moves_heavy_shards(self):
        __, __c, server, apps = make_service()
        for shard in range(10):
            server.create_shard(shard, size_hint=1.0)
        # Blow up one host's shard so it dominates.
        hot_host, hot_app = next(
            (h, a) for h, a in apps.items() if a.hosted_shards()
        )
        extra = [s for s in range(10, 14)]
        for s in extra:
            server.create_shard(s, size_hint=1.0)
        # Force several shards onto one host by inflating sizes there.
        for s in list(hot_app.hosted_shards()):
            hot_app.set_shard_size(s, 500.0)
        server.collect_metrics()
        executed = server.run_load_balance()
        assert isinstance(executed, list)
        # The move was reflected in SM's assignment table and the app.
        for proposal in executed:
            assert proposal.shard_id in apps[proposal.to_host].hosted_shards()
            assert proposal.shard_id in server.shards_on_host(proposal.to_host)

    def test_migration_is_graceful_with_delayed_drop(self):
        simulator, __, server, apps = make_service()
        entry = server.create_shard(1, size_hint=5.0)
        source_host = entry.replicas[0].host_id
        target_host = next(h for h in apps if h != source_host)
        proposal = MigrationProposal(
            shard_id=1, from_host=source_host, to_host=target_host,
            shard_load=5.0,
        )
        assert server._execute_move(proposal)
        # Both hosts hold the shard until the SMC grace period passes.
        assert 1 in apps[target_host].hosted_shards()
        assert 1 in apps[source_host].hosted_shards()
        assert apps[source_host].is_forwarding(1)
        simulator.run_until(simulator.now + 60.0)
        assert 1 not in apps[source_host].hosted_shards()


class TestFailover:
    def test_dead_host_shards_fail_over(self):
        simulator, cluster, server, apps = make_service()
        entry = server.create_shard(1, size_hint=5.0)
        victim = entry.replicas[0].host_id
        cluster.host(victim).fail(permanent=False)
        simulator.run_until(120.0)  # heartbeats stop, session expires
        new_host = server.discovery.resolve_authoritative(1)
        assert new_host != victim
        assert 1 in apps[new_host].hosted_shards()
        assert server.shards_on_host(victim) == set()
        assert server.migrations.count_by_reason().get("failover") == 1

    def test_primary_failover_promotes_secondary(self):
        spec = ServiceSpec(
            name="t",
            max_shards=1000,
            replication_model=ReplicationModel.PRIMARY_SECONDARY,
            replication_factor=1,
        )
        simulator, cluster, server, apps = make_service(spec)
        entry = server.create_shard(1, size_hint=5.0)
        primary = entry.primary()
        secondary = next(
            r for r in entry.replicas if r.role is ReplicaRole.SECONDARY
        )
        secondary_host = secondary.host_id
        cluster.host(primary.host_id).fail(permanent=False)
        simulator.run_until(120.0)
        # The old secondary was promoted and published.
        assert server.discovery.resolve_authoritative(1) == secondary_host
        promoted = server.shard_entry(1).primary()
        assert promoted is not None and promoted.host_id == secondary_host
        # A replacement replica was allocated somewhere new.
        hosts = {r.host_id for r in server.shard_entry(1).replicas}
        assert len(hosts) == 2

    def test_drain_moves_all_shards(self):
        simulator, cluster, server, apps = make_service()
        for shard in range(6):
            server.create_shard(shard, size_hint=5.0)
        victim = next(h for h, a in apps.items() if a.hosted_shards())
        victim_shards = set(server.shards_on_host(victim))
        moved = server.drain_host(victim)
        assert moved == len(victim_shards)
        assert server.shards_on_host(victim) == set()
        for shard in victim_shards:
            new_host = server.discovery.resolve_authoritative(shard)
            assert new_host != victim

    def test_recovered_host_can_reconnect(self):
        simulator, cluster, server, apps = make_service()
        entry = server.create_shard(1, size_hint=5.0)
        victim = entry.replicas[0].host_id
        cluster.host(victim).fail(permanent=False)
        simulator.run_until(120.0)
        cluster.host(victim).recover()
        fresh = InMemoryApplicationServer(victim, capacity=1000.0)
        server.reconnect_host(fresh)
        simulator.run_until(240.0)
        assert victim in server.registered_hosts()
        # The reconnected host can now receive placements again.
        server.collect_metrics()
        entry2 = server.create_shard(2, size_hint=5.0)
        assert server.has_shard(2)
        assert entry2.replicas[0].host_id in server.registered_hosts()
