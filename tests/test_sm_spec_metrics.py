"""Tests for ServiceSpec validation and the metrics store."""

import pytest

from repro.errors import ConfigurationError
from repro.shardmanager.metrics import MetricsStore, MovingAverage
from repro.shardmanager.spec import ReplicationModel, ServiceSpec, SpreadDomain


class TestServiceSpec:
    def test_defaults_are_primary_only(self):
        spec = ServiceSpec(name="s")
        assert spec.replication_model is ReplicationModel.PRIMARY_ONLY
        assert spec.replication_factor == 0
        assert spec.replicas_per_shard == 1

    def test_primary_only_with_replicas_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceSpec(name="s", replication_factor=1)

    def test_primary_secondary_needs_replicas(self):
        with pytest.raises(ConfigurationError):
            ServiceSpec(
                name="s",
                replication_model=ReplicationModel.PRIMARY_SECONDARY,
                replication_factor=0,
            )

    def test_replicas_per_shard_counts_primary(self):
        spec = ServiceSpec(
            name="s",
            replication_model=ReplicationModel.PRIMARY_SECONDARY,
            replication_factor=2,
        )
        assert spec.replicas_per_shard == 3

    def test_secondary_only_spec(self):
        spec = ServiceSpec(
            name="s",
            replication_model=ReplicationModel.SECONDARY_ONLY,
            replication_factor=2,
            spread=SpreadDomain.REGION,
        )
        assert spec.replicas_per_shard == 3

    def test_invalid_max_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceSpec(name="s", max_shards=0)

    def test_invalid_headroom_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceSpec(name="s", capacity_headroom=0.0)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceSpec(name="s", load_imbalance_tolerance=-0.1)


class TestMovingAverage:
    def test_first_sample_is_value(self):
        avg = MovingAverage(alpha=0.5)
        assert avg.update(10.0) == 10.0

    def test_smooths_spikes(self):
        avg = MovingAverage(alpha=0.2)
        avg.update(10.0)
        smoothed = avg.update(100.0)
        assert smoothed == pytest.approx(0.2 * 100 + 0.8 * 10)

    def test_converges_to_constant_input(self):
        avg = MovingAverage(alpha=0.3)
        for __ in range(100):
            avg.update(42.0)
        assert avg.value == pytest.approx(42.0)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            MovingAverage(alpha=0.0)

    def test_nan_sample_rejected(self):
        avg = MovingAverage(alpha=0.5)
        avg.update(10.0)
        with pytest.raises(ValueError):
            avg.update(float("nan"))
        # The rejected sample must not have corrupted the average.
        assert avg.value == 10.0

    def test_infinite_sample_rejected(self):
        avg = MovingAverage(alpha=0.5)
        with pytest.raises(ValueError):
            avg.update(float("inf"))
        with pytest.raises(ValueError):
            avg.update(float("-inf"))
        assert avg.value is None

    def test_non_finite_initial_value_rejected(self):
        with pytest.raises(ValueError):
            MovingAverage(alpha=0.5, value=float("nan"))

    def test_reset_forgets_history(self):
        avg = MovingAverage(alpha=0.2)
        avg.update(10.0)
        avg.update(100.0)
        avg.reset()
        assert avg.value is None
        # First sample after a reset re-primes the average directly.
        assert avg.update(3.0) == 3.0


class TestMetricsStore:
    def test_host_load_sums_shards(self):
        store = MetricsStore()
        store.report_shard(1, "h1", 10.0, now=0.0)
        store.report_shard(2, "h1", 5.0, now=0.0)
        store.report_shard(3, "h2", 7.0, now=0.0)
        assert store.host_load("h1") == 15.0
        assert store.host_load("h2") == 7.0

    def test_re_report_overwrites(self):
        store = MetricsStore()
        store.report_shard(1, "h1", 10.0, now=0.0)
        store.report_shard(1, "h1", 20.0, now=1.0)
        assert store.host_load("h1") == 20.0

    def test_shards_on_host_sorted_heaviest_first(self):
        store = MetricsStore()
        store.report_shard(1, "h1", 1.0, now=0.0)
        store.report_shard(2, "h1", 9.0, now=0.0)
        store.report_shard(3, "h1", 5.0, now=0.0)
        assert store.shards_on_host("h1") == [(2, 9.0), (3, 5.0), (1, 1.0)]

    def test_drop_shard_removes_metric(self):
        store = MetricsStore()
        store.report_shard(1, "h1", 10.0, now=0.0)
        store.drop_shard(1, "h1")
        assert store.host_load("h1") == 0.0
        assert store.shard_load(1, "h1") == 0.0

    def test_utilization(self):
        store = MetricsStore()
        store.report_capacity("h1", 100.0)
        store.report_shard(1, "h1", 25.0, now=0.0)
        assert store.utilization("h1") == 0.25

    def test_utilization_without_capacity_is_infinite(self):
        store = MetricsStore()
        store.report_shard(1, "h1", 25.0, now=0.0)
        assert store.utilization("h1") == float("inf")

    def test_remove_host_clears_everything(self):
        store = MetricsStore()
        store.report_capacity("h1", 100.0)
        store.report_shard(1, "h1", 10.0, now=0.0)
        store.remove_host("h1")
        assert store.capacity("h1") == 0.0
        assert store.host_load("h1") == 0.0

    def test_fleet_snapshot(self):
        store = MetricsStore()
        store.report_capacity("h1", 100.0)
        store.report_shard(1, "h1", 50.0, now=0.0)
        snapshot = store.fleet_snapshot()
        assert snapshot["h1"]["utilization"] == 0.5

    def test_negative_metric_rejected(self):
        store = MetricsStore()
        with pytest.raises(ValueError):
            store.report_shard(1, "h1", -1.0, now=0.0)
        with pytest.raises(ValueError):
            store.report_capacity("h1", -5.0)
