"""Stateful property test: SM invariants under arbitrary operations.

Drives a Shard Manager service through random interleavings of shard
creation/drops, host failures/recoveries, drains, metric growth and
balancing rounds, checking after every step that SM's bookkeeping,
the application servers and service discovery never diverge:

* every registered shard's replicas live on hosts SM believes hold them;
* the authoritative discovery mapping points at a current replica;
* an application server never hosts a shard SM doesn't know about
  (except inside a graceful-drop grace window);
* failovers never leave a shard assigned to a dead host once handled.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.cluster.topology import Cluster
from repro.errors import CapacityExceededError, MigrationError
from repro.shardmanager.app_server import InMemoryApplicationServer
from repro.shardmanager.server import SMServer
from repro.shardmanager.spec import ServiceSpec
from repro.sim.engine import Simulator

HOSTS = 8
MAX_SHARDS = 64


class ShardManagerMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.simulator = Simulator()
        self.cluster = Cluster.build(
            regions=1, racks_per_region=2, hosts_per_rack=HOSTS // 2
        )
        self.server = SMServer(
            ServiceSpec(name="fuzz", max_shards=MAX_SHARDS,
                        max_migrations_per_run=4),
            self.simulator,
            self.cluster,
            region="region0",
        )
        self.apps: dict[str, InMemoryApplicationServer] = {}
        for host in self.cluster.hosts():
            app = InMemoryApplicationServer(host.host_id, capacity=10_000.0)
            self.apps[host.host_id] = app
            self.server.register_host(app)
        self.rng = np.random.default_rng(0)
        self.down: set[str] = set()

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    @rule(shard=st.integers(0, MAX_SHARDS - 1),
          size=st.floats(1.0, 100.0))
    def create_shard(self, shard: int, size: float) -> None:
        if self.server.has_shard(shard):
            return
        try:
            self.server.create_shard(shard, size_hint=size)
        except (CapacityExceededError, MigrationError):
            pass

    @rule(shard=st.integers(0, MAX_SHARDS - 1))
    def drop_shard(self, shard: int) -> None:
        if self.server.has_shard(shard):
            self.server.drop_shard(shard)

    @rule(index=st.integers(0, HOSTS - 1))
    def fail_host(self, index: int) -> None:
        host_id = self.cluster.host_ids()[index]
        if host_id in self.down or len(self.down) >= HOSTS - 2:
            return
        self.cluster.host(host_id).fail(permanent=False)
        self.down.add(host_id)
        # Let heartbeats lapse and the failover run.
        self.simulator.run_until(self.simulator.now + 60.0)

    @rule(index=st.integers(0, HOSTS - 1))
    def recover_host(self, index: int) -> None:
        host_id = self.cluster.host_ids()[index]
        if host_id not in self.down:
            return
        self.cluster.host(host_id).recover()
        self.down.discard(host_id)
        fresh = InMemoryApplicationServer(host_id, capacity=10_000.0)
        self.apps[host_id] = fresh
        self.server.reconnect_host(fresh)
        self.simulator.run_until(self.simulator.now + 30.0)

    @rule(index=st.integers(0, HOSTS - 1))
    def drain_host(self, index: int) -> None:
        host_id = self.cluster.host_ids()[index]
        if host_id in self.down:
            return
        self.server.drain_host(host_id)

    @rule()
    def grow_and_balance(self) -> None:
        for app in self.apps.values():
            for shard in list(app.hosted_shards()):
                current = app.shard_metrics().get(shard, 0.0)
                app.set_shard_size(shard, current + float(self.rng.uniform(0, 30)))
        self.server.collect_metrics()
        self.server.run_load_balance()

    @rule()
    def advance_time(self) -> None:
        self.simulator.run_until(self.simulator.now + 120.0)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def replicas_match_host_index(self) -> None:
        for shard_id in self.server.shard_ids():
            entry = self.server.shard_entry(shard_id)
            for replica in entry.replicas:
                if shard_id in self.server.unplaced_failovers:
                    continue
                assert shard_id in self.server.shards_on_host(
                    replica.host_id
                ), (
                    f"shard {shard_id}: replica host {replica.host_id} "
                    f"not in SM host index"
                )

    @invariant()
    def discovery_points_at_a_replica(self) -> None:
        for shard_id in self.server.shard_ids():
            if shard_id in self.server.unplaced_failovers:
                continue
            owner = self.server.discovery.resolve_authoritative(shard_id)
            hosts = self.server.shard_entry(shard_id).hosts()
            assert owner in hosts, (
                f"shard {shard_id}: discovery says {owner}, replicas on {hosts}"
            )

    @invariant()
    def index_matches_live_apps(self) -> None:
        for host_id, app in self.apps.items():
            if host_id not in self.server.registered_hosts():
                continue
            indexed = self.server.shards_on_host(host_id)
            held = app.hosted_shards()
            # Everything SM thinks the host owns must be there (the app
            # may hold extras mid-graceful-drop, which is allowed).
            missing = indexed - held
            assert not missing, f"{host_id} missing shards {missing}"

    @invariant()
    def no_shard_assigned_to_dead_host(self) -> None:
        # The fail rule advances virtual time past the session timeout,
        # so by the time an invariant runs every failover has executed;
        # only explicitly-unplaced shards may still reference dead hosts.
        unplaced = set(self.server.unplaced_failovers)
        for shard_id in self.server.shard_ids():
            if shard_id in unplaced:
                continue
            for replica in self.server.shard_entry(shard_id).replicas:
                assert replica.host_id not in self.down, (
                    f"shard {shard_id} still assigned to dead host "
                    f"{replica.host_id}"
                )


TestShardManagerStateful = ShardManagerMachine.TestCase
TestShardManagerStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
