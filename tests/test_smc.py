"""Tests for SMC service discovery: the propagation tree and registry."""

import numpy as np
import pytest

from repro.errors import ShardMappingUnknownError
from repro.smc.registry import ServiceDiscovery
from repro.smc.tree import DEFAULT_LEVELS, PropagationTree, TreeLevelConfig


class TestTreeLevel:
    def test_hop_delay_bounded_by_poll_plus_jitter(self, rng):
        level = TreeLevelConfig(name="x", poll_interval=2.0, jitter_mean=0.0)
        delays = [level.sample_hop_delay(rng) for __ in range(1000)]
        assert all(0.0 <= d <= 2.0 for d in delays)

    def test_invalid_intervals_rejected(self):
        with pytest.raises(ValueError):
            TreeLevelConfig(name="x", poll_interval=-1.0)


class TestPropagationTree:
    def test_delay_is_sum_of_hops(self, rng):
        tree = PropagationTree(
            (
                TreeLevelConfig(name="a", poll_interval=1.0, jitter_mean=0.0),
                TreeLevelConfig(name="b", poll_interval=1.0, jitter_mean=0.0),
            )
        )
        delays = tree.sample_delays(rng, 10_000)
        assert delays.max() <= 2.0
        assert delays.mean() == pytest.approx(1.0, rel=0.05)

    def test_default_tree_lands_in_seconds_range(self, rng):
        """Figure 4c: production propagation delays are a few seconds."""
        tree = PropagationTree()
        delays = tree.sample_delays(rng, 50_000)
        assert 1.0 < delays.mean() < 5.0
        assert np.percentile(delays, 99) < 15.0

    def test_sample_delay_scalar_matches_vector_distribution(self, rng):
        tree = PropagationTree()
        scalars = np.array([tree.sample_delay(rng) for __ in range(5000)])
        vector = tree.sample_delays(rng, 5000)
        assert abs(scalars.mean() - vector.mean()) < 0.2

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            PropagationTree(())

    def test_max_expected_delay_exceeds_typical(self, rng):
        tree = PropagationTree()
        delays = tree.sample_delays(rng, 20_000)
        assert tree.max_expected_delay() > np.percentile(delays, 99)

    def test_default_levels_are_three(self):
        assert len(DEFAULT_LEVELS) == 3

    def test_negative_n_rejected(self, rng):
        with pytest.raises(ValueError):
            PropagationTree().sample_delays(rng, -1)


class TestServiceDiscovery:
    def test_unknown_shard_raises(self):
        discovery = ServiceDiscovery()
        with pytest.raises(ShardMappingUnknownError):
            discovery.resolve(1, now=0.0)
        with pytest.raises(ShardMappingUnknownError):
            discovery.resolve_authoritative(1)

    def test_publication_becomes_visible_after_delay(self):
        discovery = ServiceDiscovery()
        assignment = discovery.publish(5, "hostA", now=100.0)
        assert assignment.visible_at > 100.0
        assert discovery.resolve_authoritative(5) == "hostA"
        with pytest.raises(ShardMappingUnknownError):
            discovery.resolve(5, now=100.0)
        assert discovery.resolve(5, now=assignment.visible_at + 0.01) == "hostA"

    def test_stale_window_returns_old_mapping(self):
        discovery = ServiceDiscovery()
        first = discovery.publish(5, "hostA", now=0.0)
        after_first = first.visible_at + 0.01
        second = discovery.publish(5, "hostB", now=after_first)
        # During the propagation window, clients still see hostA.
        mid = (after_first + second.visible_at) / 2.0
        if mid < second.visible_at:
            assert discovery.resolve(5, now=mid) == "hostA"
        assert discovery.resolve(5, now=second.visible_at + 0.01) == "hostB"
        assert discovery.resolve_authoritative(5) == "hostB"

    def test_is_stale_tracks_propagation(self):
        discovery = ServiceDiscovery()
        assignment = discovery.publish(7, "hostA", now=0.0)
        assert discovery.is_stale(7, now=0.0)
        assert not discovery.is_stale(7, now=assignment.visible_at + 0.01)

    def test_unassignment_publishes_none(self):
        discovery = ServiceDiscovery()
        discovery.publish(3, "hostA", now=0.0)
        drop = discovery.publish(3, None, now=100.0)
        assert discovery.resolve_authoritative(3) is None
        assert discovery.resolve(3, now=drop.visible_at + 0.01) is None

    def test_versions_increase(self):
        discovery = ServiceDiscovery()
        a = discovery.publish(1, "x", now=0.0)
        b = discovery.publish(2, "y", now=0.0)
        assert b.version > a.version

    def test_propagation_delays_are_recorded(self):
        discovery = ServiceDiscovery()
        for i in range(10):
            discovery.publish(i, "h", now=float(i))
        assert len(discovery.propagation_delays) == 10
        assert all(d >= 0 for d in discovery.propagation_delays)

    def test_known_shards(self):
        discovery = ServiceDiscovery()
        discovery.publish(9, "h", now=0.0)
        discovery.publish(2, "h", now=0.0)
        assert discovery.known_shards() == [2, 9]

    def test_deterministic_with_seeded_rng(self):
        a = ServiceDiscovery(rng=np.random.default_rng(1))
        b = ServiceDiscovery(rng=np.random.default_rng(1))
        da = a.publish(1, "h", now=0.0).visible_at
        db = b.publish(1, "h", now=0.0).visible_at
        assert da == db
