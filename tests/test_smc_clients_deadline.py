"""Tests for per-client SMC visibility and per-query deadlines."""

import numpy as np
import pytest

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.errors import ConfigurationError, QueryFailedError
from repro.sim.latency import HiccupModel, LogNormalTailLatency
from repro.smc.registry import ServiceDiscovery
from repro.workloads.fanout_experiment import probe_schema
from repro.workloads.queries import simple_probe_query


class TestPerClientVisibility:
    def test_same_client_is_consistent(self):
        discovery = ServiceDiscovery()
        discovery.publish(1, "hostA", now=0.0)
        times = np.linspace(0.0, 30.0, 50)
        views = []
        for t in times:
            try:
                views.append(discovery.resolve(1, t, client_id="c1"))
            except Exception:
                views.append(None)
        # Once visible, it stays visible (monotone view per client).
        first_seen = next(i for i, v in enumerate(views) if v == "hostA")
        assert all(v == "hostA" for v in views[first_seen:])

    def test_clients_disagree_during_propagation(self):
        discovery = ServiceDiscovery(rng=np.random.default_rng(5))
        discovery.publish(1, "hostA", now=0.0)
        discovery.publish(1, "hostB", now=100.0)
        # Shortly after the second publish, some clients still see hostA
        # while others already see hostB.
        views = {
            f"client-{i}": discovery.resolve(1, 101.5, client_id=f"client-{i}")
            for i in range(40)
        }
        assert set(views.values()) == {"hostA", "hostB"}

    def test_everyone_converges(self):
        discovery = ServiceDiscovery()
        discovery.publish(1, "hostA", now=0.0)
        discovery.publish(1, "hostB", now=100.0)
        horizon = 100.0 + discovery.tree.max_expected_delay() + 1.0
        for i in range(40):
            assert discovery.resolve(1, horizon, client_id=f"c{i}") == "hostB"

    def test_default_client_unchanged(self):
        discovery = ServiceDiscovery()
        assignment = discovery.publish(1, "hostA", now=0.0)
        assert discovery.resolve(1, assignment.visible_at + 0.01) == "hostA"

    def test_determinism_across_instances(self):
        views = []
        for __ in range(2):
            discovery = ServiceDiscovery(rng=np.random.default_rng(7))
            discovery.publish(1, "hostA", now=0.0)
            views.append(
                [
                    discovery._visible_at(
                        discovery._history[1].entries[0], f"c{i}"
                    )
                    for i in range(10)
                ]
            )
        assert views[0] == views[1]


class TestDeadline:
    @pytest.fixture
    def deployment(self):
        # Heavy hiccups so slow regions are common.
        model = LogNormalTailLatency(
            base=0.001, median=0.01, sigma=0.3,
            hiccups=HiccupModel(probability=0.3, min_delay=0.5, max_delay=1.0),
        )
        deployment = CubrickDeployment(
            DeploymentConfig(seed=88, regions=3, racks_per_region=2,
                             hosts_per_rack=4),
            latency_model=model,
        )
        schema = probe_schema("dl")
        deployment.create_table(schema)
        rng = np.random.default_rng(1)
        deployment.load(
            "dl",
            [{"bucket": int(rng.integers(64)), "value": 1.0}
             for __ in range(200)],
        )
        deployment.simulator.run_until(30.0)
        return deployment

    def test_hedging_happens_and_results_stay_exact(self, deployment):
        probe = simple_probe_query(probe_schema("dl"))
        hedged = 0
        answered = 0
        for __ in range(60):
            try:
                result = deployment.query(probe, deadline=0.2)
            except QueryFailedError:
                continue
            answered += 1
            assert result.scalar() == 200.0
            assert result.metadata["latency"] <= 0.2
            if result.metadata["timeouts"] > 0:
                hedged += 1
                assert result.metadata["latency_total"] > result.metadata[
                    "latency"
                ]
        assert answered > 0
        assert hedged > 0  # with 30% hiccups at fan-out 8, certain

    def test_all_regions_too_slow_raises(self, deployment):
        probe = simple_probe_query(probe_schema("dl"))
        # An impossible deadline (below the base latency) always fails.
        with pytest.raises(QueryFailedError) as excinfo:
            deployment.query(probe, deadline=1e-6)
        assert "deadline" in str(excinfo.value)

    def test_invalid_deadline_rejected(self, deployment):
        probe = simple_probe_query(probe_schema("dl"))
        with pytest.raises(ConfigurationError):
            deployment.query(probe, deadline=0.0)

    def test_no_deadline_keeps_old_behaviour(self, deployment):
        probe = simple_probe_query(probe_schema("dl"))
        result = deployment.query(probe)
        assert result.metadata["timeouts"] == 0
        assert result.metadata["latency_total"] == result.metadata["latency"]
