"""Soak test: a week in the life of a production Cubrick deployment.

Runs everything at once, the way §IV describes the production system:
multi-tenant tables streamed in by loaders, continuous dashboard queries
through the proxy, background maintenance (metrics collection, load
balancing, memory monitors, hotness decay), MTBF host failures with
automatic failover and repair, planned rack drains, a mid-week
re-partition of the fastest-growing table, and a mid-week scale-out.

At the end, the system must be coherent: every table's data intact in
every surviving region, SLA above threshold, and SM's bookkeeping
consistent with the application servers.
"""

import numpy as np
import pytest

from repro.cluster.automation import MaintenanceKind
from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.partitioning import PartitioningPolicy
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.errors import QueryFailedError
from repro.sim.engine import DAY, HOUR
from repro.sim.failures import MtbfFailureModel
from repro.workloads.queries import QueryGenerator
from repro.workloads.tables import default_schema, generate_rows

TENANTS = 5
DAYS = 7


@pytest.mark.slow
def test_week_soak():
    deployment = CubrickDeployment(
        DeploymentConfig(
            seed=2026, regions=3, racks_per_region=3, hosts_per_rack=4,
            partitioning=PartitioningPolicy(
                max_rows_per_partition=600, min_rows_per_partition=20
            ),
        )
    )
    rng = np.random.default_rng(1)

    # --- Onboard tenants with streaming loaders -----------------------
    schemas = []
    loaders = {}
    loaded_rows = {name: 0 for name in []}
    loaded_rows = {}
    for i in range(TENANTS):
        schema = default_schema(f"tenant_{i}")
        deployment.create_table(schema)
        schemas.append(schema)
        loaders[schema.name] = deployment.loader(schema.name, batch_rows=200)
        loaded_rows[schema.name] = 0
    deployment.simulator.run_until(60.0)

    deployment.start_background_maintenance(
        collect_interval=HOUR,
        balance_interval=6 * HOUR,
        memory_monitor_interval=3 * HOUR,
        decay_interval=6 * HOUR,
        until=DAYS * DAY,
    )
    deployment.start_failure_injection(
        MtbfFailureModel(mtbf=20 * DAY, mttr=30 * 60.0,
                         permanent_fraction=0.2, repair_time=2 * DAY),
        until=DAYS * DAY,
    )

    generator = QueryGenerator([s for s in schemas], rng, table_skew=1.4)
    query_ok = 0
    query_failed = 0
    repartitions = 0

    # --- The week ------------------------------------------------------
    for hour in range(1, DAYS * 24 + 1):
        now = 60.0 + hour * HOUR
        deployment.simulator.run_until(now)

        # Streaming ingestion: tenant 0 grows fastest.
        for i, schema in enumerate(schemas):
            count = 40 if i == 0 else 8
            rows = list(generate_rows(schema, count, rng))
            loaders[schema.name].append_many(rows)
            loaded_rows[schema.name] += count

        # Dashboard queries.
        for __ in range(3):
            try:
                deployment.query(generator.next_query())
                query_ok += 1
            except QueryFailedError:
                query_failed += 1

        # Daily events.
        if hour % 24 == 12:
            for loader in loaders.values():
                loader.flush()
            repartitions += sum(
                1 for s in schemas if deployment.maybe_repartition(s.name)
            )
        if hour == 48:  # day-2 planned rack maintenance
            rack_hosts = [
                h.host_id
                for h in deployment.cluster.hosts_in_rack("region1", "rack002")
            ]
            deployment.automation.request_maintenance(
                MaintenanceKind.RACK_MAINTENANCE, rack_hosts, duration=4 * HOUR
            )
        if hour == 96:  # day-4 scale-out
            deployment.add_hosts("region0", 4)

    for loader in loaders.values():
        loader.flush()
    deployment.simulator.run_until(DAYS * DAY + HOUR)

    # --- Verdicts --------------------------------------------------------
    # 1. The fast-growing tenant got re-partitioned at least once.
    assert repartitions >= 1
    assert deployment.catalog.get("tenant_0").num_partitions > 8

    # 2. Failures happened, and the system kept answering: ≥95% success.
    total = query_ok + query_failed
    assert total == DAYS * 24 * 3
    assert query_ok / total > 0.95

    # 3. Every region holds every table's full data set.
    for schema in schemas:
        expected = loaded_rows[schema.name]
        probe = Query.build(
            schema.name, [Aggregation(AggFunc.COUNT, "value")]
        )
        for region, coordinator in deployment.coordinators.items():
            if not deployment.cluster.region(region).available:
                continue
            try:
                result = coordinator.execute(probe)
            except QueryFailedError:
                continue  # a region mid-failover may be incomplete
            assert result.scalar() == expected, (
                f"{schema.name} in {region}: {result.scalar()} != {expected}"
            )
        # And through the proxy, at least one region must answer exactly.
        result = deployment.query(probe)
        assert result.scalar() == expected

    # 4. SM bookkeeping is consistent with the nodes.
    for region, sm in deployment.sm_servers.items():
        for host_id in sm.registered_hosts():
            app = sm.app_server(host_id)
            indexed = sm.shards_on_host(host_id)
            missing = indexed - app.hosted_shards()
            assert not missing, f"{host_id} missing {missing}"

    # 5. Operations actually occurred during the week.
    summary = deployment.summary()
    migrations = {
        reason: count
        for stats in summary["regions"].values()
        for reason, count in stats["migrations"].items()
    }
    assert migrations, "a week passed with zero shard migrations"
    assert summary["proxy"]["success_ratio"] > 0.95
