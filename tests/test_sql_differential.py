"""Differential battery: SQL must equal the programmatic query path.

Every statement here runs twice — once through the full SQL pipeline
(parse, plan, physical lowering) and once as a hand-built
:class:`Query` through the proxy — and the results must match exactly.
Join statements additionally run against a replicated twin of the
sharded dimension table (answered node-locally, the engine's original
join path), proving the broadcast and partitioned-hash plans compute
the same answer as replicated-local execution.
"""

import pytest

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.query import (
    AggFunc,
    Aggregation,
    CompareOp,
    Filter,
    Having,
    Query,
)
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.sql import build_physical, execute_plan, parse, plan

USERS = 2000  # dict-encoded, high-cardinality entity dimension
LOADED_USERS = 1500  # rest miss the dim table: inner joins drop them


def _user_dimensions():
    return [
        Dimension("user_id", USERS, range_size=250, dict_encode=True),
        Dimension("tier", 4, range_size=1),
        Dimension("segment", 5, range_size=1),
    ]


@pytest.fixture(scope="module")
def star() -> CubrickDeployment:
    deployment = CubrickDeployment(
        DeploymentConfig(seed=21, regions=2, racks_per_region=2,
                         hosts_per_rack=3)
    )
    deployment.create_table(TableSchema.build(
        "events",
        dimensions=[
            Dimension("day", 8, range_size=2),
            Dimension("country", 6, range_size=2),
            Dimension("user_id", USERS, range_size=250, dict_encode=True),
        ],
        metrics=[Metric("clicks"), Metric("cost")],
    ))
    deployment.create_table(TableSchema.build(
        "dim_users", dimensions=_user_dimensions(),
        metrics=[Metric("weight")],
    ))
    deployment.create_table(
        TableSchema.build(
            "dim_users_rep", dimensions=_user_dimensions(),
            metrics=[Metric("weight")],
        ),
        replicated=True,
    )
    deployment.create_table(
        TableSchema.build(
            "dim_geo",
            dimensions=[Dimension("country", 6, range_size=2),
                        Dimension("region", 3, range_size=1)],
            metrics=[Metric("population")],
        ),
        replicated=True,
    )

    import numpy as np

    generator = np.random.default_rng(21)
    deployment.load(
        "events",
        [{
            "day": int(generator.integers(8)),
            "country": int(generator.integers(6)),
            "user_id": int(generator.integers(USERS)),
            "clicks": float(generator.integers(1, 20)),
            "cost": float(generator.integers(1, 100)),
        } for __ in range(1200)],
    )
    user_rows = [{
        "user_id": user_id,
        "tier": user_id % 4,
        "segment": (user_id // 7) % 5,
        "weight": 1.0,
    } for user_id in range(LOADED_USERS)]
    deployment.load("dim_users", user_rows)
    deployment.load("dim_users_rep", user_rows)
    deployment.load(
        "dim_geo",
        [{"country": c, "region": c % 3, "population": float(100 + c)}
         for c in range(6)],
    )
    deployment.simulator.run_until(60.0)
    return deployment


def run_sql(deployment, statement, *, broadcast_threshold=None,
            optimize=True):
    """Execute through the SQL pipeline with planner knobs exposed."""
    context = deployment.planner_context(optimize=optimize)
    if broadcast_threshold is not None:
        context.broadcast_threshold = broadcast_threshold
    logical = plan(parse(statement), context, source=statement)
    physical = build_physical(logical)
    result = execute_plan(physical, deployment.proxy)
    return result, physical


def assert_same_result(sql_result, reference, *, ordered=True):
    assert len(sql_result.columns) == len(reference.columns)
    if ordered:
        assert sql_result.rows == reference.rows
    else:
        assert sorted(sql_result.rows) == sorted(reference.rows)


ALL_AGGS = [
    ("sum", AggFunc.SUM, "clicks"),
    ("count", AggFunc.COUNT, "clicks"),
    ("min", AggFunc.MIN, "cost"),
    ("max", AggFunc.MAX, "cost"),
    ("avg", AggFunc.AVG, "cost"),
    ("count_distinct", AggFunc.COUNT_DISTINCT, "user_id"),
]


class TestAggregateFamilies:
    @pytest.mark.parametrize("name,func,column", ALL_AGGS)
    def test_grouped(self, star, name, func, column):
        sql_result = star.sql(
            f"SELECT day, {name}({column}) FROM events GROUP BY day "
            f"ORDER BY day ASC"
        )
        reference = star.query(Query.build(
            "events", [Aggregation(func, column)], group_by=["day"],
            order_by="day", descending=False,
        ))
        assert sql_result.columns == reference.columns
        assert_same_result(sql_result, reference)

    @pytest.mark.parametrize("name,func,column", ALL_AGGS)
    def test_scalar(self, star, name, func, column):
        sql_result = star.sql(f"SELECT {name}({column}) FROM events")
        reference = star.query(
            Query.build("events", [Aggregation(func, column)])
        )
        assert_same_result(sql_result, reference)

    def test_count_star(self, star):
        sql_result = star.sql("SELECT count(*) FROM events")
        reference = star.query(
            Query.build("events", [Aggregation(AggFunc.COUNT, "*")])
        )
        assert_same_result(sql_result, reference)
        assert sql_result.rows == [(1200.0,)]

    def test_all_families_together(self, star):
        aggs = ", ".join(f"{n}({c})" for n, __, c in ALL_AGGS)
        sql_result = star.sql(
            f"SELECT country, {aggs} FROM events GROUP BY country "
            f"ORDER BY country ASC"
        )
        reference = star.query(Query.build(
            "events", [Aggregation(f, c) for __, f, c in ALL_AGGS],
            group_by=["country"], order_by="country", descending=False,
        ))
        assert_same_result(sql_result, reference)


class TestPredicates:
    @pytest.mark.parametrize("where,filters", [
        ("day = 3", [Filter.eq("day", 3)]),
        ("day BETWEEN 2 AND 5", [Filter.between("day", 2, 5)]),
        ("country IN (1, 3, 5)", [Filter.isin("country", [1, 3, 5])]),
        ("country NOT IN (0, 2)", [Filter.not_in("country", [0, 2])]),
        ("day < 3 AND country >= 4",
         [Filter.between("day", 0, 2), Filter.between("country", 4, 5)]),
        ("user_id != 42", [Filter.not_in("user_id", [42])]),
        # Compiled forms: OR unions and NOT complements on one column.
        ("day = 1 OR day BETWEEN 5 AND 6",
         [Filter.isin("day", [1, 5, 6])]),
        ("NOT (day BETWEEN 2 AND 5)", [Filter.isin("day", [0, 1, 6, 7])]),
    ])
    def test_where_equals_programmatic(self, star, where, filters):
        sql_result = star.sql(
            f"SELECT sum(clicks), count(*) FROM events WHERE {where}"
        )
        reference = star.query(Query.build(
            "events",
            [Aggregation(AggFunc.SUM, "clicks"),
             Aggregation(AggFunc.COUNT, "*")],
            filters=filters,
        ))
        assert_same_result(sql_result, reference)

    def test_unsatisfiable_short_circuits(self, star):
        result = star.sql(
            "SELECT sum(clicks) FROM events WHERE day < 2 AND day > 5"
        )
        assert result.rows == []
        assert result.metadata["fanout"] == 0
        assert "always false" in result.metadata["empty_reason"]

    def test_having_order_limit(self, star):
        sql_result = star.sql(
            "SELECT day, sum(clicks) FROM events GROUP BY day "
            "HAVING sum(clicks) > 100 ORDER BY sum(clicks) DESC LIMIT 3"
        )
        reference = star.query(Query.build(
            "events", [Aggregation(AggFunc.SUM, "clicks")],
            group_by=["day"],
            having=[Having(column="sum(clicks)", op=CompareOp(">"),
                           value=100.0)],
            order_by="sum(clicks)", descending=True, limit=3,
        ))
        assert_same_result(sql_result, reference)


def _join_statement(dim: str, *, where: str = "", group: str = "tier"):
    clause = f" WHERE {where}" if where else ""
    return (
        f"SELECT {dim}.{group}, sum(clicks), count(*) FROM events "
        f"JOIN {dim} ON events.user_id = {dim}.user_id{clause} "
        f"GROUP BY {dim}.{group}"
    )


class TestJoinStrategies:
    """Broadcast and partitioned-hash joins against the replicated twin.

    ``dim_users`` is sharded (its strategy depends on the broadcast
    threshold); ``dim_users_rep`` holds identical rows on every node, so
    its replicated-local answer is the ground truth.
    """

    CASES = [
        ("", "tier"),
        ("day BETWEEN 0 AND 3", "tier"),
        ("dim.segment IN (1, 2, 3)", "segment"),
        ("day < 6 AND dim.tier = 2", "segment"),
    ]

    def reference(self, star, where, group):
        statement = _join_statement(
            "dim_users_rep",
            where=where.replace("dim.", "dim_users_rep."),
            group=group,
        )
        result, physical = run_sql(star, statement)
        assert physical.kind == "fanout"
        strategies = result.metadata["join_strategies"]
        assert strategies == {"dim_users_rep": "replicated-local"}
        return result

    @pytest.mark.parametrize("where,group", CASES)
    def test_broadcast_equals_replicated(self, star, where, group):
        statement = _join_statement(
            "dim_users", where=where.replace("dim.", "dim_users."),
            group=group,
        )
        result, physical = run_sql(star, statement)
        assert physical.kind == "broadcast-join"
        assert result.metadata["join_strategies"] == {
            "dim_users": "broadcast"
        }
        assert result.metadata["fanout"] >= 2
        assert_same_result(
            result, self.reference(star, where, group), ordered=False
        )

    @pytest.mark.parametrize("where,group", CASES)
    def test_hash_equals_replicated(self, star, where, group):
        statement = _join_statement(
            "dim_users", where=where.replace("dim.", "dim_users."),
            group=group,
        )
        result, physical = run_sql(
            star, statement, broadcast_threshold=100
        )
        assert physical.kind == "hash-join"
        assert result.metadata["join_strategies"] == {
            "dim_users": "partitioned-hash"
        }
        assert result.metadata["fanout"] >= 2
        assert result.metadata["collect_fanout"] >= 2
        assert_same_result(
            result, self.reference(star, where, group), ordered=False
        )

    def test_membership_only_join(self, star):
        """No dotted references: the join still drops unmatched users."""
        for threshold in (None, 100):
            result, __ = run_sql(
                star,
                "SELECT count(*) FROM events JOIN dim_users "
                "ON events.user_id = dim_users.user_id",
                broadcast_threshold=threshold,
            )
            reference, __ = run_sql(
                star,
                "SELECT count(*) FROM events JOIN dim_users_rep "
                "ON events.user_id = dim_users_rep.user_id",
            )
            assert result.rows == reference.rows
        # Some events reference users beyond LOADED_USERS: the join
        # must drop them, so the count is strictly below the table size.
        assert 0 < reference.rows[0][0] < 1200

    def test_mixed_replicated_and_sharded_joins(self, star):
        statement = (
            "SELECT dim_geo.region, dim_users.tier, sum(cost) "
            "FROM events "
            "JOIN dim_users ON events.user_id = dim_users.user_id "
            "JOIN dim_geo ON events.country = dim_geo.country "
            "WHERE dim_users.tier IN (1, 2) "
            "GROUP BY dim_geo.region, dim_users.tier"
        )
        reference_stmt = statement.replace("dim_users", "dim_users_rep")
        reference, __ = run_sql(star, reference_stmt)
        for threshold in (None, 100):
            result, physical = run_sql(
                star, statement, broadcast_threshold=threshold
            )
            expected = (
                "broadcast" if threshold is None else "partitioned-hash"
            )
            assert result.metadata["join_strategies"] == {
                "dim_users": expected, "dim_geo": "replicated-local",
            }
            assert sorted(result.rows) == sorted(reference.rows)

    def test_optimizer_off_still_correct(self, star):
        statement = _join_statement(
            "dim_users", where="day BETWEEN 1 AND 6", group="tier"
        )
        optimized, __ = run_sql(star, statement, broadcast_threshold=100)
        unoptimized, physical = run_sql(
            star, statement, broadcast_threshold=100, optimize=False
        )
        assert physical.kind == "broadcast-join"  # hash needs optimize
        assert sorted(optimized.rows) == sorted(unoptimized.rows)


class TestSqlWorkloadStream:
    def test_generated_sql_equals_programmatic(self, star):
        """The SQL-defined workload variant is differential by design."""
        import numpy as np

        from repro.workloads.queries import QueryGenerator

        generator = QueryGenerator(
            [star.catalog.get("events").schema],
            np.random.default_rng(5),
        )
        for __ in range(25):
            query = generator.next_query()
            from repro.cubrick.sql import render_query

            sql_result = star.sql(render_query(query))
            reference = star.query(query)
            assert_same_result(sql_result, reference)
