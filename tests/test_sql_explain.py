"""Golden EXPLAIN snapshots, byte-compared.

EXPLAIN is a pure function of (statement, catalog, stats), so the
rendered text must be byte-identical run over run and across machines.
The snapshots live in ``tests/golden/`` and are compared exactly; CI
additionally renders the suite twice and diffs the outputs. Regenerate
with ``pytest tests/test_sql_explain.py --update-golden`` after an
intentional planner or renderer change.
"""

from pathlib import Path

import pytest

from repro.sql import explain
from tests.test_sql_frontend import make_context

GOLDEN_DIR = Path(__file__).parent / "golden"

#: name -> (statement, planner-context overrides)
SNAPSHOTS = {
    "scalar_scan": (
        "SELECT count(*) FROM events",
        {},
    ),
    "pruned_range": (
        "SELECT sum(clicks) FROM events WHERE day < 4 GROUP BY country",
        {},
    ),
    "interval_algebra": (
        "SELECT sum(cost) FROM events "
        "WHERE (day = 1 OR day BETWEEN 5 AND 6) AND NOT country = 2",
        {},
    ),
    "not_in_complement": (
        "SELECT count(*) FROM events WHERE user_id != 42",
        {},
    ),
    "empty_contradiction": (
        "SELECT sum(clicks) FROM events WHERE day < 2 AND day > 5",
        {},
    ),
    "replicated_join": (
        "SELECT dim_geo.region, sum(clicks) FROM events "
        "JOIN dim_geo ON events.country = dim_geo.country "
        "GROUP BY dim_geo.region",
        {},
    ),
    "broadcast_join": (
        "SELECT dim_users.tier, sum(clicks) FROM events "
        "JOIN dim_users ON events.user_id = dim_users.user_id "
        "GROUP BY dim_users.tier",
        {},
    ),
    "hash_join": (
        "SELECT dim_users.tier, sum(clicks) FROM events "
        "JOIN dim_users ON events.user_id = dim_users.user_id "
        "WHERE dim_users.tier IN (1, 2) GROUP BY dim_users.tier",
        {"broadcast_threshold": 100},
    ),
    "two_joins_topn": (
        "SELECT dim_geo.region, dim_users.tier, sum(cost) FROM events "
        "JOIN dim_users ON events.user_id = dim_users.user_id "
        "JOIN dim_geo ON events.country = dim_geo.country "
        "WHERE day BETWEEN 0 AND 3 "
        "GROUP BY dim_geo.region, dim_users.tier "
        "HAVING sum(cost) > 10 ORDER BY sum(cost) DESC LIMIT 5",
        {},
    ),
    "unoptimized": (
        "SELECT sum(clicks) FROM events "
        "JOIN dim_users ON events.user_id = dim_users.user_id "
        "WHERE day < 4 GROUP BY country",
        {"broadcast_threshold": 100, "optimize": False},
    ),
}


def render(name: str) -> str:
    statement, overrides = SNAPSHOTS[name]
    return explain(statement, make_context(**overrides))


@pytest.mark.parametrize("name", sorted(SNAPSHOTS))
def test_explain_matches_golden(name, update_golden):
    golden_path = GOLDEN_DIR / f"explain_{name}.txt"
    text = render(name)
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(text)
        pytest.skip(f"golden updated: {golden_path.name}")
    assert golden_path.exists(), (
        f"missing {golden_path}; run with --update-golden to create"
    )
    assert text == golden_path.read_text()


@pytest.mark.parametrize("name", sorted(SNAPSHOTS))
def test_explain_is_deterministic(name):
    assert render(name) == render(name)


def test_every_golden_file_has_a_snapshot():
    stale = [
        path.name for path in GOLDEN_DIR.glob("explain_*.txt")
        if path.stem[len("explain_"):] not in SNAPSHOTS
    ]
    assert stale == [], f"stale golden files: {stale}"


def test_explain_sections_present():
    text = render("two_joins_topn")
    for section in ("== logical plan ==", "== rewrite rules ==",
                    "== physical plan =="):
        assert section in text
    assert text.endswith("\n")
