"""Unit tests for the SQL frontend: lexer, parser and planner.

The differential and property suites prove end-to-end equivalence;
this file pins the stage-by-stage contracts — token positions, AST
shapes, typed errors with caret positions, interval compilation and
rewrite-rule behaviour.
"""

import dataclasses
from types import SimpleNamespace

import pytest

from repro.cubrick.query import FilterOp
from repro.cubrick.schema import Catalog, Dimension, Metric, TableSchema
from repro.errors import (
    QueryError,
    QueryFailedError,
    RegionUnavailableError,
    SqlError,
)
from repro.sql import ast, parse, plan, unparse
from repro.sql.lexer import EOF, KEYWORD, NAME, NUMBER, SYMBOL, tokenize
from repro.sql.physical import _on_some_region
from repro.sql.planner import PlannerContext


def star_catalog() -> Catalog:
    catalog = Catalog()
    catalog.create(TableSchema.build(
        "events",
        dimensions=[Dimension("day", 8, range_size=2),
                    Dimension("country", 6, range_size=2),
                    Dimension("user_id", 2000, range_size=250)],
        metrics=[Metric("clicks"), Metric("cost")],
    ), num_partitions=4)
    catalog.create(TableSchema.build(
        "dim_users",
        dimensions=[Dimension("user_id", 2000, range_size=250),
                    Dimension("tier", 4, range_size=1)],
        metrics=[Metric("weight")],
    ), num_partitions=2)
    catalog.create(TableSchema.build(
        "dim_geo",
        dimensions=[Dimension("country", 6, range_size=2),
                    Dimension("region", 3, range_size=1)],
        metrics=[Metric("population")],
    ), num_partitions=1, replicated=True)
    return catalog


def make_context(**overrides) -> PlannerContext:
    defaults = dict(
        catalog=star_catalog(),
        stats={"events": 10_000, "dim_users": 1500}.get,
    )
    defaults.update(overrides)
    return PlannerContext(**defaults)


def plan_sql(statement: str, **overrides):
    return plan(parse(statement), make_context(**overrides),
                source=statement)


class TestLexer:
    def test_tokens_carry_positions(self):
        tokens = tokenize("SELECT sum(clicks) FROM t")
        kinds = [t.kind for t in tokens]
        assert kinds == [KEYWORD, NAME, SYMBOL, NAME, SYMBOL, KEYWORD,
                         NAME, EOF]
        assert [t.pos for t in tokens[:3]] == [0, 7, 10]

    def test_keywords_normalise_case(self):
        tokens = tokenize("SeLeCt FROM group BY")
        assert [t.value for t in tokens[:-1]] == [
            "select", "from", "group", "by",
        ]

    def test_dotted_name_is_one_token(self):
        (token, eof) = tokenize("dim_users.country")
        assert token.kind == NAME
        assert token.value == "dim_users.country"

    def test_numbers_keep_float_text(self):
        tokens = tokenize("1 2.5 300")
        assert [t.value for t in tokens[:-1]] == ["1", "2.5", "300"]

    def test_string_literal_rejected_with_position(self):
        with pytest.raises(SqlError) as info:
            tokenize("WHERE a = 'text'")
        assert info.value.position == 10

    def test_unknown_character_rejected(self):
        with pytest.raises(SqlError) as info:
            tokenize("SELECT @")
        assert info.value.position == 7


class TestParser:
    def test_select_items_and_count_star(self):
        stmt = parse("SELECT day, count(*), sum(clicks) FROM events "
                     "GROUP BY day")
        assert stmt.select[0] == ast.ColumnRef(name="day")
        assert stmt.select[1] == ast.AggregateCall(func="count",
                                                   argument="*")
        assert stmt.aggregates()[1].label() == "sum(clicks)"

    def test_star_only_for_count(self):
        with pytest.raises(SqlError, match="only valid inside count"):
            parse("SELECT sum(*) FROM events")

    def test_or_binds_looser_than_and(self):
        stmt = parse("SELECT count(*) FROM t WHERE a = 1 AND b = 2 "
                     "OR c = 3")
        assert isinstance(stmt.where, ast.Or)
        assert isinstance(stmt.where.items[0], ast.And)

    def test_parenthesised_predicates(self):
        stmt = parse("SELECT count(*) FROM t "
                     "WHERE a = 1 AND (b = 2 OR c = 3)")
        assert isinstance(stmt.where, ast.And)
        assert isinstance(stmt.where.items[1], ast.Or)

    def test_not_between_and_not_in(self):
        stmt = parse("SELECT count(*) FROM t "
                     "WHERE a NOT BETWEEN 1 AND 3 AND b NOT IN (4, 5)")
        between, inlist = stmt.where.items
        assert between.negated and inlist.negated

    def test_diamond_normalises_to_bang_equals(self):
        stmt = parse("SELECT count(*) FROM t WHERE a <> 5")
        assert stmt.where.op == "!="

    def test_join_condition_order_insensitive(self):
        forward = parse("SELECT count(*) FROM events JOIN dim_users "
                        "ON events.user_id = dim_users.user_id")
        reverse = parse("SELECT count(*) FROM events JOIN dim_users "
                        "ON dim_users.user_id = events.user_id")
        assert forward.joins == reverse.joins

    def test_trailing_tokens_rejected(self):
        with pytest.raises(SqlError, match="unexpected"):
            parse("SELECT count(*) FROM t LIMIT 5 garbage")

    def test_empty_input_rejected(self):
        with pytest.raises(SqlError):
            parse("   ")

    def test_unparse_is_canonical_fixed_point(self):
        text = ("select COUNT ( * ) , sum(clicks) from events "
                "where NOT (day < 3 or day > 5) group by country "
                "having sum(clicks) >= 10 order by sum(clicks) asc "
                "limit 7")
        stmt = parse(text)
        canonical = unparse(stmt)
        assert parse(canonical) == stmt
        assert unparse(parse(canonical)) == canonical


class TestPlannerErrors:
    def test_unknown_table_position(self):
        statement = "SELECT count(*) FROM nope"
        with pytest.raises(SqlError) as info:
            plan_sql(statement)
        assert info.value.position == statement.index("nope")
        assert "unknown table" in str(info.value)
        assert "^" in info.value.context()

    def test_unknown_column_in_where(self):
        statement = "SELECT count(*) FROM events WHERE bogus = 1"
        with pytest.raises(SqlError) as info:
            plan_sql(statement)
        assert info.value.position == statement.index("bogus")
        assert "unknown column" in str(info.value)

    def test_unknown_column_in_join_table(self):
        statement = ("SELECT count(*) FROM events JOIN dim_users "
                     "ON events.user_id = dim_users.user_id "
                     "GROUP BY dim_users.bogus")
        with pytest.raises(SqlError) as info:
            plan_sql(statement)
        assert "unknown column 'bogus' in table 'dim_users'" in str(
            info.value
        )

    def test_aggregate_in_where(self):
        statement = "SELECT count(*) FROM events WHERE sum(clicks) > 5"
        with pytest.raises(SqlError) as info:
            plan_sql(statement)
        assert "aggregates are not allowed in WHERE" in str(info.value)
        assert info.value.position == statement.index("sum")

    def test_metric_rejected_as_group_column(self):
        with pytest.raises(SqlError, match="is a metric"):
            plan_sql("SELECT count(*) FROM events GROUP BY clicks")

    def test_sum_over_dimension_rejected(self):
        with pytest.raises(SqlError, match="needs a metric column"):
            plan_sql("SELECT sum(day) FROM events")

    def test_sql_error_is_a_query_error(self):
        with pytest.raises(QueryError):
            plan_sql("SELECT count(*) FROM nope")


class TestPredicateCompilation:
    def filters(self, where: str, **overrides):
        logical = plan_sql(
            f"SELECT count(*) FROM events WHERE {where}", **overrides
        )
        return logical.filters

    def test_simple_conjunction_is_verbatim(self):
        filters = self.filters("day = 3 AND country IN (2, 1, 2)")
        assert filters[0].op is FilterOp.EQ
        assert filters[1].values == (2, 1, 2)  # order and dupes kept

    def test_range_comparisons_merge(self):
        (f,) = self.filters("day > 1 AND day <= 5")
        assert f.op is FilterOp.BETWEEN
        assert f.values == (2, 5)

    def test_or_same_column_unions(self):
        (f,) = self.filters("day = 1 OR day BETWEEN 3 AND 4")
        assert f.op is FilterOp.IN
        assert f.values == (1, 3, 4)

    def test_not_complements(self):
        (f,) = self.filters("NOT (day BETWEEN 2 AND 5)")
        assert f.op is FilterOp.IN
        assert f.values == (0, 1, 6, 7)

    def test_not_equal_on_wide_domain_emits_not_in(self):
        (f,) = self.filters("user_id != 7")
        assert f.op is FilterOp.NOT_IN
        assert f.values == (7,)

    def test_contradiction_marks_plan_empty(self):
        logical = plan_sql(
            "SELECT count(*) FROM events WHERE day < 2 AND day > 5"
        )
        assert logical.empty
        assert "always false" in logical.empty_reason

    def test_tautology_drops_filter(self):
        logical = plan_sql(
            "SELECT count(*) FROM events WHERE day >= 0"
        )
        assert logical.filters == ()
        assert not logical.empty

    def test_or_across_columns_rejected(self):
        with pytest.raises(SqlError, match="OR across different columns"):
            self.filters("day = 1 OR country = 2")

    def test_enum_limit_enforced(self):
        with pytest.raises(SqlError, match="too complex"):
            self.filters("NOT (user_id BETWEEN 500 AND 1500)",
                         enum_limit=100)


class TestJoinStrategies:
    def test_replicated_table_is_local(self):
        logical = plan_sql(
            "SELECT count(*) FROM events JOIN dim_geo "
            "ON events.country = dim_geo.country"
        )
        assert logical.join_strategies == {"dim_geo": "replicated-local"}

    def test_small_sharded_table_broadcasts(self):
        logical = plan_sql(
            "SELECT count(*) FROM events JOIN dim_users "
            "ON events.user_id = dim_users.user_id"
        )
        assert logical.join_strategies == {"dim_users": "broadcast"}

    def test_large_sharded_table_hash_partitions(self):
        logical = plan_sql(
            "SELECT count(*) FROM events JOIN dim_users "
            "ON events.user_id = dim_users.user_id",
            broadcast_threshold=100,
        )
        assert logical.join_strategies == {"dim_users": "partitioned-hash"}

    def test_optimizer_off_falls_back_to_broadcast(self):
        logical = plan_sql(
            "SELECT count(*) FROM events JOIN dim_users "
            "ON events.user_id = dim_users.user_id",
            broadcast_threshold=100, optimize=False,
        )
        assert logical.join_strategies == {"dim_users": "broadcast"}

    def test_join_membership_filter_injected(self):
        logical = plan_sql(
            "SELECT count(*) FROM events JOIN dim_users "
            "ON events.user_id = dim_users.user_id"
        )
        # No dotted dim_users references: the sharded join still has to
        # drop fact rows without a matching user, via a membership range.
        (membership,) = [
            f for f in logical.filters if f.dimension == "dim_users.user_id"
        ]
        assert membership.op is FilterOp.BETWEEN
        assert membership.values == (0, 1999)

    def test_dim_filters_pushed_for_hash_join(self):
        logical = plan_sql(
            "SELECT count(*) FROM events JOIN dim_users "
            "ON events.user_id = dim_users.user_id "
            "WHERE dim_users.tier = 2",
            broadcast_threshold=100,
        )
        (pushed,) = logical.dim_filters["dim_users"]
        assert pushed.dimension == "tier"  # prefix stripped for the scan
        assert pushed.values == (2,)

    def test_rewrite_trace_is_ordered(self):
        logical = plan_sql("SELECT count(*) FROM events WHERE day = 1")
        names = [name for name, __ in logical.trace]
        assert names == [
            "normalize-predicates", "join-strategy",
            "predicate-pushdown", "partition-pruning",
            "partial-aggregation",
        ]

    def test_missing_statistics_force_broadcast(self):
        statement = ("SELECT count(*) FROM events JOIN dim_users "
                     "ON events.user_id = dim_users.user_id")
        for stats in (None, lambda table: None):
            logical = plan_sql(statement, stats=stats,
                               broadcast_threshold=100)
            assert logical.join_strategies == {"dim_users": "broadcast"}
            (__, notes), = [t for t in logical.trace
                            if t[0] == "join-strategy"]
            assert any("no statistics" in note for note in notes)

    def test_two_sharded_joins_force_broadcast(self):
        catalog = star_catalog()
        catalog.create(TableSchema.build(
            "dim_days",
            dimensions=[Dimension("day", 8, range_size=2),
                        Dimension("week", 2, range_size=1)],
            metrics=[Metric("hours")],
        ), num_partitions=2)
        statement = (
            "SELECT count(*) FROM events "
            "JOIN dim_users ON events.user_id = dim_users.user_id "
            "JOIN dim_days ON events.day = dim_days.day"
        )
        context = PlannerContext(
            catalog=catalog,
            stats={"events": 10_000, "dim_users": 1500, "dim_days": 8}.get,
        )
        logical = plan(parse(statement), context, source=statement)
        assert logical.join_strategies == {
            "dim_users": "broadcast", "dim_days": "broadcast",
        }
        (__, notes), = [t for t in logical.trace
                        if t[0] == "join-strategy"]
        assert any("forced: 2 sharded joins" in note for note in notes)


class TestParserEdgeCases:
    def test_negative_numbers(self):
        stmt = parse("SELECT count(*) FROM t WHERE day = -3")
        assert stmt.where.value.value == -3.0
        assert stmt.where.value.is_int

    def test_dotted_fact_table_rejected(self):
        with pytest.raises(SqlError, match="cannot be dotted"):
            parse("SELECT count(*) FROM db.events")

    def test_limit_zero_rejected(self):
        with pytest.raises(SqlError, match="positive integer"):
            parse("SELECT count(*) FROM t LIMIT 0")

    def test_limit_fraction_rejected(self):
        with pytest.raises(SqlError, match="positive integer"):
            parse("SELECT count(*) FROM t LIMIT 2.5")

    def test_join_condition_same_table_both_sides(self):
        with pytest.raises(SqlError, match="on both sides"):
            parse("SELECT count(*) FROM events JOIN dim_users "
                  "ON events.day = events.user_id")

    def test_join_condition_unknown_prefix(self):
        with pytest.raises(SqlError, match="unknown table 'nope'"):
            parse("SELECT count(*) FROM events JOIN dim_users "
                  "ON events.user_id = nope.user_id")

    def test_join_condition_requires_dotted_names(self):
        with pytest.raises(SqlError, match="dotted"):
            parse("SELECT count(*) FROM events JOIN dim_users "
                  "ON user_id = dim_users.user_id")


class TestPlannerEdgeCases:
    def test_or_with_multi_column_branch_rejected(self):
        with pytest.raises(SqlError, match="OR across different columns"):
            plan_sql("SELECT count(*) FROM events "
                     "WHERE (day = 1 AND country = 2) OR day = 3")

    def test_not_over_multi_column_rejected(self):
        with pytest.raises(SqlError, match="NOT over a multi-column"):
            plan_sql("SELECT count(*) FROM events "
                     "WHERE NOT (day = 1 AND country = 2)")

    def test_not_in_atom_complements(self):
        logical = plan_sql(
            "SELECT count(*) FROM events WHERE day NOT IN (1, 2)"
        )
        (f,) = logical.filters
        assert f.op is FilterOp.IN
        assert f.values == (0, 3, 4, 5, 6, 7)

    def test_not_between_atom_complements(self):
        logical = plan_sql(
            "SELECT count(*) FROM events WHERE day NOT BETWEEN 2 AND 5"
        )
        (f,) = logical.filters
        assert f.values == (0, 1, 6, 7)

    def test_inverted_between_is_empty(self):
        logical = plan_sql(
            "SELECT count(*) FROM events WHERE day BETWEEN 5 AND 2"
        )
        assert logical.empty

    def test_out_of_domain_equality_is_empty(self):
        logical = plan_sql("SELECT count(*) FROM events WHERE day = 12")
        assert logical.empty
        assert "always false" in logical.empty_reason

    def test_metric_in_where_rejected(self):
        with pytest.raises(SqlError, match="is a metric"):
            plan_sql("SELECT count(*) FROM events WHERE clicks = 5")

    def test_self_join_rejected(self):
        stmt = parse("SELECT count(*) FROM events JOIN dim_users "
                     "ON events.user_id = dim_users.user_id")
        # The parser already refuses `JOIN events ON events.a = events.b`
        # (same table on both condition sides), so exercise the planner's
        # own guard with a hand-altered AST.
        clause = dataclasses.replace(stmt.joins[0], table="events")
        bad = dataclasses.replace(stmt, joins=(clause,))
        with pytest.raises(SqlError, match="to itself"):
            plan(bad, make_context())

    def test_unknown_join_table_rejected(self):
        with pytest.raises(SqlError, match="unknown table 'nope'"):
            plan_sql("SELECT count(*) FROM events JOIN nope "
                     "ON events.user_id = nope.user_id")

    def test_fact_join_key_must_be_dimension(self):
        with pytest.raises(SqlError, match="'clicks' is not a dimension"):
            plan_sql("SELECT count(*) FROM events JOIN dim_users "
                     "ON events.clicks = dim_users.user_id")

    def test_dim_join_key_must_be_dimension(self):
        with pytest.raises(SqlError, match="'weight' is not a dimension"):
            plan_sql("SELECT count(*) FROM events JOIN dim_users "
                     "ON events.user_id = dim_users.weight")

    def test_duplicate_join_table_rejected(self):
        stmt = parse("SELECT count(*) FROM events JOIN dim_users "
                     "ON events.user_id = dim_users.user_id")
        bad = dataclasses.replace(stmt, joins=(stmt.joins[0],) * 2)
        with pytest.raises(SqlError, match="duplicate join table"):
            plan(bad, make_context())


def _stub_proxy(regions):
    """regions: [(name, available, outcome)] where outcome is a value
    to return or an exception for the per-region callback to raise."""
    proxy = SimpleNamespace(
        region_preference=[name for name, __, __unused in regions],
        coordinators={},
    )
    for name, available, outcome in regions:
        region_obj = SimpleNamespace(available=available)
        cluster = SimpleNamespace(region=lambda n, r=region_obj: r)
        proxy.coordinators[name] = SimpleNamespace(
            sm=SimpleNamespace(cluster=cluster), outcome=outcome,
        )
    return proxy


def _run_stub(coordinator):
    if isinstance(coordinator.outcome, Exception):
        raise coordinator.outcome
    return coordinator.outcome


class TestRegionFallback:
    """The join executors' region routing (physical._on_some_region)."""

    def test_unavailable_region_skipped(self):
        proxy = _stub_proxy([("r0", False, "a"), ("r1", True, "b")])
        assert _on_some_region(proxy, _run_stub) == "b"

    def test_retryable_failure_falls_through(self):
        proxy = _stub_proxy([
            ("r0", True, QueryFailedError("boom", retryable=True)),
            ("r1", True, "ok"),
        ])
        assert _on_some_region(proxy, _run_stub) == "ok"

    def test_non_retryable_failure_raises_immediately(self):
        proxy = _stub_proxy([
            ("r0", True, QueryFailedError("fatal", retryable=False)),
            ("r1", True, "never reached"),
        ])
        with pytest.raises(QueryFailedError, match="fatal"):
            _on_some_region(proxy, _run_stub)

    def test_all_regions_failing_raises_last_error(self):
        proxy = _stub_proxy([
            ("r0", True, QueryFailedError("first")),
            ("r1", True, QueryFailedError("second")),
        ])
        with pytest.raises(QueryFailedError, match="second"):
            _on_some_region(proxy, _run_stub)

    def test_all_regions_unavailable(self):
        proxy = _stub_proxy([("r0", False, "a"), ("r1", False, "b")])
        with pytest.raises(RegionUnavailableError):
            _on_some_region(proxy, _run_stub)
