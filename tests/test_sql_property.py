"""Property suite for the SQL frontend (Hypothesis, derandomized).

Three invariants:

* parse → unparse → parse is the identity on ASTs (positions excluded)
  and unparse(parse(·)) is a fixed point on canonical text;
* the optimizer never changes answers: every generated statement
  returns identical rows with the rewrite rules on and off, through
  real distributed execution;
* adversarial input (random case, whitespace, parentheses, truncation)
  never crashes the frontend with anything but a typed SqlError.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.errors import SqlError
from repro.sql import parse, unparse

def quiet_settings(**overrides):
    return settings(
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
        **overrides,
    )


#: Keywords whose case the robustness tests may scramble (column names
#: are case-sensitive, so only true keywords are fair game).
_KEYWORDS = (
    "SELECT", "FROM", "JOIN", "ON", "WHERE", "AND", "OR", "NOT",
    "BETWEEN", "IN", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "ASC", "DESC",
)

# ----------------------------------------------------------------------
# Grammar strategy (free-form: for round-trip and robustness)
# ----------------------------------------------------------------------

names = st.sampled_from(
    ["day", "country", "user_id", "clicks", "cost", "dim_users.tier"]
)
numbers = st.integers(min_value=0, max_value=99).map(str)
agg_funcs = st.sampled_from(
    ["sum", "count", "min", "max", "avg", "count_distinct"]
)


@st.composite
def aggregate_text(draw):
    func = draw(agg_funcs)
    if func == "count" and draw(st.booleans()):
        return "count(*)"
    return f"{func}({draw(names)})"


@st.composite
def atom_text(draw, column=None):
    column = column or draw(names)
    kind = draw(st.integers(0, 3))
    if kind == 0:
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        return f"{column} {op} {draw(numbers)}"
    if kind == 1:
        values = draw(st.lists(numbers, min_size=1, max_size=4))
        negated = "NOT " if draw(st.booleans()) else ""
        return f"{column} {negated}IN ({', '.join(values)})"
    if kind == 2:
        low, high = sorted(
            [draw(st.integers(0, 50)), draw(st.integers(0, 50))]
        )
        negated = "NOT " if draw(st.booleans()) else ""
        return f"{column} {negated}BETWEEN {low} AND {high}"
    return f"NOT {draw(atom_text(column=column))}"


@st.composite
def predicate_text(draw):
    clauses = draw(st.lists(atom_text(), min_size=1, max_size=3))
    joiner = draw(st.sampled_from([" AND ", " OR "]))
    return joiner.join(clauses)


@st.composite
def statement_text(draw):
    group = draw(st.lists(
        st.sampled_from(["day", "country", "dim_users.tier"]),
        max_size=2, unique=True,
    ))
    aggs = draw(st.lists(aggregate_text(), min_size=1, max_size=3))
    select = list(group) + aggs
    parts = ["SELECT ", ", ".join(select), " FROM events"]
    if draw(st.booleans()):
        parts.append(
            " JOIN dim_users ON events.user_id = dim_users.user_id"
        )
    if draw(st.booleans()):
        parts.append(f" WHERE {draw(predicate_text())}")
    if group:
        parts.append(" GROUP BY " + ", ".join(group))
        if draw(st.booleans()):
            op = draw(st.sampled_from(["=", "<", "<=", ">", ">="]))
            parts.append(f" HAVING {aggs[0]} {op} {draw(numbers)}")
        if draw(st.booleans()):
            direction = draw(st.sampled_from([" ASC", " DESC", ""]))
            parts.append(f" ORDER BY {aggs[0]}{direction}")
    if draw(st.booleans()):
        parts.append(f" LIMIT {draw(st.integers(1, 20))}")
    return "".join(parts)


class TestRoundTrip:
    @quiet_settings(max_examples=300)
    @given(statement_text())
    def test_parse_unparse_parse_identity(self, text):
        stmt = parse(text)
        canonical = unparse(stmt)
        assert parse(canonical) == stmt
        assert unparse(parse(canonical)) == canonical


class TestRobustness:
    @quiet_settings(max_examples=300)
    @given(statement_text(), st.randoms(use_true_random=False))
    def test_case_and_whitespace_insensitive(self, text, random):
        words = []
        for word in text.split(" "):
            if word.upper() in _KEYWORDS:
                word = "".join(
                    ch.upper() if random.random() < 0.5 else ch.lower()
                    for ch in word
                )
            words.append(word)
        mangled = (" " * (1 + random.randrange(3))).join(words)
        assert parse(mangled) == parse(text)

    @quiet_settings(max_examples=300)
    @given(statement_text(), st.integers(0, 400), st.text(
        alphabet=" ()',;*<>=!0123456789abcdefWHERE", max_size=12,
    ))
    def test_mutations_never_crash(self, text, cut, garbage):
        mutated = text[: cut % (len(text) + 1)] + garbage
        try:
            parse(mutated)
        except SqlError as exc:
            assert exc.position is None or 0 <= exc.position <= len(mutated)

    @quiet_settings(max_examples=100)
    @given(statement_text())
    def test_redundant_parens_are_transparent(self, text):
        if " WHERE " not in text:
            return
        head, __, tail = text.partition(" WHERE ")
        for clause in (" GROUP BY", " HAVING", " ORDER BY", " LIMIT"):
            if clause in tail:
                where, __, rest = tail.partition(clause)
                wrapped = f"{head} WHERE ({where}){clause}{rest}"
                break
        else:
            wrapped = f"{head} WHERE ({tail})"
        assert parse(wrapped) == parse(text)


# ----------------------------------------------------------------------
# Execution equivalence (plannable statements on a live deployment)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_star() -> CubrickDeployment:
    deployment = CubrickDeployment(
        DeploymentConfig(seed=3, regions=2, racks_per_region=2,
                         hosts_per_rack=2)
    )
    deployment.create_table(TableSchema.build(
        "events",
        dimensions=[Dimension("day", 8, range_size=2),
                    Dimension("country", 6, range_size=2),
                    Dimension("user_id", 60, range_size=10)],
        metrics=[Metric("clicks"), Metric("cost")],
    ))
    deployment.create_table(TableSchema.build(
        "dim_users",
        dimensions=[Dimension("user_id", 60, range_size=10),
                    Dimension("tier", 4, range_size=1)],
        metrics=[Metric("weight")],
    ))
    generator = np.random.default_rng(3)
    deployment.load(
        "events",
        [{
            "day": int(generator.integers(8)),
            "country": int(generator.integers(6)),
            "user_id": int(generator.integers(60)),
            "clicks": float(generator.integers(1, 10)),
            "cost": float(generator.integers(1, 50)),
        } for __ in range(400)],
    )
    deployment.load("dim_users", [
        {"user_id": u, "tier": u % 4, "weight": 1.0} for u in range(50)
    ])
    deployment.simulator.run_until(60.0)
    return deployment


@st.composite
def plannable_statement(draw):
    """Statements the catalog planner always accepts: per-column
    predicate groups (OR only within one column) ANDed together."""
    columns = {"day": 8, "country": 6, "user_id": 60}
    group = draw(st.lists(
        st.sampled_from(["day", "country", "dim_users.tier"]),
        max_size=2, unique=True,
    ))
    agg = draw(st.sampled_from(
        ["sum(clicks)", "count(*)", "min(cost)", "max(cost)",
         "avg(cost)", "count_distinct(user_id)"]
    ))
    parts = ["SELECT "]
    parts.append(", ".join(list(group) + [agg]))
    parts.append(" FROM events")
    join_needed = any(g.startswith("dim_users.") for g in group)
    if join_needed or draw(st.booleans()):
        parts.append(
            " JOIN dim_users ON events.user_id = dim_users.user_id"
        )
    clause_columns = draw(st.lists(
        st.sampled_from(sorted(columns)), max_size=2, unique=True,
    ))
    clauses = []
    for column in clause_columns:
        domain = columns[column]
        first = draw(atom_for(column, domain))
        if draw(st.booleans()):
            clauses.append(
                f"({first} OR {draw(atom_for(column, domain))})"
            )
        else:
            clauses.append(first)
    if clauses:
        parts.append(" WHERE " + " AND ".join(clauses))
    if group:
        parts.append(" GROUP BY " + ", ".join(group))
        if draw(st.booleans()):
            parts.append(f" ORDER BY {agg} DESC")
            if draw(st.booleans()):
                parts.append(f" LIMIT {draw(st.integers(1, 5))}")
    return "".join(parts)


@st.composite
def atom_for(draw, column, domain):
    kind = draw(st.integers(0, 3))
    value = draw(st.integers(0, domain - 1))
    if kind == 0:
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        return f"{column} {op} {value}"
    if kind == 1:
        size = draw(st.integers(1, 3))
        values = sorted(
            draw(st.integers(0, domain - 1)) for __ in range(size)
        )
        return f"{column} IN ({', '.join(map(str, values))})"
    if kind == 2:
        other = draw(st.integers(0, domain - 1))
        low, high = min(value, other), max(value, other)
        return f"{column} BETWEEN {low} AND {high}"
    return f"NOT {column} = {value}"


class TestOptimizerEquivalence:
    @quiet_settings(max_examples=40)
    @given(plannable_statement())
    def test_rows_identical_with_rules_off(self, small_star, statement):
        from tests.test_sql_differential import run_sql

        optimized, __ = run_sql(small_star, statement)
        unoptimized, __ = run_sql(small_star, statement, optimize=False)
        assert optimized.columns == unoptimized.columns
        assert sorted(optimized.rows) == sorted(unoptimized.rows)

    @quiet_settings(max_examples=15)
    @given(plannable_statement())
    def test_hash_join_threshold_never_changes_rows(
        self, small_star, statement
    ):
        from tests.test_sql_differential import run_sql

        default, __ = run_sql(small_star, statement)
        forced_hash, __ = run_sql(
            small_star, statement, broadcast_threshold=1
        )
        assert sorted(default.rows) == sorted(forced_hash.rows)
