"""SQL render/parse round-trip property and per-table admission quotas."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cubrick.query import (
    AggFunc,
    Aggregation,
    CompareOp,
    Filter,
    Having,
    Join,
    Query,
)
from repro.cubrick.sql import parse_query, render_query
from repro.errors import AdmissionControlError

name_strategy = st.from_regex(r"[a-z_][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s not in {"select", "from", "join", "on", "where", "and",
                        "between", "in", "asc", "desc", "limit", "group",
                        "order", "by", "sum", "count", "min", "max", "avg",
                        "count_distinct"}
)


@st.composite
def query_strategy(draw):
    table = draw(name_strategy)
    aggregations = draw(
        st.lists(
            st.builds(
                Aggregation,
                st.sampled_from(list(AggFunc)),
                name_strategy,
            ),
            min_size=1,
            max_size=3,
        )
    )
    filters = draw(
        st.lists(
            st.one_of(
                st.builds(Filter.eq, name_strategy, st.integers(0, 100)),
                st.builds(
                    Filter.between, name_strategy,
                    st.integers(0, 50), st.integers(50, 100),
                ),
                st.builds(
                    Filter.isin, name_strategy,
                    st.lists(st.integers(0, 100), min_size=1, max_size=4),
                ),
            ),
            max_size=3,
        )
    )
    group_by = draw(st.lists(name_strategy, max_size=2, unique=True))
    dim_tables = draw(st.lists(name_strategy, max_size=2, unique=True))
    joins = [
        Join(table=t, fact_key=draw(name_strategy),
             dim_key=draw(name_strategy))
        for t in dim_tables
        if t != table
    ]
    result_columns = list(group_by) + [a.label() for a in aggregations]
    having = []
    if draw(st.booleans()):
        having = [
            Having(
                draw(st.sampled_from(result_columns)),
                draw(st.sampled_from(list(CompareOp))),
                float(draw(st.integers(0, 1000))),
            )
            for __ in range(draw(st.integers(1, 2)))
        ]
    order_by = None
    if group_by and draw(st.booleans()):
        order_by = draw(st.sampled_from(result_columns))
    limit = draw(st.one_of(st.none(), st.integers(1, 100)))
    # descending only matters (and only renders) with an ORDER BY.
    descending = draw(st.booleans()) if order_by is not None else True
    return Query.build(
        table,
        aggregations,
        group_by=group_by,
        filters=filters,
        joins=joins,
        having=having,
        order_by=order_by,
        descending=descending,
        limit=limit,
    )


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(query=query_strategy())
    def test_parse_inverts_render(self, query):
        rendered = render_query(query)
        reparsed = parse_query(rendered)
        assert reparsed == query

    def test_render_readable(self):
        query = Query.build(
            "events",
            [Aggregation(AggFunc.SUM, "clicks")],
            group_by=["day"],
            filters=[Filter.between("day", 0, 6)],
            order_by="sum(clicks)",
            limit=3,
        )
        assert render_query(query) == (
            "SELECT sum(clicks) FROM events WHERE day BETWEEN 0 AND 6 "
            "GROUP BY day ORDER BY sum(clicks) DESC LIMIT 3"
        )


class TestTableQuotas:
    def test_per_table_quota_is_enforced(self, tiny_deployment):
        proxy = tiny_deployment.proxy
        proxy.admission.set_table_quota("events", 3.0)
        query_sql = "SELECT count(clicks) FROM events"
        served = 0
        rejected = 0
        for __ in range(10):
            try:
                tiny_deployment.sql(query_sql)
                served += 1
            except AdmissionControlError:
                rejected += 1
        assert served == 3
        assert rejected == 7

    def test_other_tables_unaffected(self, tiny_deployment):
        from repro.cubrick.schema import Dimension, Metric, TableSchema

        other = TableSchema.build(
            "other", [Dimension("x", 5)], [Metric("m")]
        )
        tiny_deployment.create_table(other)
        tiny_deployment.load("other", [{"x": 1, "m": 1.0}] * 5)
        tiny_deployment.simulator.run_until(
            tiny_deployment.simulator.now + 30.0
        )
        proxy = tiny_deployment.proxy
        proxy.admission.set_table_quota("events", 1.0)
        tiny_deployment.sql("SELECT count(clicks) FROM events")
        with pytest.raises(AdmissionControlError):
            tiny_deployment.sql("SELECT count(clicks) FROM events")
        # The quota on "events" does not throttle "other".
        for __ in range(5):
            tiny_deployment.sql("SELECT count(m) FROM other")

    def test_quota_window_slides(self, tiny_deployment):
        proxy = tiny_deployment.proxy
        proxy.admission.set_table_quota("events", 1.0)
        tiny_deployment.sql("SELECT count(clicks) FROM events")
        with pytest.raises(AdmissionControlError):
            tiny_deployment.sql("SELECT count(clicks) FROM events")
        tiny_deployment.simulator.run_until(
            tiny_deployment.simulator.now + 2.0
        )
        tiny_deployment.sql("SELECT count(clicks) FROM events")

    def test_invalid_quota_rejected(self, tiny_deployment):
        with pytest.raises(ValueError):
            tiny_deployment.proxy.admission.set_table_quota("events", 0.0)
