"""Tests for the generation-3 SSD tier (paper §IV-F3)."""

import numpy as np
import pytest

from repro.cubrick.bricks import Brick
from repro.cubrick.compression import MemoryBudget, MemoryMonitor
from repro.cubrick.loadbalance import IopsAwareExporter, SsdExporter
from repro.cubrick.node import CubrickNode
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.cubrick.schema import Catalog
from repro.cubrick.sharding import MonotonicHashMapper, ShardDirectory
from tests.conftest import make_rows


def make_brick(rows=200, seed=0) -> Brick:
    brick = Brick(0, ("d",), ("m",))
    rng = np.random.default_rng(seed)
    for __ in range(rows):
        brick.append({"d": int(rng.integers(10)), "m": float(rng.random())})
    return brick


class TestBrickEviction:
    def test_evict_frees_all_memory(self):
        brick = make_brick()
        brick.evict()
        assert brick.is_evicted
        assert brick.footprint_bytes() == 0
        assert brick.ssd_bytes() > 0

    def test_evict_compresses_first_if_needed(self):
        brick = make_brick()
        assert not brick.is_compressed
        brick.evict()
        # SSD bytes are compressed bytes, less than the logical size.
        assert brick.ssd_bytes() < brick.decompressed_bytes()

    def test_read_pays_io_and_restores(self):
        brick = make_brick()
        total = brick.columns()["m"].sum()
        brick.evict()
        assert brick.io_reads == 0
        assert brick.columns()["m"].sum() == pytest.approx(total)
        assert brick.io_reads == 1
        assert not brick.is_evicted
        assert brick.footprint_bytes() > 0

    def test_append_to_evicted_brick(self):
        brick = make_brick(rows=10)
        brick.evict()
        brick.append({"d": 1, "m": 9.0})
        assert brick.rows == 11
        assert brick.io_reads == 1

    def test_evict_is_idempotent(self):
        brick = make_brick()
        brick.evict()
        size = brick.ssd_bytes()
        brick.evict()
        assert brick.ssd_bytes() == size
        assert brick.io_reads == 0

    def test_load_from_ssd_hook(self):
        brick = make_brick()
        brick.evict()
        brick.load_from_ssd()
        assert not brick.is_evicted
        assert brick.is_compressed  # back to compressed-in-memory
        assert brick.io_reads == 1

    def test_decompressed_bytes_stable_under_eviction(self):
        brick = make_brick()
        logical = brick.decompressed_bytes()
        brick.evict()
        assert brick.decompressed_bytes() == logical

    def test_stats_reflect_eviction(self):
        brick = make_brick()
        brick.evict()
        stats = brick.stats()
        assert stats.evicted
        assert stats.ssd_bytes > 0
        assert stats.footprint_bytes == 0


class TestEvictingMonitor:
    def _bricks(self, count=4, hotness=None):
        bricks = []
        rng = np.random.default_rng(1)
        for i in range(count):
            brick = Brick(i, ("d",), ("m",))
            for __ in range(300):
                brick.append(
                    {"d": int(rng.integers(8)), "m": float(rng.random())}
                )
            if hotness is not None:
                brick.hotness = hotness[i]
            bricks.append(brick)
        return bricks

    def test_evicts_when_compression_insufficient(self):
        bricks = self._bricks(hotness=[10.0, 0.0, 5.0, 1.0])
        # Budget far below even the compressed size: must evict.
        budget = MemoryBudget(capacity_bytes=1024, high_watermark=0.9,
                              low_watermark=0.5)
        report = MemoryMonitor(budget, allow_eviction=True).run(bricks)
        assert report.evicted > 0
        # Coldest evicted first.
        assert bricks[1].is_evicted
        footprint = sum(b.footprint_bytes() for b in bricks)
        assert footprint <= budget.low_bytes or all(
            b.is_evicted for b in bricks
        )

    def test_no_eviction_without_flag(self):
        bricks = self._bricks()
        budget = MemoryBudget(capacity_bytes=1024)
        report = MemoryMonitor(budget, allow_eviction=False).run(bricks)
        assert report.evicted == 0
        assert not any(b.is_evicted for b in bricks)

    def test_surplus_loads_hottest_back(self):
        bricks = self._bricks(hotness=[10.0, 0.0, 5.0, 1.0])
        for brick in bricks:
            brick.evict()
        total = sum(b.decompressed_bytes() for b in bricks)
        budget = MemoryBudget(capacity_bytes=total * 10)
        report = MemoryMonitor(budget, allow_eviction=True).run(bricks)
        assert report.loaded == 4
        assert not any(b.is_evicted for b in bricks)

    def test_memory_can_reach_zero(self):
        """The §IV-F3 premise: with eviction, a shard's memory footprint
        can be zero — which is what broke the generation-2 metric."""
        bricks = self._bricks()
        budget = MemoryBudget(capacity_bytes=1, high_watermark=0.9,
                              low_watermark=0.5)
        MemoryMonitor(budget, allow_eviction=True).run(bricks)
        assert sum(b.footprint_bytes() for b in bricks) == 0


class TestGen3Node:
    @pytest.fixture
    def node(self, events_schema):
        catalog = Catalog()
        catalog.create(events_schema, num_partitions=2)
        directory = ShardDirectory(MonotonicHashMapper(max_shards=10_000))
        shards = directory.register_table("events", 2)
        node = CubrickNode(
            "gen3", catalog, directory,
            memory_budget=MemoryBudget(capacity_bytes=2048),
            allow_ssd_eviction=True,
            exporter=SsdExporter(),
        )
        node.add_shard(shards[0], None)
        node.insert_into_partition(
            "events", 0, make_rows(events_schema, 600, seed=5)
        )
        return node

    def test_monitor_evicts_and_queries_still_work(self, node):
        report = node.run_memory_monitor()
        assert report.evicted > 0
        assert node.ssd_footprint_bytes() > 0
        result = node.execute_local(
            Query.build("events", [Aggregation(AggFunc.COUNT, "clicks")]), [0]
        ).finalize()
        assert result.scalar() == 600.0
        assert node.total_io_reads() > 0

    def test_ssd_exporter_unmoved_by_eviction(self, node):
        shard = next(iter(node.hosted_shards()))
        before = node.exporter.shard_size(node, shard)
        node.run_memory_monitor()
        assert node.exporter.shard_size(node, shard) == before


class TestIopsAwareExporter:
    def test_io_hot_shard_looks_bigger(self, events_schema):
        catalog = Catalog()
        catalog.create(events_schema, num_partitions=2)
        directory = ShardDirectory(MonotonicHashMapper(max_shards=10_000))
        shards = directory.register_table("events", 2)
        node = CubrickNode(
            "iops", catalog, directory,
            memory_budget=MemoryBudget(capacity_bytes=1024),
            allow_ssd_eviction=True,
            exporter=IopsAwareExporter(io_cost_bytes=1_000_000.0),
        )
        node.add_shard(shards[0], None)
        node.insert_into_partition(
            "events", 0, make_rows(events_schema, 400, seed=6)
        )
        shard = shards[0]
        baseline = node.exporter.shard_size(node, shard)
        # Evict, then hammer the shard with queries: every one pays IOs.
        query = Query.build("events", [Aggregation(AggFunc.COUNT, "clicks")])
        for __ in range(5):
            node.run_memory_monitor()
            node.execute_local(query, [0])
        inflated = node.exporter.shard_size(node, shard)
        assert inflated > baseline

    def test_io_penalty_decays_when_quiet(self, events_schema):
        catalog = Catalog()
        catalog.create(events_schema, num_partitions=2)
        directory = ShardDirectory(MonotonicHashMapper(max_shards=10_000))
        shards = directory.register_table("events", 2)
        node = CubrickNode(
            "iops2", catalog, directory,
            memory_budget=MemoryBudget(capacity_bytes=1024),
            allow_ssd_eviction=True,
            exporter=IopsAwareExporter(io_cost_bytes=1_000_000.0,
                                       smoothing_alpha=0.5),
        )
        node.add_shard(shards[0], None)
        node.insert_into_partition(
            "events", 0, make_rows(events_schema, 400, seed=6)
        )
        shard = shards[0]
        query = Query.build("events", [Aggregation(AggFunc.COUNT, "clicks")])
        node.run_memory_monitor()
        node.execute_local(query, [0])
        hot = node.exporter.shard_size(node, shard)
        quiet = hot
        for __ in range(8):  # no more IOs: smoothed penalty decays
            quiet = node.exporter.shard_size(node, shard)
        assert quiet < hot

    def test_invalid_io_cost_rejected(self):
        with pytest.raises(ValueError):
            IopsAwareExporter(io_cost_bytes=-1.0)
