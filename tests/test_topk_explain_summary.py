"""Tests for ORDER BY/LIMIT (top-k), explain, and the ops summary."""

import pytest

from repro.cubrick.query import AggFunc, Aggregation, Filter, Query
from repro.cubrick.storage import PartitionStorage
from repro.errors import QueryError
from tests.conftest import make_rows


@pytest.fixture
def storage(events_schema):
    part = PartitionStorage(events_schema, 0)
    part.insert_many(make_rows(events_schema, 600, seed=13))
    return part


class TestTopK:
    def test_order_by_aggregation_descending(self, storage):
        query = Query.build(
            "events",
            [Aggregation(AggFunc.SUM, "clicks")],
            group_by=["day"],
            order_by="sum(clicks)",
        )
        rows = storage.execute(query).finalize().rows
        values = [r[1] for r in rows]
        assert values == sorted(values, reverse=True)

    def test_order_by_ascending(self, storage):
        query = Query.build(
            "events",
            [Aggregation(AggFunc.SUM, "clicks")],
            group_by=["day"],
            order_by="sum(clicks)",
            descending=False,
        )
        rows = storage.execute(query).finalize().rows
        values = [r[1] for r in rows]
        assert values == sorted(values)

    def test_limit_returns_top_k(self, storage):
        full = storage.execute(
            Query.build(
                "events",
                [Aggregation(AggFunc.SUM, "clicks")],
                group_by=["day"],
                order_by="sum(clicks)",
            )
        ).finalize()
        top3 = storage.execute(
            Query.build(
                "events",
                [Aggregation(AggFunc.SUM, "clicks")],
                group_by=["day"],
                order_by="sum(clicks)",
                limit=3,
            )
        ).finalize()
        assert len(top3.rows) == 3
        assert top3.rows == full.rows[:3]

    def test_order_by_group_column(self, storage):
        query = Query.build(
            "events",
            [Aggregation(AggFunc.COUNT, "clicks")],
            group_by=["day"],
            order_by="day",
            descending=False,
            limit=5,
        )
        rows = storage.execute(query).finalize().rows
        days = [r[0] for r in rows]
        assert days == sorted(days)
        assert len(rows) == 5

    def test_limit_without_order(self, storage):
        query = Query.build(
            "events",
            [Aggregation(AggFunc.COUNT, "clicks")],
            group_by=["day"],
            limit=4,
        )
        assert len(storage.execute(query).finalize().rows) == 4

    def test_topk_split_invariance(self, events_schema):
        """Top-k over merged partials equals top-k over the whole —
        the coordinator applies shaping only after the final merge."""
        rows = make_rows(events_schema, 400, seed=14)
        whole = PartitionStorage(events_schema, 0)
        whole.insert_many(rows)
        query = Query.build(
            "events",
            [Aggregation(AggFunc.SUM, "clicks")],
            group_by=["country"],
            order_by="sum(clicks)",
            limit=5,
        )
        expected = whole.execute(query).finalize().rows

        left = PartitionStorage(events_schema, 0)
        right = PartitionStorage(events_schema, 1)
        left.insert_many(rows[:200])
        right.insert_many(rows[200:])
        merged = left.execute(query).merge(right.execute(query)).finalize()
        assert merged.rows == expected

    def test_invalid_order_by_rejected(self):
        with pytest.raises(QueryError):
            Query.build(
                "t",
                [Aggregation(AggFunc.SUM, "x")],
                order_by="nope",
            )

    def test_invalid_limit_rejected(self):
        with pytest.raises(QueryError):
            Query.build("t", [Aggregation(AggFunc.SUM, "x")], limit=0)


class TestExplain:
    def test_unfiltered_scans_everything(self, storage):
        plan = storage.explain(
            Query.build("events", [Aggregation(AggFunc.COUNT, "clicks")])
        )
        assert plan["bricks_scanned"] == plan["bricks_total"]
        assert plan["rows_estimated"] == 600

    def test_filtered_prunes(self, storage):
        plan = storage.explain(
            Query.build(
                "events",
                [Aggregation(AggFunc.COUNT, "clicks")],
                filters=[Filter.eq("day", 0)],
            )
        )
        assert plan["bricks_scanned"] < plan["bricks_total"]
        assert plan["rows_estimated"] < 600

    def test_explain_does_not_touch_hotness(self, storage):
        storage.explain(
            Query.build("events", [Aggregation(AggFunc.COUNT, "clicks")])
        )
        assert all(b.hotness == 0 for b in storage.bricks())


class TestSummary:
    def test_summary_shape(self, tiny_deployment):
        tiny_deployment.query(
            Query.build("events", [Aggregation(AggFunc.COUNT, "clicks")])
        )
        summary = tiny_deployment.summary()
        assert summary["hosts"]["total"] == len(tiny_deployment.cluster)
        assert summary["tables"]["events"]["partitions"] == 6
        assert not summary["tables"]["events"]["replicated"]
        assert set(summary["regions"]) == set(tiny_deployment.region_names())
        for stats in summary["regions"].values():
            assert stats["registered_hosts"] == 6
            assert stats["shards"] > 0
        assert summary["proxy"]["queries"] >= 1
        assert 0.0 < summary["proxy"]["success_ratio"] <= 1.0

    def test_summary_reflects_failures(self, tiny_deployment):
        victim = tiny_deployment.cluster.host_ids()[0]
        tiny_deployment.automation.handle_host_failure(victim, permanent=True)
        summary = tiny_deployment.summary()
        assert summary["hosts"]["by_state"]["repair"] == 1
        assert summary["repairs"] == 1
        tiny_deployment.automation.handle_host_recovery(victim)
