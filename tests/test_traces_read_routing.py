"""Tests for trace record/replay and secondary read routing."""

import numpy as np
import pytest

from repro.cluster.topology import Cluster
from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.errors import ReproError
from repro.shardmanager.app_server import InMemoryApplicationServer
from repro.shardmanager.server import ReplicaRole, SMServer
from repro.shardmanager.spec import ReplicationModel, ServiceSpec
from repro.sim.engine import Simulator
from repro.workloads.fanout_experiment import probe_schema
from repro.workloads.traces import (
    QueryTrace,
    TraceEntry,
    TraceRecorder,
    replay,
)


@pytest.fixture
def deployment():
    deployment = CubrickDeployment(
        DeploymentConfig(seed=171, regions=2, racks_per_region=2,
                         hosts_per_rack=3)
    )
    schema = probe_schema("traced")
    deployment.create_table(schema)
    rng = np.random.default_rng(4)
    deployment.load(
        "traced",
        [{"bucket": int(rng.integers(64)), "value": 1.0}
         for __ in range(300)],
    )
    deployment.simulator.run_until(30.0)
    return deployment


class TestTraceRecording:
    def test_recorder_captures_queries(self, deployment):
        recorder = TraceRecorder(deployment)
        recorder.sql("SELECT count(value) FROM traced")
        deployment.simulator.run_until(deployment.simulator.now + 5.0)
        recorder.sql("SELECT sum(value) FROM traced WHERE bucket = 3")
        assert len(recorder.trace) == 2
        assert recorder.trace.entries[0].offset == 0.0
        assert recorder.trace.entries[1].offset == pytest.approx(5.0)

    def test_trace_serialisation_roundtrip(self):
        trace = QueryTrace(entries=[
            TraceEntry(0.0, "SELECT count(v) FROM t"),
            TraceEntry(2.5, "SELECT sum(v) FROM t WHERE a = 1"),
        ])
        assert QueryTrace.loads(trace.dumps()) == trace

    def test_replay_reproduces_results(self, deployment):
        recorder = TraceRecorder(deployment)
        for __ in range(5):
            deployment.simulator.run_until(deployment.simulator.now + 1.0)
            recorder.sql("SELECT count(value) FROM traced")
        report = replay(deployment, recorder.trace)
        assert report.total == 5
        assert report.success_ratio == 1.0
        assert len(report.latencies) == 5
        assert report.percentile(50) > 0

    def test_replay_time_scale(self, deployment):
        trace = QueryTrace(entries=[
            TraceEntry(0.0, "SELECT count(value) FROM traced"),
            TraceEntry(10.0, "SELECT count(value) FROM traced"),
        ])
        start = deployment.simulator.now
        replay(deployment, trace, time_scale=0.5)
        assert deployment.simulator.now == pytest.approx(start + 5.0)

    def test_invalid_time_scale(self, deployment):
        with pytest.raises(ReproError):
            replay(deployment, QueryTrace(), time_scale=0.0)

    def test_empty_report_percentile_raises(self):
        from repro.workloads.traces import ReplayReport

        report = ReplayReport(total=0, succeeded=0, failed=0, latencies=[])
        with pytest.raises(ReproError):
            report.percentile(50)


class TestSecondaryReadRouting:
    def _service(self, serve_reads: bool):
        simulator = Simulator()
        cluster = Cluster.build(regions=1, racks_per_region=2, hosts_per_rack=4)
        spec = ServiceSpec(
            name="reads",
            max_shards=1000,
            replication_model=ReplicationModel.PRIMARY_SECONDARY,
            replication_factor=2,
            serve_reads_from_secondaries=serve_reads,
        )
        server = SMServer(spec, simulator, cluster, region="region0")
        for host in cluster.hosts():
            server.register_host(
                InMemoryApplicationServer(host.host_id, capacity=1000.0)
            )
        return simulator, cluster, server

    def test_reads_spread_across_secondaries(self):
        __, __c, server = self._service(serve_reads=True)
        entry = server.create_shard(1, size_hint=1.0)
        primary = entry.primary().host_id
        rng = np.random.default_rng(0)
        read_hosts = {server.read_replica(1, rng) for __ in range(100)}
        assert primary not in read_hosts
        assert len(read_hosts) == 2  # both secondaries used

    def test_reads_go_to_primary_when_disabled(self):
        __, __c, server = self._service(serve_reads=False)
        entry = server.create_shard(1, size_hint=1.0)
        assert server.read_replica(1) == entry.primary().host_id

    def test_reads_fall_back_to_primary_when_secondaries_dead(self):
        simulator, cluster, server = self._service(serve_reads=True)
        entry = server.create_shard(1, size_hint=1.0)
        primary = entry.primary().host_id
        for replica in entry.replicas:
            if replica.role is ReplicaRole.SECONDARY:
                cluster.host(replica.host_id).fail(permanent=False)
        # Before failover runs, reads must already avoid the dead hosts.
        assert server.read_replica(1) == primary

    def test_primary_only_service_always_primary(self, sm_service):
        server, __ = sm_service
        entry = server.create_shard(1, size_hint=1.0)
        assert server.read_replica(1) == entry.replicas[0].host_id
