"""QueryTrace serialisation round-trip and replay determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.errors import ReproError
from repro.workloads.queries import QueryGenerator
from repro.workloads.traces import (
    QueryTrace,
    TraceEntry,
    TraceRecorder,
    replay,
)

from tests.conftest import make_rows


def build_deployment(events_schema, seed=33):
    deployment = CubrickDeployment(
        DeploymentConfig(seed=seed, regions=2, racks_per_region=2,
                         hosts_per_rack=3)
    )
    deployment.create_table(events_schema, num_partitions=4)
    deployment.load("events", make_rows(events_schema, 300, seed=6))
    deployment.simulator.run_until(30.0)
    return deployment


def generated_trace(events_schema, count=20, seed=5):
    generator = QueryGenerator([events_schema], np.random.default_rng(seed))
    trace = QueryTrace()
    for index, query in enumerate(generator.stream(count)):
        trace.record(index * 0.5, query)
    return trace


def test_trace_entry_json_round_trip():
    entry = TraceEntry(offset=1.25, sql="SELECT sum(clicks) FROM events")
    assert TraceEntry.from_json(entry.to_json()) == entry


def test_query_trace_round_trips_through_jsonl(events_schema):
    trace = generated_trace(events_schema)
    text = trace.dumps()
    # Every line is standalone JSON; blank lines are tolerated on load.
    restored = QueryTrace.loads(text + "\n\n")
    assert len(restored) == len(trace) == 20
    assert restored.entries == trace.entries
    # Round-tripping the restored trace is a fixed point.
    assert restored.dumps() == text


def test_recorder_captures_offsets_and_rendered_sql(events_schema):
    deployment = build_deployment(events_schema)
    recorder = TraceRecorder(deployment)
    generator = QueryGenerator([events_schema], np.random.default_rng(8))
    start = deployment.simulator.now
    for step, query in enumerate(generator.stream(5)):
        deployment.simulator.run_until(start + step * 2.0)
        recorder.query(query)
    offsets = [entry.offset for entry in recorder.trace.entries]
    assert offsets == [0.0, 2.0, 4.0, 6.0, 8.0]
    assert all("FROM events" in e.sql for e in recorder.trace.entries)


def test_replay_is_deterministic_across_identical_deployments(events_schema):
    trace = generated_trace(events_schema, count=30)
    first = replay(build_deployment(events_schema), trace)
    second = replay(build_deployment(events_schema), trace)
    assert first.total == second.total == 30
    assert first.succeeded == second.succeeded
    assert first.failed == second.failed
    assert first.latencies == second.latencies
    assert first.success_ratio == second.success_ratio
    assert first.percentile(99) == second.percentile(99)


def test_replay_after_round_trip_matches_original(events_schema):
    trace = generated_trace(events_schema, count=15)
    restored = QueryTrace.loads(trace.dumps())
    original = replay(build_deployment(events_schema), trace)
    round_tripped = replay(build_deployment(events_schema), restored)
    assert round_tripped.latencies == original.latencies
    assert round_tripped.succeeded == original.succeeded


def test_replay_time_scale_stretches_pacing(events_schema):
    trace = generated_trace(events_schema, count=5)
    deployment = build_deployment(events_schema)
    start = deployment.simulator.now
    replay(deployment, trace, time_scale=4.0)
    # Last entry sits at offset 2.0; scaled pacing drove the clock to 8s.
    assert deployment.simulator.now - start >= 8.0
    with pytest.raises(ReproError):
        replay(deployment, trace, time_scale=0.0)


def test_replay_report_percentile_requires_latencies():
    from repro.workloads.traces import ReplayReport

    empty = ReplayReport(total=0, succeeded=0, failed=0, latencies=[])
    assert empty.success_ratio == 1.0
    with pytest.raises(ReproError):
        empty.percentile(50)
