"""Tests for the cross-region replica audit (§IV-D invariant)."""

import numpy as np
import pytest

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.workloads.fanout_experiment import probe_schema


@pytest.fixture
def deployment():
    deployment = CubrickDeployment(
        DeploymentConfig(seed=201, regions=3, racks_per_region=3,
                         hosts_per_rack=4)
    )
    schema = probe_schema("audited")
    deployment.create_table(schema)
    rng = np.random.default_rng(1)
    deployment.load(
        "audited",
        [{"bucket": int(rng.integers(64)), "value": 1.0}
         for __ in range(300)],
    )
    deployment.simulator.run_until(30.0)
    return deployment


class TestVerifyReplicas:
    def test_healthy_deployment_is_consistent(self, deployment):
        audit = deployment.verify_replicas("audited")
        assert audit["consistent"]
        assert set(audit["regions"].values()) == {300}
        assert audit["divergent_partitions"] == []

    def test_incomplete_region_reported_not_failed(self, deployment):
        sm = deployment.sm_servers["region2"]
        victim = next(
            h for h in sm.registered_hosts() if sm.shards_on_host(h)
        )
        deployment.cluster.host(victim).fail(permanent=False)
        audit = deployment.verify_replicas("audited")
        # region2 has an unreachable partition owner right now...
        assert audit["regions"]["region2"] is None
        # ... but the surviving copies still agree.
        assert audit["consistent"]
        assert audit["regions"]["region0"] == 300
        deployment.cluster.host(victim).recover()

    def test_divergence_is_detected(self, deployment):
        # Corrupt one region's copy by inserting extra rows directly.
        sm = deployment.sm_servers["region1"]
        shards = deployment.directory.shards_for_table("audited")
        owner = sm.discovery.resolve_authoritative(shards[0])
        node = sm.app_server(owner)
        node.insert_into_partition(
            "audited", 0, [{"bucket": 1, "value": 1.0}] * 5
        )
        audit = deployment.verify_replicas("audited")
        assert not audit["consistent"]
        assert audit["divergent_partitions"]
        assert audit["divergent_partitions"][0]["partition"] == 0

    def test_consistent_after_failover_recovery(self, deployment):
        """Cross-region failover recovery restores full copies, so the
        audit passes again once the dust settles."""
        sm = deployment.sm_servers["region0"]
        victim = next(
            h for h in sm.registered_hosts() if sm.shards_on_host(h)
        )
        deployment.automation.handle_host_failure(victim, permanent=False)
        deployment.simulator.run_until(deployment.simulator.now + 300.0)
        audit = deployment.verify_replicas("audited")
        assert audit["consistent"]
        assert audit["regions"]["region0"] == 300
        deployment.automation.handle_host_recovery(victim)
