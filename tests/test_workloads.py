"""Tests for workload generators and experiment drivers."""

import numpy as np
import pytest

from repro.cubrick.bricks import Brick
from repro.cubrick.partitioning import PartitioningPolicy
from repro.sim.latency import HiccupModel, LogNormalTailLatency
from repro.workloads.fanout_experiment import (
    QUERIES_PER_WEEK,
    LatencyPercentiles,
    sample_fanout_latencies,
    statistical_fanout_experiment,
)
from repro.workloads.hotcold import run_hot_cold_week
from repro.workloads.queries import QueryGenerator, simple_probe_query
from repro.workloads.tables import (
    TenantWorkload,
    expected_partitions,
    generate_rows,
    generate_table_population,
)


class TestTablePopulation:
    def test_count_and_naming(self, rng):
        specs = generate_table_population(50, rng)
        assert len(specs) == 50
        assert len({s.name for s in specs}) == 50

    def test_sizes_are_heavy_tailed(self, rng):
        specs = generate_table_population(2000, rng)
        sizes = np.array([s.rows for s in specs])
        assert sizes.max() > 20 * np.median(sizes)

    def test_figure_4b_shape(self):
        """Most tables stay at 8 partitions; a tail is re-partitioned."""
        workload = TenantWorkload.generate(2000, seed=3)
        histogram = workload.partition_histogram()
        total = sum(histogram.values())
        assert histogram[8] / total > 0.5  # the dominant bucket
        assert max(histogram) > 8  # a re-partitioned tail exists
        assert max(histogram) <= 64

    def test_expected_partitions_growth(self):
        policy = PartitioningPolicy(
            max_rows_per_partition=1000, min_rows_per_partition=10
        )
        assert expected_partitions(500, policy) == 8
        assert expected_partitions(10_000, policy) == 16
        assert expected_partitions(10 ** 9, policy) == policy.max_partitions

    def test_generate_rows_valid(self, rng):
        specs = generate_table_population(1, rng)
        schema = specs[0].schema
        rows = list(generate_rows(schema, 200, rng))
        assert len(rows) == 200
        for row in rows[:20]:
            schema.validate_row(row)

    def test_invalid_count_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_table_population(0, rng)


class TestQueryGenerator:
    def _generator(self, rng, count=5):
        specs = generate_table_population(count, rng)
        return QueryGenerator([s.schema for s in specs], rng), specs

    def test_queries_are_valid_for_their_schema(self, rng):
        generator, specs = self._generator(rng)
        by_name = {s.schema.name: s.schema for s in specs}
        for query in generator.stream(100):
            schema = by_name[query.table]
            for flt in query.filters:
                assert schema.has_dimension(flt.dimension)
            for dim in query.group_by:
                assert schema.has_dimension(dim)

    def test_pinned_table(self, rng):
        generator, specs = self._generator(rng)
        query = generator.next_query(table=specs[2].name)
        assert query.table == specs[2].name

    def test_table_popularity_is_skewed(self, rng):
        generator, specs = self._generator(rng, count=20)
        tables = [q.table for q in generator.stream(2000)]
        counts = sorted(
            (tables.count(s.name) for s in specs), reverse=True
        )
        assert counts[0] > 5 * max(counts[-1], 1)

    def test_probe_query_is_simple_count(self, rng):
        generator, specs = self._generator(rng)
        probe = simple_probe_query(specs[0].schema)
        assert probe.filters == ()
        assert probe.group_by == ()
        assert len(probe.aggregations) == 1


class TestFanoutSampling:
    def test_week_constant(self):
        assert QUERIES_PER_WEEK == 1_209_600

    def test_latency_grows_with_fanout(self, rng):
        model = LogNormalTailLatency()
        result = statistical_fanout_experiment(
            model, [1, 8, 64], 20_000, rng
        )
        p999 = dict(result.series("p999"))
        assert p999[1] < p999[8] < p999[64]

    def test_median_nearly_flat_tail_grows(self, rng):
        """The defining Figure 5 shape."""
        # Tight common case + rare large hiccups: the regime where
        # fan-out leaves medians alone but amplifies the tail.
        model = LogNormalTailLatency(
            sigma=0.3,
            hiccups=HiccupModel(probability=1e-3, min_delay=0.2, max_delay=1.0),
        )
        result = statistical_fanout_experiment(
            model, [1, 64], 50_000, rng
        )
        p50 = dict(result.series("p50"))
        p999 = dict(result.series("p999"))
        p50_growth = p50[64] / p50[1]
        tail_growth = p999[64] / p999[1]
        assert p50_growth < 6.0  # medians grow modestly
        assert tail_growth > 3.0  # the tail blows up
        assert tail_growth > p50_growth  # and faster than the median

    def test_sample_batching_consistent(self, rng):
        model = LogNormalTailLatency()
        samples = sample_fanout_latencies(model, 16, 5000, rng, batch=1000)
        assert samples.shape == (5000,)
        assert (samples > 0).all()

    def test_percentiles_ordered(self, rng):
        samples = np.abs(rng.normal(size=10_000)) + 0.01
        row = LatencyPercentiles.from_samples(4, samples)
        assert row.p50 <= row.p90 <= row.p99 <= row.p999 <= row.maximum

    def test_invalid_inputs_rejected(self, rng):
        model = LogNormalTailLatency()
        with pytest.raises(ValueError):
            sample_fanout_latencies(model, 0, 10, rng)
        with pytest.raises(ValueError):
            sample_fanout_latencies(model, 1, 0, rng)
        with pytest.raises(ValueError):
            LatencyPercentiles.from_samples(1, np.array([]))


class TestHotCold:
    def _bricks(self, count=200):
        bricks = []
        for i in range(count):
            brick = Brick(i, ("d",), ("m",))
            brick.append({"d": 0, "m": 1.0})
            bricks.append(brick)
        return bricks

    def test_produces_hot_and_cold_populations(self, rng):
        trace = run_hot_cold_week(self._bricks(), rng, hours=48)
        assert trace.hot_count > 0
        assert trace.cold_count > 0
        assert trace.hot_count + trace.cold_count == 200

    def test_recency_skew_keeps_new_data_hot(self, rng):
        """Figure 4e: recently loaded (low-rank) blocks stay hot."""
        bricks = self._bricks(500)
        trace = run_hot_cold_week(bricks, rng, hours=72)
        newest = trace.hotness[:25].mean()
        oldest = trace.hotness[-250:].mean()
        assert newest > 5 * max(oldest, 0.01)

    def test_cold_majority_with_strong_skew(self, rng):
        trace = run_hot_cold_week(
            self._bricks(1000), rng, hours=48, recency_skew=2.0,
            accesses_per_hour=100,
        )
        assert trace.hot_fraction < 0.5

    def test_histogram_shape(self, rng):
        trace = run_hot_cold_week(self._bricks(100), rng, hours=24)
        counts, edges = trace.histogram(bins=10)
        assert counts.sum() == 100
        assert len(edges) == 11

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            run_hot_cold_week([], rng)
        with pytest.raises(ValueError):
            run_hot_cold_week(self._bricks(1), rng, hours=0)
